#!/usr/bin/env python
"""Forum-comment moderation with paid crowdworkers (the paper's domain).

The paper's evaluation data comes from the Qatar Living Forum: workers
annotate forum comments as Good / Bad / Other.  This example plays the
platform operator:

1. publish a batch of comment-annotation tasks with accuracy
   requirements;
2. collect annotations from a worker pool that includes copiers (some
   workers paste other workers' label sheets);
3. run DATE to aggregate labels and score workers;
4. run the reverse auction to decide which workers to pay, and how
   much, so that future batches hit the accuracy requirements at
   minimal social cost.

Run:  python examples/forum_moderation.py
"""

from __future__ import annotations

from collections import Counter

from repro import IMC2, DateConfig, generate_qatar_living_like
from repro.simulation.metrics import copier_detection_report


def main() -> None:
    # A moderation batch: 150 comments, 60 annotators, 15 of them
    # copiers pasting from 5 "source" workers.
    dataset = generate_qatar_living_like(
        seed=2024,
        n_tasks=150,
        n_workers=60,
        n_copiers=15,
        target_claims=3000,
        source_pool_size=5,
    )
    label_counts = Counter(dataset.claims.values())
    print("annotation batch:")
    print(f"  comments: {dataset.n_tasks}, annotators: {dataset.n_workers}, "
          f"labels: {dataset.n_claims}")
    print(f"  label distribution: {dict(label_counts)}")

    mechanism = IMC2(
        DateConfig(copy_prob_r=0.4, prior_alpha=0.2),
        requirement_cap=0.8,
    )
    outcome = mechanism.run(dataset)

    # --- Label quality ------------------------------------------------
    truth = outcome.truth
    print(f"\naggregated label precision: {truth.precision():.3f}")

    report = copier_detection_report(truth, dataset)
    print("copier detection:")
    print(f"  mean P(copy) over true copier-source pairs:   "
          f"{report.copier_pair_mean:.3f}")
    print(f"  mean P(dependent) over independent pairs:     "
          f"{report.independent_pair_mean:.3f}")
    print(f"  separation: {report.separation:.3f}")

    # --- Payroll --------------------------------------------------------
    auction = outcome.auction
    print(f"\npayroll: {auction.n_winners} annotators hired, "
          f"total payout {auction.total_payment:.2f}")

    # Who gets hired?  Compare hired copiers vs hired independents.
    hired = set(auction.winner_ids)
    hired_copiers = [
        w.worker_id for w in dataset.workers if w.is_copier and w.worker_id in hired
    ]
    copier_count = sum(1 for w in dataset.workers if w.is_copier)
    print(f"hired copiers: {len(hired_copiers)}/{copier_count} "
          f"(copiers carry little independent accuracy, so the auction "
          f"tends to pass on them)")

    # Top five paid annotators with their estimated accuracy.
    top = sorted(auction.payments.items(), key=lambda kv: -kv[1])[:5]
    print("\ntop paid annotators:")
    for worker_id, payment in top:
        accuracy = truth.worker_accuracy[worker_id]
        profile = dataset.worker_by_id[worker_id]
        kind = "copier" if profile.is_copier else "independent"
        print(f"  {worker_id}: payment {payment:.2f}, estimated accuracy "
              f"{accuracy:.2f}, cost {profile.cost:.2f} ({kind})")


if __name__ == "__main__":
    main()
