#!/usr/bin/env python
"""Mobile crowdsensing with free-text observations and typos (Sec. IV).

A city platform asks smartphone users to report which business occupies
each storefront (the kind of POI-labelling campaign the paper's intro
cites).  Two complications from Sec. IV appear:

- **multiple presentations** — users type the same store name
  differently ("Cafe Aroma", "Café Aroma", "cafe aroma inc"), handled
  by the similarity-adjusted support counts (Eq. 21);
- **non-uniform false values** — wrong answers cluster on a popular
  misconception (the store that used to be there), handled by the
  Zipf false-value model (Eqs. 22-23).

Run:  python examples/mobile_crowdsensing.py
"""

from __future__ import annotations

import numpy as np

from repro import DATE, Dataset, DateConfig, MajorityVote, Task, WorkerProfile
from repro.core import ZipfFalseValues
from repro.similarity import string_similarity


def build_storefront_campaign(seed: int = 5) -> Dataset:
    """40 storefronts, 25 reporters, typo-prone honest answers plus a
    popular-wrong-answer bias."""
    rng = np.random.default_rng(seed)
    stores = [
        ("Cafe Aroma", ["Cafe Aroma", "Café Aroma", "cafe aroma"]),
        ("Green Grocer", ["Green Grocer", "GreenGrocer", "Green Grocers"]),
        ("Book Nook", ["Book Nook", "The Book Nook", "Booknook"]),
        ("City Pharmacy", ["City Pharmacy", "City Pharm", "CityPharmacy"]),
    ]
    wrong = ["Old Laundromat", "Vacant", "Phone Repair"]

    tasks = []
    claims = {}
    workers = tuple(
        WorkerProfile(
            worker_id=f"u{i:02d}",
            reliability=float(rng.uniform(0.45, 0.9)),
            cost=float(rng.uniform(1, 6)),
        )
        for i in range(25)
    )
    for j in range(40):
        truth, variants = stores[j % len(stores)]
        task_id = f"storefront{j:02d}"
        tasks.append(Task(task_id=task_id, truth=truth))
        for worker in workers:
            if rng.random() > 0.5:
                continue  # this user never walked past the storefront
            if rng.random() < worker.reliability:
                # Correct observation, possibly typed as a variant.
                value = variants[int(rng.integers(len(variants)))]
            else:
                # Wrong answers are Zipf-ish: the first wrong option
                # (the remembered previous tenant) dominates.
                weights = np.array([0.6, 0.25, 0.15])
                value = wrong[int(rng.choice(3, p=weights))]
            claims[(worker.worker_id, task_id)] = value
    return Dataset(tasks=tuple(tasks), workers=workers, claims=claims)


def canonical(value: str) -> str:
    return "".join(value.lower().split())


def precision_with_variants(truths: dict[str, str], dataset: Dataset) -> float:
    """Count an estimate correct if it canonicalizes to the truth."""
    hits = 0
    for task in dataset.tasks:
        estimate = truths.get(task.task_id, "")
        truth = task.truth or ""
        if canonical(estimate)[:8] == canonical(truth)[:8]:
            hits += 1
    return hits / dataset.n_tasks


def main() -> None:
    dataset = build_storefront_campaign()
    print(f"campaign: {dataset.n_tasks} storefronts, "
          f"{dataset.n_workers} reporters, {dataset.n_claims} observations")

    # Baseline: plain DATE treats every spelling as a distinct value.
    plain = DATE(DateConfig()).run(dataset)

    # Sec. IV configuration: similarity-merged support counts plus the
    # Zipf false-value model.
    general = DATE(
        DateConfig(
            similarity=string_similarity("levenshtein", threshold=0.55),
            similarity_weight=0.8,
            false_values=ZipfFalseValues(exponent=1.3),
        )
    ).run(dataset)

    mv = MajorityVote().run(dataset)

    print("\nstorefront identification accuracy (variant-tolerant):")
    print(f"  majority voting:            "
          f"{precision_with_variants(mv.truths, dataset):.3f}")
    print(f"  DATE (base, Sec. III):      "
          f"{precision_with_variants(plain.truths, dataset):.3f}")
    print(f"  DATE (general, Sec. IV):    "
          f"{precision_with_variants(general.truths, dataset):.3f}")

    # Show one contested storefront in detail.
    sample = dataset.tasks[0].task_id
    votes = dataset.claims_by_task[sample]
    print(f"\nexample storefront {sample!r} "
          f"(truth: {dataset.tasks[0].truth!r}):")
    for worker_id, value in sorted(votes.items()):
        print(f"  {worker_id}: {value!r}")
    print(f"  -> base estimate:    {plain.truths.get(sample)!r}")
    print(f"  -> general estimate: {general.truths.get(sample)!r}")


if __name__ == "__main__":
    main()
