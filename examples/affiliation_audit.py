#!/usr/bin/env python
"""The paper's Table 1 scenario: auditing researcher affiliations.

Five workers report the affiliations of five database researchers.
Worker 1 is fully correct, but workers 4 and 5 copied worker 3 — whose
answers are wrong for Dewitt, Carey and Halevy.  Naive majority voting
elects the copied wrong answers; DATE detects the dependence and
recovers every affiliation.

This example walks through the internals: the dependence posteriors,
the per-value independence discounts, and the resulting support counts,
so you can see *why* the estimate flips.

Run:  python examples/affiliation_audit.py
"""

from __future__ import annotations

from repro import DATE, DateConfig, MajorityVote
from repro.experiments.table1 import (
    TABLE1_TRUTHS,
    build_affiliation_example,
)


def main() -> None:
    dataset = build_affiliation_example()

    print("claim matrix (rows: workers, columns: researchers)")
    tasks = [t.task_id for t in dataset.tasks]
    header = "      " + "  ".join(f"{t[:10]:>10}" for t in tasks)
    print(header)
    for worker in dataset.workers:
        row = [dataset.claims[(worker.worker_id, t)] for t in tasks]
        marker = " (copier)" if worker.is_copier else ""
        print("  " + worker.worker_id + "  " + "  ".join(f"{v:>10}" for v in row) + marker)

    # --- Majority voting gets three answers wrong --------------------
    mv = MajorityVote().run(dataset)
    print("\nmajority voting:")
    for task in tasks:
        verdict = "OK " if mv.truths[task] == TABLE1_TRUTHS[task] else "WRONG"
        print(f"  {task:<12} -> {mv.truths[task]:<8} [{verdict}]")

    # --- DATE recovers everything ------------------------------------
    # Wholesale copiers justify a near-1 assumed copy probability; the
    # total-dependence discount handles the unidentifiable direction
    # (worker 4's data is identical to worker 3's).
    config = DateConfig(copy_prob_r=0.9, prior_alpha=0.5, discount_mode="total")
    date = DATE(config).run(dataset)

    print("\nDATE dependence posteriors (either direction):")
    for (a, b), posterior in sorted(date.dependence.items()):
        if posterior.p_dependent > 0.3:
            print(f"  {a} ~ {b}: P(dependent) = {posterior.p_dependent:.2f}")

    print("\nDATE estimates:")
    for task in tasks:
        verdict = "OK " if date.truths[task] == TABLE1_TRUTHS[task] else "WRONG"
        support = date.support[task]
        ranked = sorted(support.items(), key=lambda kv: -kv[1])
        counts = ", ".join(f"{v}={s:.2f}" for v, s in ranked)
        print(f"  {task:<12} -> {date.truths[task]:<8} [{verdict}]  support: {counts}")

    recovered = sum(
        date.truths[t] == TABLE1_TRUTHS[t] for t in tasks
    )
    print(f"\nDATE recovered {recovered}/5 affiliations "
          f"(majority voting: {sum(mv.truths[t] == TABLE1_TRUTHS[t] for t in tasks)}/5)")


if __name__ == "__main__":
    main()
