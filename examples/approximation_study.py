#!/usr/bin/env python
"""How close is the greedy reverse auction to the true optimum?

Theorem 3 guarantees a 2eH_Ω approximation factor for the SOAC social
cost, but worst-case bounds say little about typical campaigns.  This
example measures the realized gap on ILP-solvable instances and prints
both, together with the auction's payment overhead (the price of
truthfulness: payments above the winners' declared bids).

Run:  python examples/approximation_study.py
"""

from __future__ import annotations

from repro import DATE, ReverseAuction, SOACInstance, solve_optimal
from repro.auction.properties import approximation_bound
from repro.datasets import generate_qatar_living_like
from repro.reporting import format_table


def main() -> None:
    auction = ReverseAuction()
    rows = []
    ratios = []
    for seed in range(8):
        dataset = generate_qatar_living_like(
            seed=seed, n_tasks=20, n_workers=22, n_copiers=5, target_claims=220
        )
        result = DATE().run(dataset)
        instance = SOACInstance.from_truth_discovery(
            dataset, result
        ).with_capped_requirements(0.7)

        greedy = auction.run(instance)
        optimal = solve_optimal(instance)
        ratio = (
            greedy.social_cost / optimal.social_cost
            if optimal.social_cost > 0
            else 1.0
        )
        ratios.append(ratio)
        overhead = (
            greedy.total_payment / greedy.social_cost
            if greedy.social_cost > 0
            else 1.0
        )
        rows.append(
            [
                seed,
                greedy.n_winners,
                optimal.n_winners,
                greedy.social_cost,
                optimal.social_cost,
                ratio,
                approximation_bound(instance),
                overhead,
            ]
        )

    print(
        format_table(
            [
                "seed",
                "greedy |S|",
                "opt |S|",
                "greedy cost",
                "opt cost",
                "ratio",
                "2eH bound",
                "pay/cost",
            ],
            rows,
            float_format="{:.3f}",
        )
    )
    print(
        f"\nmean realized ratio: {sum(ratios) / len(ratios):.3f} "
        f"(worst case allowed by Theorem 3 is orders of magnitude larger)"
    )
    print(
        "payment overhead ('pay/cost') is what the platform pays for "
        "truthfulness: critical-value payments exceed declared bids."
    )


if __name__ == "__main__":
    main()
