#!/usr/bin/env python
"""Quickstart: run the full IMC2 pipeline on a synthetic campaign.

Generates the paper's default workload (a Qatar-Living-Forum-like
dataset with 30 copiers), runs DATE truth discovery plus the reverse
auction, and prints what every stage produced.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import IMC2, DateConfig, MajorityVote, generate_qatar_living_like


def main() -> None:
    # 1. A seeded synthetic campaign: 120 workers answer 300 tasks,
    #    30 of the workers silently copy other workers' answers.
    dataset = generate_qatar_living_like(seed=7)
    copiers = [w.worker_id for w in dataset.workers if w.is_copier]
    print(f"dataset: {dataset.n_tasks} tasks, {dataset.n_workers} workers, "
          f"{dataset.n_claims} claims, {len(copiers)} hidden copiers")

    # 2. The full two-stage mechanism.  requirement_cap keeps sparse
    #    tasks feasible (see DESIGN.md §4).
    mechanism = IMC2(DateConfig(copy_prob_r=0.4), requirement_cap=0.8)
    outcome = mechanism.run(dataset)

    # 3. Stage 1: how well did truth discovery do?
    truth = outcome.truth
    print(f"\n-- truth discovery ({truth.method}) --")
    print(f"precision vs ground truth: {truth.precision():.3f}")
    print(f"converged after {truth.iterations} iterations")
    baseline = MajorityVote().run(dataset)
    print(f"majority voting precision: {baseline.precision():.3f}")

    # The dependence posteriors flag the injected copiers:
    flagged = sorted(
        result_pair
        for result_pair, posterior in truth.dependence.items()
        if posterior.p_dependent > 0.8
    )
    hits = sum(
        1
        for a, b in flagged
        if dataset.worker_by_id[a].is_copier or dataset.worker_by_id[b].is_copier
    )
    print(f"worker pairs flagged as dependent (>0.8): {len(flagged)}, "
          f"{hits} involve a true copier")

    # 4. Stage 2: the reverse auction.
    auction = outcome.auction
    print(f"\n-- reverse auction ({auction.method}) --")
    print(f"winners: {auction.n_winners} of {outcome.instance.n_workers} bidders")
    print(f"social cost: {auction.social_cost:.2f}")
    print(f"total payments: {auction.total_payment:.2f}")
    print(f"platform utility: {outcome.platform_utility:.2f}")
    print(f"social welfare: {outcome.social_welfare:.2f}")

    # Every winner is paid at least its cost (individual rationality).
    worst = min(
        outcome.worker_utilities[w] for w in auction.winner_ids
    )
    print(f"minimum winner utility: {worst:.3f} (>= 0 by Lemma 2)")


if __name__ == "__main__":
    main()
