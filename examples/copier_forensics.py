#!/usr/bin/env python
"""Copier forensics: from dependence posteriors to an audit report.

DATE's by-product — the pairwise copy posteriors — is itself valuable
to a platform operator: who is copying whom?  This example runs the
:mod:`repro.analysis` toolkit on a campaign with known (generated)
copiers and produces the report an operator would act on:

- the directed copy graph above a posterior threshold;
- copier *clusters* (a source and its likely copiers) to audit;
- a ranking of likely source workers;
- precision/recall of the detector against the generative ground truth.

Run:  python examples/copier_forensics.py
"""

from __future__ import annotations

from repro import DATE, DateConfig, generate_qatar_living_like
from repro.analysis import (
    copier_clusters,
    dependence_graph,
    detection_scores,
    likely_sources,
)
from repro.reporting import format_table


def main() -> None:
    dataset = generate_qatar_living_like(
        seed=99,
        n_tasks=120,
        n_workers=50,
        n_copiers=12,
        target_claims=2400,
        source_pool_size=4,
    )
    true_copiers = sorted(
        w.worker_id for w in dataset.workers if w.is_copier
    )
    print(f"campaign: {dataset.n_tasks} tasks, {dataset.n_workers} workers")
    print(f"hidden copiers ({len(true_copiers)}): {', '.join(true_copiers)}")

    result = DATE(DateConfig(copy_prob_r=0.6, prior_alpha=0.2)).run(dataset)

    threshold = 0.6
    graph = dependence_graph(result, threshold=threshold)
    print(f"\ncopy graph at threshold {threshold}: "
          f"{graph.number_of_edges()} suspected copy edges")

    clusters = copier_clusters(result, threshold=threshold)
    print(f"\naudit clusters ({len(clusters)}):")
    for k, cluster in enumerate(clusters):
        members = sorted(cluster)
        truth_flags = [
            "C" if dataset.worker_by_id[m].is_copier else "·" for m in members
        ]
        print(f"  cluster {k}: " + ", ".join(
            f"{m}[{flag}]" for m, flag in zip(members, truth_flags)
        ))
    print("  (C = true copier per generative ground truth, · = independent)")

    print("\nmost-copied-from workers:")
    rows = []
    for worker_id, score in likely_sources(result, threshold=threshold, top=5):
        profile = dataset.worker_by_id[worker_id]
        rows.append(
            [
                worker_id,
                score,
                "yes" if any(
                    worker_id in w.sources for w in dataset.workers
                ) else "no",
                profile.reliability,
            ]
        )
    print(format_table(
        ["worker", "incoming copy mass", "true source?", "reliability"], rows
    ))

    scores = detection_scores(result, dataset, threshold=threshold)
    print("\ndetector scorecard:")
    print(f"  copiers flagged:   {scores.detected_copiers}/{scores.true_copiers} "
          f"(recall {scores.recall:.2f})")
    print(f"  false positives:   {scores.false_positives} of "
          f"{scores.flagged_workers} flagged (precision {scores.precision:.2f})")
    print(f"  copier-source pairs linked: {scores.pair_recall:.2f}")


if __name__ == "__main__":
    main()
