"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (PEP 517 editable installs require bdist_wheel).
"""

from setuptools import setup

setup()
