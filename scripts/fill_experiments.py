#!/usr/bin/env python
"""Insert the measured series tables into EXPERIMENTS.md.

Reads every ``results/*.json`` produced by ``scripts/calibrate.py`` and
replaces the ``<!-- MEASURED-SERIES -->`` marker in EXPERIMENTS.md with
one markdown table per experiment.

Run:  python scripts/fill_experiments.py [results_dir] [experiments_md]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

MARKER = "<!-- MEASURED-SERIES -->"

ORDER = [
    "table1",
    "fig3a", "fig3b",
    "fig4a", "fig4b",
    "fig5a", "fig5b",
    "fig6a", "fig6b",
    "fig7a", "fig7b",
    "fig8a", "fig8b",
    "approx", "ablation", "winners",
]


def render(payload: dict) -> str:
    lines = [f"### {payload['experiment_id']} — {payload['title']}", ""]
    names = sorted(payload["series"])
    lines.append("| " + " | ".join([payload["x_label"], *names]) + " |")
    lines.append("|" + "---|" * (len(names) + 1))
    for k, x in enumerate(payload["x_values"]):
        cells = [f"{x:g}" if isinstance(x, (int, float)) else str(x)]
        for name in names:
            cells.append(f"{payload['series'][name][k]:.4g}")
        lines.append("| " + " | ".join(cells) + " |")
    meta = payload.get("meta", {})
    keep = {
        k: v
        for k, v in meta.items()
        if k in ("instances", "worker_id", "true_cost", "truthful_utility",
                 "mean_ratio", "max_ratio", "per_variant")
    }
    if keep:
        lines.append("")
        for key, value in keep.items():
            lines.append(f"- {key}: {value}")
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    results_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    experiments_md = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("EXPERIMENTS.md")
    blocks = []
    for experiment_id in ORDER:
        path = results_dir / f"{experiment_id}.json"
        if not path.exists():
            continue
        blocks.append(render(json.loads(path.read_text())))
    text = experiments_md.read_text()
    if MARKER not in text:
        print(f"marker {MARKER!r} not found in {experiments_md}", file=sys.stderr)
        return 1
    experiments_md.write_text(text.replace(MARKER, "\n".join(blocks)))
    print(f"inserted {len(blocks)} series tables into {experiments_md}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
