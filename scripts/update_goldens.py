#!/usr/bin/env python
"""Regenerate the golden regression fixtures under tests/golden/.

Run after an *intentional* numeric change (new algorithm defaults, a
reworked generator) and commit the refreshed JSON together with the
change that caused it:

    PYTHONPATH=src python scripts/update_goldens.py

The fixtures pin the seeded demo configuration of fig3a / fig3b /
table1; ``tests/integration/test_golden.py`` fails with a per-point
diff whenever the reproduced series drift from these files.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"


def golden_results() -> dict[str, object]:
    """The pinned demo runs (import here so --help stays dependency-free)."""
    from repro.experiments.algo_accuracy import run_algo_accuracy
    from repro.experiments.fig3 import run_fig3a, run_fig3b
    from repro.experiments.fig67 import run_fig6a, run_fig7a_payments
    from repro.experiments.table1 import run_table1

    #: One shared grid for the auction goldens: the fig6a/fig7a sweeps
    #: at three task counts — small enough to regenerate in seconds,
    #: large enough that RA's prefix-shared payments, GA and GB all see
    #: multi-winner auctions.
    auction_grid = (40, 80, 120)

    return {
        "fig3a": run_fig3a(
            "quick",
            instances=2,
            base_seed=7,
            epsilon_grid=(0.1, 0.5, 0.9),
            alpha_grid=(0.1, 0.5, 0.9),
        ),
        "fig3b": run_fig3b(
            "quick", instances=2, base_seed=7, r_grid=(0.1, 0.4, 0.8)
        ),
        "table1": run_table1(),
        # The auction stage's deterministic series: fig6a's social cost
        # and fig7a's total-payment twin (fig7a itself plots wall-clock,
        # which cannot be pinned).  Any drift in DATE, the SOAC build,
        # or either auction engine shows up here point by point.
        "fig6a": run_fig6a(
            "quick", instances=2, base_seed=7, task_grid=auction_grid
        ),
        "fig7a_payments": run_fig7a_payments(
            "quick", instances=2, base_seed=7, task_grid=auction_grid
        ),
        # The zoo's accuracy grid: the six fast algorithms (ED is
        # excluded — exhaustive dependence enumeration costs seconds
        # per run and is already pinned by the adapter differential
        # tests) across three copier fractions.  Drift in any zoo
        # member's numerics fails its series point by point.
        "algo_accuracy": run_algo_accuracy(
            "quick",
            instances=2,
            base_seed=7,
            algorithms=("DATE", "MV", "NC", "TruthFinder", "FDS", "LCA"),
            copier_fractions=(0.0, 0.15, 0.3),
        ),
    }


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, result in golden_results().items():
        payload = {
            "experiment_id": result.experiment_id,
            "x_values": list(result.x_values),
            "series": {key: list(ys) for key, ys in result.series.items()},
        }
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
