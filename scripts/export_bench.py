#!/usr/bin/env python
"""Run benchmark suites and export the BENCH_<suite>.json trajectory.

Each benchmark module under ``benchmarks/`` writes its per-test timings
to ``BENCH_<suite>.json`` at the repo root when it runs (the hook lives
in ``benchmarks/conftest.py``); this script drives a sweep over the
suites and prints a summary table of whatever trajectory files exist::

    PYTHONPATH=src python scripts/export_bench.py                # all suites
    PYTHONPATH=src python scripts/export_bench.py auction micro  # a subset
                                                  # (the _bench suffix is optional)
    PYTHONPATH=src python scripts/export_bench.py --with-gates   # incl. speedup gates

Hardware-sensitive speedup gates are excluded by default (same policy
as CI); pass ``--with-gates`` on a quiet machine to include them.  The
JSON files are measurements, not fixtures — each run *appends* to the
suite's trajectory (newest last, bounded), the files are git-ignored
and uploaded as CI artifacts, except ``BENCH_dependence.json`` whose
seeded trajectory is committed as the dependence-engine reference.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"


def available_suites() -> list[str]:
    """Suite names, one per benchmarks/test_<suite>.py module."""
    return sorted(
        path.stem.removeprefix("test_")
        for path in BENCH_DIR.glob("test_*.py")
    )


def run_suite(suite: str, *, with_gates: bool) -> int:
    """Run one benchmark module (timings only, no pytest-benchmark stats)."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_DIR / f"test_{suite}.py"),
        "--benchmark-disable",
        "-q",
    ]
    if not with_gates:
        # Hardware-sensitive percent-level gates: the backend speedup
        # ratio and the telemetry overhead budgets (DESIGN.md §13).
        command += ["-k", "not speedup and not overhead"]
    print(f"== {suite} ==", flush=True)
    return subprocess.run(command, cwd=REPO_ROOT).returncode


def summarize() -> None:
    """Print one line per BENCH_*.json at the repo root.

    Files hold a run trajectory (newest last); the summary shows the
    latest run plus the trajectory depth.  Pre-append single-run files
    are read as one-entry trajectories.
    """
    files = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json files found")
        return
    print(
        f"\n{'suite':<24} {'tests':>5} {'total':>10} {'runs':>5}  environment"
    )
    for path in files:
        payload = json.loads(path.read_text())
        runs = payload.get("runs") or [payload]
        latest = runs[-1]
        implementation = latest.get("python_implementation", "?")
        environment = " ".join(
            part
            for part in (
                f"{implementation} {latest.get('python', '?')}",
                latest.get("arch") or "",
                f"numpy {latest['numpy']}" if latest.get("numpy") else "",
            )
            if part
        )
        print(
            f"{payload['suite']:<24} {len(latest['timings']):>5} "
            f"{latest['total_seconds']:>9.2f}s {len(runs):>5}  {environment}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "suites",
        nargs="*",
        help="suite names (default: every benchmarks/test_*.py module)",
    )
    parser.add_argument(
        "--with-gates",
        action="store_true",
        help="include the hardware-sensitive speedup gate tests",
    )
    parser.add_argument(
        "--summary-only",
        action="store_true",
        help="only print the table of existing BENCH_*.json files",
    )
    args = parser.parse_args(argv)

    failures = 0
    if not args.summary_only:
        known = available_suites()
        # Accept the module-stem suite name with or without its _bench
        # suffix ("auction" == "auction_bench").
        resolved = [
            suite if suite in known else f"{suite}_bench"
            for suite in args.suites
        ]
        suites = resolved or known
        unknown = sorted(set(suites) - set(known))
        if unknown:
            parser.error(
                f"unknown suites {unknown}; available: {', '.join(known)}"
            )
        for suite in suites:
            if run_suite(suite, with_gates=args.with_gates) != 0:
                failures += 1
    summarize()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
