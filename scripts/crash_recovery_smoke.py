"""Kill -9 a live journaled server mid-stream and prove recovery is exact.

The end-to-end durability smoke (DESIGN.md §15), runnable locally and
in CI::

    PYTHONPATH=src python scripts/crash_recovery_smoke.py

What it does:

1. starts ``repro serve --journal-dir`` and replays a seeded campaign
   through the retrying :class:`~repro.streaming.client.StreamingClient`
   end to end — the **uninterrupted reference**; the server is then
   stopped with SIGTERM and must exit 0 (graceful shutdown);
2. starts a second server on a fresh journal directory, streams the
   first half of the same campaign, and ``kill -9``'s the process —
   no flush, no goodbye;
3. restarts the server over the surviving journal directory, waits for
   ``/healthz`` to leave the recovering state, re-sends the unacked
   batch (same sequence number) and the rest of the stream;
4. asserts the recovered campaign's truths, confidences, and worker
   accuracies are **byte-identical** (as canonical JSON) to the
   uninterrupted reference.

Exit code 0 = the durability contract held.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import generate_qatar_living_like  # noqa: E402
from repro.streaming import StreamingClient, replay_batches  # noqa: E402

SEED = 1337
N_BATCHES = 8
CAMPAIGN = "smoke"
SCALE = dict(n_tasks=60, n_workers=30, n_copiers=7, target_claims=900)


class Server:
    """One ``repro serve`` child process bound to an ephemeral port."""

    def __init__(self, journal_dir: Path):
        self.journal_dir = journal_dir
        self.process: subprocess.Popen | None = None
        self.url = ""

    def start(self) -> "Server":
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--quiet",
                "--journal-dir", str(self.journal_dir),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line and self.process.poll() is not None:
                raise SystemExit("server died before announcing its port")
            match = re.search(r"repro streaming service on (http://\S+)", line)
            if match:
                self.url = match.group(1)
                return self
        raise SystemExit("server never announced its port")

    def sigkill(self) -> None:
        self.process.kill()  # SIGKILL: no flush, no handlers, no mercy
        self.process.wait()

    def sigterm_and_expect_clean_exit(self) -> None:
        self.process.send_signal(signal.SIGTERM)
        code = self.process.wait(timeout=30)
        assert code == 0, f"graceful shutdown exited {code}, expected 0"


def canonical_state(client: StreamingClient) -> str:
    """The campaign estimate surface as canonical JSON text."""
    truths = client.truths(CAMPAIGN)
    workers = client.request(
        "GET", f"/campaigns/{CAMPAIGN}/workers"
    )
    return json.dumps(
        {"truths": truths, "workers": workers}, sort_keys=True,
        separators=(",", ":"),
    )


def stream(client: StreamingClient, batches, start_seq: int = 1) -> None:
    for seq in range(start_seq, len(batches) + 1):
        client.ingest(CAMPAIGN, batches[seq - 1], seq=seq)


def main() -> int:
    dataset = generate_qatar_living_like(seed=SEED, **SCALE)
    batches = replay_batches(dataset, N_BATCHES)
    root = Path(tempfile.mkdtemp(prefix="crash-smoke-"))

    # -- 1. uninterrupted reference + graceful shutdown ------------------
    reference_server = Server(root / "wal-reference").start()
    client = StreamingClient(reference_server.url, seed=SEED)
    client.wait_ready()
    client.create_campaign(CAMPAIGN, refresh_every=2)
    stream(client, batches)
    reference = canonical_state(client)
    reference_server.sigterm_and_expect_clean_exit()
    print(f"reference run ok ({len(batches)} batches, graceful exit 0)")

    # -- 2. the crash run ------------------------------------------------
    crash_wal = root / "wal-crash"
    victim = Server(crash_wal).start()
    client = StreamingClient(victim.url, seed=SEED)
    client.wait_ready()
    client.create_campaign(CAMPAIGN, refresh_every=2)
    half = len(batches) // 2
    stream(client, batches[:half])
    victim.sigkill()
    print(f"killed -9 after {half}/{len(batches)} acknowledged batches")

    # -- 3. restart over the same journals, finish the stream ------------
    revived = Server(crash_wal).start()
    client = StreamingClient(revived.url, seed=SEED, retries=8)
    health = client.wait_ready()
    assert health.get("journaled"), health
    # The retrying client's contract: re-send the last seq (the server
    # deduplicates if the ack, not the append, was what got lost), then
    # the rest of the stream.
    replayed = client.snapshot(CAMPAIGN)
    assert replayed["applied_seq"] == half, replayed
    duplicate = client.ingest(CAMPAIGN, batches[half - 1], seq=half)
    assert duplicate.get("duplicate"), (
        f"re-sent seq {half} was applied twice: {duplicate}"
    )
    stream(client, batches, start_seq=half + 1)
    recovered = canonical_state(client)
    revived.sigterm_and_expect_clean_exit()

    # -- 4. the verdict ---------------------------------------------------
    assert recovered == reference, (
        "recovered state diverged from the uninterrupted reference:\n"
        f"  reference: {reference[:200]}...\n"
        f"  recovered: {recovered[:200]}..."
    )
    print(
        f"recovered state byte-identical to the uninterrupted run "
        f"({len(reference)} bytes of canonical JSON)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
