#!/usr/bin/env python
"""Run every experiment at paper scale and archive results.

Writes one CSV + JSON per experiment into ``results/`` and a combined
text report ``results/REPORT.txt``.  Instance counts are reduced from
the paper's 100 to keep the total wall-clock around twenty minutes;
EXPERIMENTS.md cites these outputs.

Run:  python scripts/calibrate.py [outdir]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments import run_experiment
from repro.reporting import render_chart, render_result_table, write_csv, write_json

#: (experiment id, runner kwargs) — paper scale, reduced instances.
RUNS: list[tuple[str, dict]] = [
    ("table1", {}),
    ("fig3a", {"scale": "paper", "instances": 2,
               "epsilon_grid": (0.1, 0.3, 0.5, 0.7, 0.9),
               "alpha_grid": (0.1, 0.3, 0.5, 0.7, 0.9)}),
    ("fig3b", {"scale": "paper", "instances": 3}),
    ("fig4a", {"scale": "paper", "instances": 2}),
    ("fig4b", {"scale": "paper", "instances": 2}),
    ("fig5a", {"scale": "paper", "instances": 1}),
    ("fig5b", {"scale": "paper", "instances": 1}),
    ("fig6a", {"scale": "paper", "instances": 3}),
    ("fig6b", {"scale": "paper", "instances": 3}),
    ("fig7a", {"scale": "paper", "instances": 1}),
    ("fig7b", {"scale": "paper", "instances": 1}),
    ("fig8a", {"scale": "paper"}),
    ("fig8b", {"scale": "paper"}),
    ("approx", {"instances": 8}),
    ("ablation", {"scale": "paper", "instances": 3}),
    ("winners", {"scale": "paper", "instances": 2}),
]


def main() -> int:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    outdir.mkdir(parents=True, exist_ok=True)
    report_lines: list[str] = []
    total_start = time.time()
    for experiment_id, kwargs in RUNS:
        start = time.time()
        print(f"[{experiment_id}] running with {kwargs} ...", flush=True)
        result = run_experiment(experiment_id, **kwargs)
        elapsed = time.time() - start
        write_csv(result, outdir / f"{experiment_id}.csv")
        write_json(result, outdir / f"{experiment_id}.json")
        block = render_result_table(result)
        chart = render_chart(result)
        report_lines += [block, "", chart, "", f"(elapsed: {elapsed:.1f}s)", "", "=" * 72, ""]
        print(f"[{experiment_id}] done in {elapsed:.1f}s", flush=True)
    (outdir / "REPORT.txt").write_text("\n".join(report_lines))
    print(f"total: {time.time() - total_start:.1f}s -> {outdir}/REPORT.txt")
    return 0


if __name__ == "__main__":
    sys.exit(main())
