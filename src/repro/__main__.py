"""Command-line interface: ``python -m repro`` (or the ``repro`` script).

Subcommands:

- ``repro list`` — show every reproducible experiment;
- ``repro run <id> [--scale quick|paper] [--instances N] [--seed S]
  [--out DIR] [--no-chart]`` — run one experiment (or ``all``), print
  the table and ASCII chart, optionally export CSV/JSON;
- ``repro generate <dir> [--tasks N] [--workers N] [--copiers N]
  [--claims N] [--seed S]`` — write a seeded synthetic campaign as CSV;
- ``repro truth <dir> [--algorithm NAME] [--r R] [--alpha A]`` — run
  truth discovery on a CSV dataset and print the estimates; any
  algorithm-zoo member (``repro algo list``) is accepted;
- ``repro algo list`` — show every registered truth-discovery
  algorithm (the zoo behind the ``TruthDiscoverer`` interface);
- ``repro algo run [--algorithms A,B] [--fractions F1,F2] [--scale S]
  [--instances N] [--parallel N] [--cache]`` — run the
  ``algo-accuracy`` grid: precision of each selected algorithm as the
  copier fraction sweeps;
- ``repro auction <dir> [--cap F]`` — run the full IMC2 mechanism on a
  CSV dataset and print winners and payments;
- ``repro serve [--host H] [--port P] [--refresh-every N]
  [--journal-dir DIR]`` — run the streaming truth-discovery HTTP
  service; with ``--journal-dir`` every campaign is write-ahead
  journaled and replayed after a crash (DESIGN.md §15), and SIGTERM
  shuts down gracefully (drain, flush, exit 0);
- ``repro recover --journal-dir DIR`` — replay the ingest journals
  offline and print per-campaign recovery reports;
- ``repro ingest <dir> [--batches N] [--url URL]`` — replay an archived
  CSV campaign as a claim-batch stream, either through an in-process
  online estimator or against a running ``repro serve`` instance (the
  remote path retries with backoff and exactly-once sequence numbers);
- ``repro scenario list`` — show every registered adversarial scenario;
- ``repro scenario run <name> [--instances N] [--seed S]
  [--parallel N] [--cache] [--store DIR]`` — run one adversarial
  scenario end to end and print the per-metric summary (DATE/MV
  precision, detection P/R/F1, auction shading metrics when the
  scenario runs the auction stage);
- ``repro ledger list/show/gc [--store DIR]`` — inspect and maintain
  the content-addressed run ledger that ``--cache`` runs read and
  write (see DESIGN.md §11);
- ``repro metrics [--url URL] [--json]`` — print the process metrics
  registry (or scrape a running service's ``/metrics``);
- ``repro trace list/show`` — inspect recorded run traces (JSONL event
  streams keyed by the ledger result fingerprint, DESIGN.md §13);
  ``repro run --trace`` / ``repro ingest --trace`` record one.

Caching: ``repro run``/``repro scenario run`` accept ``--cache`` /
``--no-cache`` and ``--store DIR`` (default ``$REPRO_STORE`` or
``~/.cache/repro``).  With the cache on, per-instance rows, sweep
points and finished results are banked under content fingerprints, so
re-runs and ``--instances`` growth recompute only the delta — and the
warm output is bit-identical to a cold run.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

from .artifacts import LedgerError, RunLedger
from .core.config import DateConfig
from .datasets.io import load_dataset, save_dataset
from .datasets.qatar_living import generate_qatar_living_like
from .discovery import ALGORITHM_NAMES, list_algorithms, make_discoverer
from .errors import ReproError
from .experiments.algo_accuracy import run_algo_accuracy
from .experiments.registry import get_experiment, list_experiments
from .mechanism.imc2 import IMC2
from .obs import (
    default_trace_dir,
    find_trace,
    get_logger,
    get_registry,
    list_traces,
    read_trace,
    render_prometheus,
    trace_run,
)
from .reporting.export import write_csv, write_json
from .reporting.figures import render_chart
from .reporting.tables import format_table, render_result_table
from .scenarios import get_scenario, list_scenarios, run_scenario
from .streaming import (
    CampaignStore,
    OnlineDATE,
    StreamingClient,
    replay_batches,
    serve,
)

__all__ = ["main"]


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--cache/--no-cache`` + ``--store`` argument pair."""
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="read/write the content-addressed run ledger so repeated "
        "and resumed runs recompute only the missing work "
        "(bit-identical to a cold run; default: off)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="run-ledger directory (default: $REPRO_STORE or ~/.cache/repro)",
    )


def _ledger_from(args: argparse.Namespace) -> RunLedger | None:
    """The ledger selected by ``--cache``/``--store`` (None = cache off)."""
    if not getattr(args, "cache", False):
        return None
    return RunLedger(args.store)


def _print_ledger_stats(ledger: RunLedger) -> None:
    stats = ledger.stats
    print(
        f"ledger: {stats.describe()} "
        f"(hit rate {stats.hit_rate * 100.0:.1f}%, store: {ledger.root})"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables and figures from 'Incentivizing the Workers "
            "for Truth Discovery in Crowdsourcing with Copiers' (ICDCS 2019)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all reproducible experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'repro list') or 'all'")
    run.add_argument(
        "--scale",
        choices=("quick", "paper"),
        default="quick",
        help="workload size preset (default: quick)",
    )
    run.add_argument(
        "--instances",
        type=int,
        default=None,
        help="override the number of seeded instances to average over",
    )
    run.add_argument("--seed", type=int, default=42, help="base seed (default 42)")
    run.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to export CSV and JSON results into",
    )
    run.add_argument(
        "--no-chart", action="store_true", help="skip the ASCII chart rendering"
    )
    run.add_argument(
        "--parallel",
        type=int,
        default=None,
        help="fan instances out over N worker processes (experiments "
        "declaring the 'parallel' feature only; results are "
        "bit-identical to the serial run)",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="record a structured JSONL run trace (inspect with "
        "'repro trace show'); with --cache the trace events carry the "
        "ledger row fingerprints",
    )
    run.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="trace output directory (default: $REPRO_TRACE_DIR or "
        "~/.cache/repro/traces)",
    )
    _add_cache_arguments(run)

    generate = sub.add_parser(
        "generate", help="write a seeded synthetic campaign as CSV"
    )
    generate.add_argument("directory", type=Path, help="output directory")
    generate.add_argument("--tasks", type=int, default=300)
    generate.add_argument("--workers", type=int, default=120)
    generate.add_argument("--copiers", type=int, default=30)
    generate.add_argument("--claims", type=int, default=6000)
    generate.add_argument("--copy-prob", type=float, default=0.8)
    generate.add_argument("--seed", type=int, default=42)

    truth = sub.add_parser("truth", help="run truth discovery on a CSV dataset")
    truth.add_argument("directory", type=Path, help="dataset directory")
    truth.add_argument(
        "--algorithm",
        choices=ALGORITHM_NAMES,
        default="DATE",
        help="any algorithm-zoo member (see 'repro algo list')",
    )
    truth.add_argument("--r", type=float, default=0.4, help="assumed copy prob")
    truth.add_argument("--alpha", type=float, default=0.2, help="dependence prior")
    truth.add_argument("--epsilon", type=float, default=0.5, help="initial accuracy")
    truth.add_argument(
        "--limit", type=int, default=20, help="print at most this many tasks"
    )

    algo = sub.add_parser(
        "algo", help="truth-discovery algorithm zoo (list / run)"
    )
    algo_sub = algo.add_subparsers(dest="algo_command", required=True)
    algo_sub.add_parser("list", help="list every registered algorithm")
    algo_run = algo_sub.add_parser(
        "run", help="run the algo-accuracy grid (precision vs copier fraction)"
    )
    algo_run.add_argument(
        "--algorithms",
        default=",".join(ALGORITHM_NAMES),
        help="comma-separated algorithm names (default: the whole zoo)",
    )
    algo_run.add_argument(
        "--fractions",
        default=None,
        help="comma-separated copier fractions of the worker pool "
        "(default: 0,0.1,0.2,0.3,0.4)",
    )
    algo_run.add_argument(
        "--scale",
        choices=("quick", "paper"),
        default="quick",
        help="workload size preset (default: quick)",
    )
    algo_run.add_argument(
        "--instances",
        type=int,
        default=None,
        help="override the number of seeded instances to average over",
    )
    algo_run.add_argument("--seed", type=int, default=42, help="base seed")
    algo_run.add_argument(
        "--parallel",
        type=int,
        default=1,
        help="fan instances out over N worker processes "
        "(bit-identical to the serial run)",
    )
    algo_run.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to export CSV and JSON results into",
    )
    algo_run.add_argument(
        "--no-chart", action="store_true", help="skip the ASCII chart rendering"
    )
    _add_cache_arguments(algo_run)

    auction = sub.add_parser("auction", help="run IMC2 on a CSV dataset")
    auction.add_argument("directory", type=Path, help="dataset directory")
    auction.add_argument(
        "--cap",
        type=float,
        default=None,
        help="cap requirements at this fraction of available accuracy",
    )
    auction.add_argument("--r", type=float, default=0.4, help="assumed copy prob")

    server = sub.add_parser(
        "serve", help="run the streaming truth-discovery HTTP service"
    )
    server.add_argument("--host", default="127.0.0.1")
    server.add_argument("--port", type=int, default=8080)
    server.add_argument(
        "--refresh-every",
        type=int,
        default=0,
        help="full re-estimation every N ingested batches per campaign "
        "(0 = only on explicit /refresh)",
    )
    server.add_argument(
        "--max-campaigns",
        type=int,
        default=None,
        help="evict the least recently used campaign beyond this count",
    )
    server.add_argument("--r", type=float, default=0.4, help="assumed copy prob")
    server.add_argument("--alpha", type=float, default=0.2, help="dependence prior")
    server.add_argument("--epsilon", type=float, default=0.5, help="initial accuracy")
    server.add_argument(
        "--algorithm",
        choices=ALGORITHM_NAMES,
        default="DATE",
        help="default truth-discovery algorithm for new campaigns "
        "(per-campaign override via the create payload)",
    )
    server.add_argument("--quiet", action="store_true", help="suppress access logs")
    server.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        help="write-ahead journal directory: campaign creation and every "
        "claim batch are fsync'd here before they are applied, and a "
        "restarted server replays them back to the pre-crash state",
    )
    server.add_argument(
        "--store",
        type=Path,
        default=None,
        help="run-ledger directory for banked refresh snapshots (speeds "
        "up recovery; default: no ledger)",
    )

    recover = sub.add_parser(
        "recover",
        help="replay ingest journals offline and print recovery reports",
    )
    recover.add_argument(
        "--journal-dir",
        type=Path,
        required=True,
        help="journal directory written by 'repro serve --journal-dir'",
    )
    recover.add_argument(
        "--store",
        type=Path,
        default=None,
        help="run-ledger directory with banked refresh snapshots "
        "(recovery adopts matching snapshots instead of recomputing)",
    )
    recover.add_argument(
        "--json",
        action="store_true",
        help="print the recovery reports as JSON",
    )

    ingest = sub.add_parser(
        "ingest", help="replay a CSV campaign as a claim-batch stream"
    )
    ingest.add_argument("directory", type=Path, help="dataset directory")
    ingest.add_argument(
        "--batches", type=int, default=10, help="number of replay batches"
    )
    ingest.add_argument(
        "--campaign",
        default=None,
        help="campaign id (default: the dataset directory name)",
    )
    ingest.add_argument(
        "--url",
        default=None,
        help="base URL of a running 'repro serve' instance; when omitted "
        "the replay runs through an in-process online estimator",
    )
    ingest.add_argument(
        "--refresh-every",
        type=int,
        default=0,
        help="periodic full refresh cadence during the replay",
    )
    ingest.add_argument("--r", type=float, default=0.4, help="assumed copy prob")
    ingest.add_argument("--alpha", type=float, default=0.2, help="dependence prior")
    ingest.add_argument("--epsilon", type=float, default=0.5, help="initial accuracy")
    ingest.add_argument(
        "--algorithm",
        choices=ALGORITHM_NAMES,
        default=None,
        help="truth-discovery algorithm driving the replay "
        "(default: DATE in-process, the server's default remotely)",
    )
    ingest.add_argument(
        "--trace",
        action="store_true",
        help="record a structured JSONL trace of the replay",
    )
    ingest.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="trace output directory (default: $REPRO_TRACE_DIR or "
        "~/.cache/repro/traces)",
    )

    scenario = sub.add_parser(
        "scenario", help="adversarial scenario lab (list / run)"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_sub.add_parser("list", help="list all registered scenarios")
    scenario_run = scenario_sub.add_parser(
        "run", help="run one adversarial scenario end to end"
    )
    scenario_run.add_argument("name", help="scenario name (see 'scenario list')")
    scenario_run.add_argument(
        "--instances",
        type=int,
        default=None,
        help="override the number of seeded instances",
    )
    scenario_run.add_argument(
        "--seed", type=int, default=None, help="override the base seed"
    )
    scenario_run.add_argument(
        "--parallel",
        type=int,
        default=1,
        help="fan instances out over N worker processes "
        "(default 1 = in-process; bit-identical to the serial run)",
    )
    scenario_run.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="override the dependence-posterior detection threshold",
    )
    scenario_run.add_argument(
        "--algorithm",
        choices=ALGORITHM_NAMES,
        default=None,
        help="override the scenario's truth-discovery algorithm",
    )
    _add_cache_arguments(scenario_run)

    ledger = sub.add_parser(
        "ledger", help="inspect / maintain the run-ledger store"
    )
    ledger_sub = ledger.add_subparsers(dest="ledger_command", required=True)
    ledger_list = ledger_sub.add_parser(
        "list", help="list stored artifacts (newest first)"
    )
    ledger_list.add_argument(
        "--kind",
        choices=("rows", "points", "results", "snapshots"),
        default=None,
        help="restrict to one artifact kind",
    )
    ledger_list.add_argument(
        "--limit", type=int, default=40, help="show at most N entries"
    )
    ledger_show = ledger_sub.add_parser(
        "show", help="print one stored entry as JSON"
    )
    ledger_show.add_argument(
        "fingerprint", help="fingerprint (any unambiguous prefix)"
    )
    ledger_gc = ledger_sub.add_parser(
        "gc", help="delete stored artifacts"
    )
    ledger_gc.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="DAYS",
        help="only delete entries older than DAYS (may be fractional)",
    )
    ledger_gc.add_argument(
        "--all",
        action="store_true",
        help="delete every entry (required when --older-than is absent)",
    )
    ledger_gc.add_argument(
        "--kind",
        choices=("rows", "points", "results", "snapshots"),
        default=None,
        help="restrict to one artifact kind",
    )
    for sub_parser in (ledger_list, ledger_show, ledger_gc):
        sub_parser.add_argument(
            "--store",
            type=Path,
            default=None,
            help="run-ledger directory (default: $REPRO_STORE or ~/.cache/repro)",
        )

    metrics = sub.add_parser(
        "metrics", help="print the process metrics registry"
    )
    metrics.add_argument(
        "--url",
        default=None,
        help="scrape /metrics from a running 'repro serve' instance "
        "instead of reading this process's registry",
    )
    metrics.add_argument(
        "--json",
        action="store_true",
        help="print a JSON snapshot instead of Prometheus text "
        "(local registry only)",
    )

    trace = sub.add_parser(
        "trace", help="inspect recorded run traces (list / show)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_list = trace_sub.add_parser(
        "list", help="list recorded traces (newest first)"
    )
    trace_list.add_argument(
        "--limit", type=int, default=40, help="show at most N traces"
    )
    trace_show = trace_sub.add_parser(
        "show", help="print one trace's event stream"
    )
    trace_show.add_argument(
        "fingerprint", help="trace fingerprint (any unambiguous prefix)"
    )
    trace_show.add_argument(
        "--limit", type=int, default=0, help="show at most N events (0 = all)"
    )
    trace_show.add_argument(
        "--json",
        action="store_true",
        help="print raw JSONL events instead of the table",
    )
    for sub_parser in (trace_list, trace_show):
        sub_parser.add_argument(
            "--dir",
            type=Path,
            default=None,
            help="trace directory (default: $REPRO_TRACE_DIR or "
            "~/.cache/repro/traces)",
        )
    return parser


def _run_one(
    experiment_id: str,
    args: argparse.Namespace,
    ledger: RunLedger | None = None,
) -> None:
    experiment = get_experiment(experiment_id)
    kwargs: dict[str, object] = {"base_seed": args.seed}
    if experiment.supports("scale"):
        kwargs["scale"] = args.scale
    if args.instances is not None and experiment.supports("instances"):
        kwargs["instances"] = args.instances
    if args.parallel is not None:
        if experiment.supports("parallel"):
            kwargs["parallel"] = args.parallel
        else:
            parallel_ids = sorted(
                e.experiment_id for e in list_experiments() if e.supports("parallel")
            )
            get_logger("repro.cli").warning(
                "--parallel ignored: experiment is not wired onto the "
                "parallel executor, running serially",
                experiment=experiment_id,
                parallel_experiments=parallel_ids,
            )
    if ledger is not None:
        if experiment.supports("ledger"):
            # The footer reports this experiment's stats, not process
            # totals — matters for `repro run all --cache`.
            ledger.reset_stats()
            kwargs["ledger"] = ledger
        else:
            get_logger("repro.cli").warning(
                "--cache ignored: experiment measures wall-clock and is "
                "never cached",
                experiment=experiment_id,
            )
    result = experiment.runner(**kwargs)
    print(render_result_table(result))
    if not args.no_chart:
        print()
        print(render_chart(result))
    if args.out is not None:
        csv_path = write_csv(result, args.out / f"{experiment_id}.csv")
        json_path = write_json(result, args.out / f"{experiment_id}.json")
        print(f"\nwrote {csv_path} and {json_path}")
    if ledger is not None and experiment.supports("ledger"):
        _print_ledger_stats(ledger)
    print()


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = generate_qatar_living_like(
        seed=args.seed,
        n_tasks=args.tasks,
        n_workers=args.workers,
        n_copiers=args.copiers,
        target_claims=args.claims,
        copy_prob=args.copy_prob,
    )
    path = save_dataset(dataset, args.directory)
    copiers = sum(1 for w in dataset.workers if w.is_copier)
    print(
        f"wrote {dataset.n_tasks} tasks, {dataset.n_workers} workers "
        f"({copiers} copiers), {dataset.n_claims} claims to {path}"
    )
    return 0


def _cmd_truth(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.directory)
    config = DateConfig(
        copy_prob_r=args.r, prior_alpha=args.alpha, initial_accuracy=args.epsilon
    )
    algorithm = make_discoverer(args.algorithm, date_config=config)
    result = algorithm.run(dataset)
    rows = []
    for task_id, value in list(result.truths.items())[: args.limit]:
        confidence = result.confidence.get(task_id, float("nan"))
        reference = dataset.task_by_id[task_id].truth
        verdict = "" if reference is None else ("ok" if value == reference else "WRONG")
        rows.append([task_id, value, confidence, verdict])
    print(format_table(["task", "estimate", "confidence", "vs truth"], rows))
    print(f"\nalgorithm: {result.method}, iterations: {result.iterations}")
    if dataset.truths:
        print(f"precision: {result.precision():.4f} over {len(dataset.truths)} tasks")
    if len(result.truths) > args.limit:
        print(f"(showing {args.limit} of {len(result.truths)} tasks)")
    return 0


def _cmd_algo(args: argparse.Namespace) -> int:
    if args.algo_command == "list":
        rows = [
            (spec.name, spec.kind, spec.summary) for spec in list_algorithms()
        ]
        print(format_table(["name", "kind", "summary"], rows))
        return 0
    # run
    algorithms = tuple(
        name for name in (s.strip() for s in args.algorithms.split(",")) if name
    )
    kwargs: dict[str, object] = {
        "scale": args.scale,
        "base_seed": args.seed,
        "algorithms": algorithms,
        "parallel": args.parallel,
    }
    if args.fractions is not None:
        kwargs["copier_fractions"] = tuple(
            float(s) for s in args.fractions.split(",") if s.strip()
        )
    if args.instances is not None:
        kwargs["instances"] = args.instances
    ledger = _ledger_from(args)
    if ledger is not None:
        ledger.reset_stats()
        kwargs["ledger"] = ledger
    result = run_algo_accuracy(**kwargs)
    print(render_result_table(result))
    if not args.no_chart:
        print()
        print(render_chart(result))
    if args.out is not None:
        csv_path = write_csv(result, args.out / "algo-accuracy.csv")
        json_path = write_json(result, args.out / "algo-accuracy.json")
        print(f"\nwrote {csv_path} and {json_path}")
    if ledger is not None:
        _print_ledger_stats(ledger)
    return 0


def _cmd_auction(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.directory)
    mechanism = IMC2(DateConfig(copy_prob_r=args.r), requirement_cap=args.cap)
    outcome = mechanism.run(dataset)
    auction = outcome.auction
    rows = [
        [
            worker_id,
            auction.payments[worker_id],
            outcome.worker_utilities[worker_id],
            outcome.truth.worker_accuracy.get(worker_id, 0.0),
        ]
        for worker_id in auction.winner_ids
    ]
    print(format_table(["winner", "payment", "utility", "accuracy"], rows))
    print(f"\nwinners: {auction.n_winners} / {outcome.instance.n_workers} bidders")
    print(f"social cost: {auction.social_cost:.4f}")
    print(f"total payment: {auction.total_payment:.4f}")
    print(f"platform utility: {outcome.platform_utility:.4f}")
    print(f"social welfare: {outcome.social_welfare:.4f}")
    if auction.monopolists:
        print(f"monopolist winners (paid bid): {', '.join(auction.monopolists)}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    store = CampaignStore(
        config=DateConfig(
            copy_prob_r=args.r,
            prior_alpha=args.alpha,
            initial_accuracy=args.epsilon,
        ),
        refresh_every=args.refresh_every,
        max_campaigns=args.max_campaigns,
        algorithm=args.algorithm,
        ledger=RunLedger(args.store) if args.store is not None else None,
        journal_dir=args.journal_dir,
    )
    if store.last_recovery:
        recovered = sum(
            1 for r in store.last_recovery if r["status"] == "recovered"
        )
        print(
            f"recovered {recovered} campaign(s) from "
            f"{args.journal_dir} before serving",
            flush=True,
        )
    serve(args.host, args.port, store=store, quiet=args.quiet)
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    store = CampaignStore(
        ledger=RunLedger(args.store) if args.store is not None else None,
        journal_dir=args.journal_dir,
    )
    reports = store.last_recovery
    store.close()
    if args.json:
        print(json.dumps(reports, indent=2, sort_keys=True))
        return 0
    if not reports:
        print(f"no journals found in {args.journal_dir}")
        return 0
    rows = [
        [
            r["campaign_id"],
            r["status"],
            r.get("batches", ""),
            r.get("claims", ""),
            r.get("refreshes", ""),
            r.get("snapshot_hits", ""),
            "yes" if r.get("torn") else "",
            f"{r.get('seconds', 0.0):.3f}",
        ]
        for r in reports
    ]
    print(format_table(
        ["campaign", "status", "batches", "claims",
         "refreshes", "snapshot hits", "torn tail", "seconds"],
        rows,
    ))
    bad = [r for r in reports if r["status"] == "corrupt"]
    for r in bad:
        print(f"\ncorrupt journal for {r['campaign_id']!r}: {r['error']}")
    return 1 if bad else 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.directory)
    batches = replay_batches(dataset, args.batches)
    campaign_id = args.campaign or args.directory.name
    where = ""

    # Both replay modes share the loop below; they differ only in how a
    # batch is applied and how the final estimate is obtained.
    if args.url is None:
        config = DateConfig(
            copy_prob_r=args.r,
            prior_alpha=args.alpha,
            initial_accuracy=args.epsilon,
        )
        online = OnlineDATE(
            config,
            refresh_every=args.refresh_every,
            algorithm=args.algorithm or "DATE",
        )

        def apply(batch) -> dict:
            return dataclasses.asdict(online.ingest(batch))

        def finalize(already_refreshed: bool):
            if already_refreshed:
                return online.snapshot().truths, None
            final = online.refresh()
            return final.truths, final.iterations

    else:
        # The remote path goes through the retrying client: timeouts,
        # backoff against a recovering server, and client-assigned
        # sequence numbers so a retried batch is applied exactly once.
        client = StreamingClient(args.url)
        where = f" on {client.base_url}"
        try:
            client.create_campaign(
                campaign_id,
                refresh_every=args.refresh_every,
                algorithm=args.algorithm,
                config={
                    "r": args.r, "alpha": args.alpha, "epsilon": args.epsilon
                },
            )
        except ReproError as exc:
            raise SystemExit(str(exc)) from exc

        def apply(batch) -> dict:
            try:
                reply = client.ingest(campaign_id, batch)
            except ReproError as exc:
                raise SystemExit(str(exc)) from exc
            if reply.get("duplicate"):
                # A retried batch the server had already applied: the
                # stream is intact, there is just nothing new to report.
                return {
                    "batch": reply.get("seq", 0), "new_tasks": 0,
                    "new_workers": 0, "new_claims": 0, "dirty_tasks": 0,
                    "iterations": 0, "refreshed": False,
                }
            return reply

        def finalize(already_refreshed: bool):
            try:
                if already_refreshed:
                    return client.truths(campaign_id)["truths"], None
                reply = client.refresh(campaign_id)
            except ReproError as exc:
                raise SystemExit(str(exc)) from exc
            return reply["truths"], reply["iterations"]

    key = {
        "command": "ingest",
        "dataset": str(args.directory),
        "campaign": campaign_id,
        "batches": args.batches,
        "remote": args.url is not None,
    }
    rows = []
    update: dict = {}
    with _maybe_trace(args, key) as writer:
        for batch in batches:
            start = time.perf_counter()
            update = apply(batch)
            elapsed = (time.perf_counter() - start) * 1e3
            if writer is not None:
                writer.emit(
                    "ingest_batch",
                    batch=update["batch"],
                    new_tasks=update["new_tasks"],
                    new_claims=update["new_claims"],
                    dirty_tasks=update["dirty_tasks"],
                    iterations=update["iterations"],
                    duration_ms=round(elapsed, 3),
                )
            rows.append(
                [
                    update["batch"],
                    update["new_tasks"],
                    update["new_claims"],
                    update["dirty_tasks"],
                    update["iterations"],
                    f"{elapsed:.1f}",
                ]
            )
        print(
            format_table(
                ["batch", "tasks", "claims", "dirty", "iterations", "ms"], rows
            )
        )
        truths, refresh_iterations = finalize(bool(update.get("refreshed")))
    if writer is not None:
        print(f"trace: {writer.path}")
    note = (
        "final batch included a full refresh"
        if refresh_iterations is None
        else f"final refresh: {refresh_iterations} iterations"
    )
    print(f"\ncampaign {campaign_id!r}{where}: {len(truths)} truths after "
          f"{len(batches)} batches ({note})")
    if args.url is None and dataset.truths:
        hits = sum(
            1 for task_id, truth in dataset.truths.items()
            if truths.get(task_id) == truth
        )
        print(f"precision: {hits / len(dataset.truths):.4f} "
              f"over {len(dataset.truths)} tasks")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.scenario_command == "list":
        rows = [
            (
                s.name,
                ", ".join(strategy.name for strategy in s.strategies),
                s.instances,
                "yes" if s.auction else "no",
                s.description,
            )
            for s in list_scenarios()
        ]
        print(
            format_table(
                ["name", "strategies", "instances", "auction", "summary"], rows
            )
        )
        return 0
    scenario = get_scenario(args.name)
    overrides: dict = {}
    if args.instances is not None:
        overrides["instances"] = args.instances
    if args.seed is not None:
        overrides["base_seed"] = args.seed
    if args.threshold is not None:
        overrides["detection_threshold"] = args.threshold
    if args.algorithm is not None:
        overrides["algorithm"] = args.algorithm
    if overrides:
        scenario = scenario.evolve(**overrides)
    ledger = _ledger_from(args)
    start = time.perf_counter()
    result = run_scenario(scenario, parallel=args.parallel, ledger=ledger)
    elapsed = time.perf_counter() - start
    rows = [
        [name, stats.mean, stats.std, stats.ci95_low, stats.ci95_high]
        for name, stats in sorted(result.summary().items())
    ]
    print(f"scenario {scenario.name!r}: {scenario.description}")
    print(
        f"strategies: {', '.join(s.name for s in scenario.strategies)} | "
        f"world: {scenario.world.n_tasks} tasks x {scenario.world.n_workers} "
        f"workers | instances: {scenario.instances} | seed: {scenario.base_seed}"
    )
    print()
    print(format_table(["metric", "mean", "std", "ci95 low", "ci95 high"], rows))
    print(f"\n{scenario.instances} instances in {elapsed:.2f}s")
    if ledger is not None:
        _print_ledger_stats(ledger)
    return 0


def _format_age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    if seconds < 172800:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def _cmd_ledger(args: argparse.Namespace) -> int:
    ledger = RunLedger(args.store)
    if args.ledger_command == "list":
        entries = ledger.entries(args.kind)
        now = time.time()
        rows = [
            [
                entry.fingerprint[:16],
                entry.kind,
                entry.experiment_id,
                entry.detail,
                entry.size_bytes,
                _format_age(max(now - entry.modified_at, 0.0)),
            ]
            for entry in entries[: args.limit]
        ]
        print(format_table(
            ["fingerprint", "kind", "experiment", "detail", "bytes", "age"], rows
        ))
        # Footer totals describe the *listed* (kind-filtered) entries,
        # so "N of M shown" always refers to the same population.
        per_kind: dict[str, int] = {}
        for entry in entries:
            per_kind[entry.kind] = per_kind.get(entry.kind, 0) + 1
        shown = min(len(entries), args.limit)
        print(
            f"\n{shown} of {len(entries)} entries shown; "
            f"{sum(e.size_bytes for e in entries)} bytes total in {ledger.root}"
            + (
                f" ({', '.join(f'{k}: {n}' for k, n in sorted(per_kind.items()))})"
                if per_kind
                else ""
            )
        )
        return 0
    if args.ledger_command == "show":
        try:
            payload = ledger.show(args.fingerprint)
        except LedgerError as exc:
            raise SystemExit(str(exc)) from exc
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    # gc
    if args.older_than is None and not args.all:
        raise SystemExit(
            "refusing to delete the whole store without --all "
            "(or pass --older-than DAYS)"
        )
    removed, freed = ledger.gc(older_than_days=args.older_than, kind=args.kind)
    print(f"removed {removed} entries ({freed} bytes) from {ledger.root}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.url is not None:
        if args.json:
            raise SystemExit(
                "--json reads the local registry; drop it when scraping --url"
            )
        url = f"{args.url.rstrip('/')}/metrics"
        try:
            with urllib.request.urlopen(url) as response:
                text = response.read().decode("utf-8")
        except urllib.error.URLError as exc:
            raise SystemExit(
                f"GET {url} failed: {getattr(exc, 'reason', exc)} "
                f"(is 'repro serve' running?)"
            ) from exc
        sys.stdout.write(text)
        return 0
    registry = get_registry()
    if args.json:
        print(json.dumps(registry.as_dict(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_prometheus(registry))
    return 0


def _compact(value: object) -> str:
    """One-cell rendering of a trace event field."""
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True)
    return str(value)


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "list":
        entries = list_traces(args.dir)
        now = time.time()
        rows = [
            [
                entry.fingerprint[:16],
                entry.events,
                entry.size_bytes,
                _format_age(max(now - entry.modified_at, 0.0)),
            ]
            for entry in entries[: args.limit]
        ]
        print(format_table(["trace", "events", "bytes", "age"], rows))
        shown = min(len(entries), args.limit)
        root = args.dir if args.dir is not None else default_trace_dir()
        print(f"\n{shown} of {len(entries)} traces in {root}")
        return 0
    # show
    try:
        path = find_trace(args.fingerprint, args.dir)
        events = read_trace(path)
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    total = len(events)
    if args.limit:
        events = events[: args.limit]
    if args.json:
        for event in events:
            print(json.dumps(event, sort_keys=True))
        return 0
    rows = []
    for event in events:
        detail = ", ".join(
            f"{name}={_compact(value)}"
            for name, value in sorted(event.items())
            if name not in ("event", "seq", "elapsed_s")
        )
        rows.append(
            [
                event.get("seq", ""),
                f"{event.get('elapsed_s', 0.0):.3f}",
                event.get("event", "?"),
                detail if len(detail) <= 100 else detail[:97] + "...",
            ]
        )
    print(format_table(["seq", "t+s", "event", "detail"], rows))
    shown = len(events)
    print(f"\n{shown} of {total} events in {path}")
    return 0


@contextlib.contextmanager
def _maybe_trace(args: argparse.Namespace, key: dict):
    """Open a run trace when ``--trace`` was passed; else a no-op."""
    if not getattr(args, "trace", False):
        yield None
        return
    with trace_run(key, directory=args.trace_dir) as writer:
        yield writer


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        rows = [
            (e.experiment_id, e.paper_reference, e.summary)
            for e in list_experiments()
        ]
        print(format_table(["id", "paper", "summary"], rows))
        return 0
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "truth":
        return _cmd_truth(args)
    if args.command == "algo":
        return _cmd_algo(args)
    if args.command == "auction":
        return _cmd_auction(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "recover":
        return _cmd_recover(args)
    if args.command == "ingest":
        return _cmd_ingest(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "ledger":
        return _cmd_ledger(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "trace":
        return _cmd_trace(args)
    ledger = _ledger_from(args)
    # The trace is keyed by the run request; instance-level events inside
    # carry the ledger's own row fingerprints when --cache is on.
    key = {
        "command": "run",
        "experiment": args.experiment,
        "scale": args.scale,
        "instances": args.instances,
        "seed": args.seed,
    }
    with _maybe_trace(args, key) as writer:
        if args.experiment == "all":
            for experiment in list_experiments():
                _run_one(experiment.experiment_id, args, ledger)
        else:
            _run_one(args.experiment, args, ledger)
    if writer is not None:
        print(f"trace: {writer.path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
