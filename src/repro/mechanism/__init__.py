"""IMC2 — the paper's end-to-end two-stage incentive mechanism."""

from .imc2 import IMC2, IMC2Outcome

__all__ = ["IMC2", "IMC2Outcome"]
