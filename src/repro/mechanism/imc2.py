"""IMC2 — Incentive Mechanism for Crowdsourcing with Copiers.

The two-stage mechanism ``M = (e, f, p)`` of Sec. II-A:

1. **Truth discovery stage** — run :class:`~repro.core.date.DATE` (the
   truth estimation function ``e``), producing the estimated truths
   ``et`` and the accuracy matrix ``A``;
2. **Reverse auction stage** — build the SOAC instance from ``A`` and
   the sealed bids, then run
   :class:`~repro.auction.reverse_auction.ReverseAuction` (the winner
   selection ``f`` and payment ``p`` functions).

:class:`IMC2Outcome` additionally carries the welfare accounting of
Eqs. 1-3: per-worker utilities, the platform utility
``u_0 = V(S) - Σ p_i``, and the social welfare ``V(S) - Σ c_i``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from ..auction.config import AuctionConfig
from ..auction.reverse_auction import AuctionOutcome, ReverseAuction
from ..auction.soac import SOACInstance
from ..core.config import DateConfig
from ..core.date import DATE, TruthDiscoveryResult
from ..errors import ConfigurationError
from ..types import Bid, Dataset

__all__ = ["IMC2", "IMC2Outcome"]


@dataclass(frozen=True, eq=False)
class IMC2Outcome:
    """Everything IMC2 produces for one campaign.

    Attributes
    ----------
    truth:
        Stage-1 output: estimated truths, accuracy matrix, dependence.
    instance:
        The SOAC instance handed from stage 1 to stage 2.
    auction:
        Stage-2 output: winners and payments.
    worker_utilities:
        ``u_i = p_i - c_i`` for winners, 0 for losers (Eq. 1).
    platform_utility:
        ``u_0 = V(S) - Σ p_i`` (Eq. 2).
    social_welfare:
        ``V(S) - Σ_{i∈S} c_i`` (Eq. 3).
    """

    truth: TruthDiscoveryResult
    instance: SOACInstance
    auction: AuctionOutcome
    worker_utilities: dict[str, float]
    platform_utility: float
    social_welfare: float

    @property
    def estimated_truths(self) -> dict[str, str]:
        """``task_id -> estimated truth`` from stage 1."""
        return self.truth.truths

    @property
    def winners(self) -> tuple[str, ...]:
        """Winner ids in selection order."""
        return self.auction.winner_ids


class IMC2:
    """The full two-stage mechanism, ready to run on a dataset.

    Parameters
    ----------
    date_config:
        Hyperparameters for the truth-discovery stage.
    truth_algorithm:
        Override stage 1 with any object exposing
        ``run(dataset, index=None) -> TruthDiscoveryResult`` (used by
        ablations that pair the auction with MV/NC/ED accuracies).
    auction:
        Override stage 2 (defaults to the paper's reverse auction).
    auction_config:
        Knobs for the default stage-2 auction — engine backend and
        monopolist payment factor (:class:`~repro.auction.config.
        AuctionConfig`).  Mutually exclusive with ``auction``; both
        backends price identically, so this only matters for speed and
        auditing.
    requirement_cap:
        When set (in ``(0, 1]``), cap each task's requirement at this
        fraction of its total available accuracy before the auction
        (see :meth:`SOACInstance.with_capped_requirements`); keeps
        sparse campaigns feasible.  ``None`` (default) uses the raw
        requirements and lets infeasible instances raise.
    """

    def __init__(
        self,
        date_config: DateConfig | None = None,
        *,
        truth_algorithm=None,
        auction: ReverseAuction | None = None,
        auction_config: AuctionConfig | None = None,
        requirement_cap: float | None = None,
    ):
        if auction is not None and auction_config is not None:
            raise ConfigurationError(
                "pass either auction or auction_config, not both"
            )
        self.truth_algorithm = truth_algorithm or DATE(date_config)
        self.auction = auction or ReverseAuction(auction_config)
        self.requirement_cap = requirement_cap

    def run(
        self,
        dataset: Dataset,
        *,
        bids: Sequence[Bid] | None = None,
        requirements: Mapping[str, float] | None = None,
    ) -> IMC2Outcome:
        """Execute both stages and assemble the welfare accounting.

        ``bids`` defaults to truthful bids (each worker bids its private
        cost on exactly the tasks it answered); ``requirements``
        overrides per-task accuracy requirements ``Θ_j``.
        """
        truth = self.truth_algorithm.run(dataset)
        instance = SOACInstance.from_truth_discovery(
            dataset, truth, bids=bids, requirements=requirements
        )
        if self.requirement_cap is not None:
            instance = instance.with_capped_requirements(self.requirement_cap)
        auction = self.auction.run(instance)

        cost_by_id = dict(zip(instance.worker_ids, instance.costs))
        worker_utilities = {
            worker_id: auction.utility_of(worker_id, cost_by_id[worker_id])
            for worker_id in instance.worker_ids
        }
        value = instance.platform_value(auction.winner_indexes)
        platform_utility = value - auction.total_payment
        social_welfare = value - auction.social_cost
        return IMC2Outcome(
            truth=truth,
            instance=instance,
            auction=auction,
            worker_utilities=worker_utilities,
            platform_utility=platform_utility,
            social_welfare=social_welfare,
        )
