"""Configuration for the reverse-auction stage (Alg. 2 knobs).

:class:`AuctionConfig` mirrors :class:`~repro.core.config.DateConfig`
for the auction stage: the paper's one mechanism parameter
(``monopoly_payment_factor``, DESIGN.md §4) plus the engineering knob
selecting the execution engine.  Values are validated eagerly so a bad
sweep fails before any auction time is spent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..errors import ConfigurationError

__all__ = ["AuctionConfig"]

#: Valid values of :attr:`AuctionConfig.backend`.
BACKENDS = ("vectorized", "reference")


@dataclass(frozen=True)
class AuctionConfig:
    """Knobs of the reverse auction.

    Parameters
    ----------
    backend:
        Execution engine: ``"vectorized"`` (default) runs winner
        selection as fleet-wide numpy passes with incremental residual
        updates and computes critical payments by forking each
        ``W \\ {i}`` rerun from the memoized shared prefix
        (:mod:`repro.auction.engine`); ``"reference"`` runs the scalar
        per-worker transcription of Alg. 2.  Both produce *identical*
        outcomes — winners, selection order, payments, monopolists —
        bit for bit (DESIGN.md §10; pinned by
        tests/property/test_property_auction_backends.py).  Keep the
        reference around for equivalence testing and line-by-line
        auditing against the paper.
    monopoly_payment_factor:
        Payment multiplier for *monopolist* winners — workers without
        whom the requirements cannot be covered, whose critical value
        is unbounded (DESIGN.md §4).  Must be >= 1 so a winner is never
        paid below its bid.
    """

    backend: str = "vectorized"
    monopoly_payment_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.monopoly_payment_factor < 1.0:
            raise ConfigurationError(
                "monopoly_payment_factor must be >= 1 (a winner must never "
                "be paid below its bid)"
            )

    def evolve(self, **changes: Any) -> "AuctionConfig":
        """Return a copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)
