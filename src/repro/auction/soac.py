"""The SOAC problem — Social Optimization Accuracy Coverage (Eqs. 4-6).

Minimize the social cost ``Σ c_i x_i`` subject to the accuracy-coverage
constraint ``Σ_i A_i^j x_i ≥ Θ_j`` for every task ``t_j``.  The problem
is NP-hard (Theorem 1, by restriction to Weighted Set Cover), so the
mechanism solves it greedily; :mod:`repro.auction.optimal` solves small
instances exactly for comparison.

:class:`SOACInstance` freezes everything the auction algorithms need —
requirement vector, accuracy matrix, bid prices, and (for accounting
only) true costs — in dense numpy form, and provides the coverage and
feasibility primitives they share.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.date import TruthDiscoveryResult
from ..errors import ConfigurationError, InfeasibleCoverageError
from ..types import Bid, Dataset

__all__ = ["SOACInstance", "SparseAccuracy"]

#: Requirements below this tolerance count as fully covered.
COVERAGE_TOL = 1e-9


@dataclass(frozen=True)
class SparseAccuracy:
    """CSR + CSC index of the non-zero accuracy entries of an instance.

    Workers only cover the tasks they bid (``A_i^j = 0`` elsewhere), so
    the accuracy matrix is sparse in any realistic campaign.  The
    vectorized auction engine uses this structure for its *incremental*
    bookkeeping — which task columns a selected winner changes, and
    which worker rows are affected by those columns — while the capped
    coverage sums themselves stay dense so they are bit-identical to
    the scalar reference (DESIGN.md §10).

    Attributes
    ----------
    row_ptr / row_cols:
        CSR layout: ``row_cols[row_ptr[i]:row_ptr[i+1]]`` are the task
        columns worker ``i`` covers.
    col_ptr / col_rows:
        CSC layout: ``col_rows[col_ptr[j]:col_ptr[j+1]]`` are the
        worker rows with positive accuracy on task ``j``.
    """

    row_ptr: np.ndarray
    row_cols: np.ndarray
    col_ptr: np.ndarray
    col_rows: np.ndarray

    @classmethod
    def from_dense(cls, accuracy: np.ndarray) -> "SparseAccuracy":
        n, m = accuracy.shape
        rows, cols = np.nonzero(accuracy)  # row-major order == CSR order
        row_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=row_ptr[1:])
        order = np.argsort(cols, kind="stable")
        col_ptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(cols, minlength=m), out=col_ptr[1:])
        return cls(
            row_ptr=row_ptr,
            row_cols=cols,
            col_ptr=col_ptr,
            col_rows=rows[order],
        )

    @property
    def nnz(self) -> int:
        return len(self.row_cols)

    def tasks_of(self, worker: int) -> np.ndarray:
        """Task columns one worker covers (a CSR row slice)."""
        return self.row_cols[self.row_ptr[worker] : self.row_ptr[worker + 1]]

    def workers_on(self, tasks: np.ndarray) -> np.ndarray:
        """Sorted unique worker rows touching any of the given tasks."""
        tasks = np.asarray(tasks, dtype=np.int64)
        if tasks.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.col_ptr[tasks]
        counts = self.col_ptr[tasks + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Flat gather of every CSC segment: offset each segment's local
        # arange by its start (the standard repeat/cumsum ranges trick).
        segment_first = np.repeat(np.cumsum(counts) - counts, counts)
        flat = np.repeat(starts, counts) + (np.arange(total) - segment_first)
        return np.unique(self.col_rows[flat])


@dataclass(frozen=True, eq=False)
class SOACInstance:
    """One auction instance over ``n`` bidders and ``m`` tasks.

    Attributes
    ----------
    worker_ids / task_ids:
        Stable orderings; all arrays are indexed accordingly.
    requirements:
        ``Θ_j`` per task (Eq. 5 right-hand side).
    accuracy:
        ``A_i^j`` matrix, zero where worker ``i`` did not bid task
        ``t_j``.
    bids:
        Declared prices ``b_i``.
    costs:
        True private costs ``c_i`` (used only to report social cost;
        equals ``bids`` under truthful bidding).
    task_values:
        Platform values ``V_j``, used for platform-utility accounting.
    """

    worker_ids: tuple[str, ...]
    task_ids: tuple[str, ...]
    requirements: np.ndarray
    accuracy: np.ndarray
    bids: np.ndarray
    costs: np.ndarray
    task_values: np.ndarray

    def __post_init__(self) -> None:
        n, m = len(self.worker_ids), len(self.task_ids)
        object.__setattr__(
            self, "requirements", np.asarray(self.requirements, dtype=np.float64)
        )
        object.__setattr__(self, "accuracy", np.asarray(self.accuracy, dtype=np.float64))
        object.__setattr__(self, "bids", np.asarray(self.bids, dtype=np.float64))
        object.__setattr__(self, "costs", np.asarray(self.costs, dtype=np.float64))
        object.__setattr__(
            self, "task_values", np.asarray(self.task_values, dtype=np.float64)
        )
        if self.requirements.shape != (m,):
            raise ConfigurationError(
                f"requirements must have shape ({m},), got {self.requirements.shape}"
            )
        if self.accuracy.shape != (n, m):
            raise ConfigurationError(
                f"accuracy must have shape ({n}, {m}), got {self.accuracy.shape}"
            )
        if self.bids.shape != (n,):
            raise ConfigurationError(
                f"bids must have shape ({n},), got {self.bids.shape}"
            )
        if self.costs.shape != (n,):
            raise ConfigurationError(
                f"costs must have shape ({n},), got {self.costs.shape}"
            )
        if self.task_values.shape != (m,):
            raise ConfigurationError(
                f"task_values must have shape ({m},), got {self.task_values.shape}"
            )
        if np.any(self.requirements < 0):
            raise ConfigurationError("requirements must be non-negative")
        if np.any(self.accuracy < 0) or np.any(self.accuracy > 1):
            raise ConfigurationError("accuracies must lie in [0, 1]")
        if np.any(self.bids < 0) or np.any(self.costs < 0):
            raise ConfigurationError("bids and costs must be non-negative")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_truth_discovery(
        cls,
        dataset: Dataset,
        result: TruthDiscoveryResult,
        *,
        bids: Sequence[Bid] | None = None,
        requirements: Mapping[str, float] | None = None,
    ) -> "SOACInstance":
        """Build the auction instance IMC2 passes from stage 1 to stage 2.

        Workers that submitted no bid (no claims) are excluded.  The
        accuracy matrix comes straight from the truth-discovery result;
        a worker's accuracy is zeroed outside its bid task set, so a
        worker cannot cover tasks it did not offer to perform.
        """
        bids = list(bids) if bids is not None else dataset.bids()
        bid_by_worker = {b.worker_id: b for b in bids}
        worker_ids = tuple(
            w.worker_id for w in dataset.workers if w.worker_id in bid_by_worker
        )
        task_ids = tuple(t.task_id for t in dataset.tasks)
        task_pos = {t: j for j, t in enumerate(task_ids)}

        result_worker_pos = {w: i for i, w in enumerate(result.worker_ids)}
        result_task_pos = {t: j for j, t in enumerate(result.task_ids)}

        n, m = len(worker_ids), len(task_ids)
        accuracy = np.zeros((n, m), dtype=np.float64)
        prices = np.zeros(n, dtype=np.float64)
        costs = np.zeros(n, dtype=np.float64)
        for i, worker_id in enumerate(worker_ids):
            bid = bid_by_worker[worker_id]
            prices[i] = bid.price
            costs[i] = dataset.worker_by_id[worker_id].cost
            src_row = result_worker_pos.get(worker_id)
            for task_id in bid.task_ids:
                j = task_pos[task_id]
                src_col = result_task_pos.get(task_id)
                if src_row is not None and src_col is not None:
                    accuracy[i, j] = result.accuracy_matrix[src_row, src_col]

        if requirements is None:
            req = np.array([t.requirement for t in dataset.tasks], dtype=np.float64)
        else:
            req = np.array(
                [requirements.get(t.task_id, t.requirement) for t in dataset.tasks],
                dtype=np.float64,
            )
        values = np.array([t.value for t in dataset.tasks], dtype=np.float64)
        return cls(
            worker_ids=worker_ids,
            task_ids=task_ids,
            requirements=req,
            accuracy=accuracy,
            bids=prices,
            costs=costs,
            task_values=values,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        return len(self.worker_ids)

    @property
    def n_tasks(self) -> int:
        return len(self.task_ids)

    @property
    def sparse_accuracy(self) -> SparseAccuracy:
        """CSR/CSC index of the non-zero accuracies (built once, cached)."""
        cached = self.__dict__.get("_sparse_accuracy")
        if cached is None:
            cached = SparseAccuracy.from_dense(self.accuracy)
            object.__setattr__(self, "_sparse_accuracy", cached)
        return cached

    def coverage(self, selected: Iterable[int]) -> np.ndarray:
        """Total accuracy ``Σ_{i∈S} A_i^j`` per task for a worker-index set."""
        rows = list(selected)
        if not rows:
            return np.zeros(self.n_tasks, dtype=np.float64)
        return self.accuracy[rows].sum(axis=0)

    def is_covering(self, selected: Iterable[int]) -> bool:
        """Whether a selection satisfies every task's requirement (Eq. 5)."""
        return bool(
            np.all(self.coverage(selected) >= self.requirements - COVERAGE_TOL)
        )

    def uncovered_tasks(self, selected: Iterable[int]) -> tuple[str, ...]:
        """Ids of tasks whose requirement the selection leaves unmet."""
        coverage = self.coverage(selected)
        gaps = coverage < self.requirements - COVERAGE_TOL
        return tuple(self.task_ids[j] for j in np.nonzero(gaps)[0])

    def check_feasible(self) -> None:
        """Raise :class:`InfeasibleCoverageError` if even ``S = W`` cannot cover."""
        missing = self.uncovered_tasks(range(self.n_workers))
        if missing:
            raise InfeasibleCoverageError(missing)

    @property
    def is_feasible(self) -> bool:
        """Whether selecting every worker satisfies all requirements."""
        return not self.uncovered_tasks(range(self.n_workers))

    def social_cost(self, selected: Iterable[int]) -> float:
        """``Σ_{i∈S} c_i`` — the SOAC objective (Eq. 4) for a selection."""
        rows = list(selected)
        return float(self.costs[rows].sum()) if rows else 0.0

    def platform_value(self, selected: Iterable[int]) -> float:
        """``V(S)``: the summed task values if the selection covers all tasks.

        The paper treats ``V(S)`` as constant under the accuracy
        constraint; an uncovering selection earns 0.
        """
        if self.is_covering(selected):
            return float(self.task_values.sum())
        return 0.0

    def with_capped_requirements(self, fraction: float = 0.8) -> "SOACInstance":
        """Cap each ``Θ_j`` at ``fraction`` of the task's total available accuracy.

        Sparse sweep points (few workers) can make the raw ``U[2, 4]``
        requirements uncoverable; the paper does not say how such
        configurations were handled.  Capping keeps every point
        feasible while leaving well-covered tasks untouched (see
        EXPERIMENTS.md).
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fraction must be in (0, 1]")
        available = self.accuracy.sum(axis=0)
        capped = np.minimum(self.requirements, fraction * available)
        return SOACInstance(
            worker_ids=self.worker_ids,
            task_ids=self.task_ids,
            requirements=capped,
            accuracy=self.accuracy,
            bids=self.bids,
            costs=self.costs,
            task_values=self.task_values,
        )

    def with_bid(self, worker_index: int, price: float) -> "SOACInstance":
        """Return a copy where one worker declares a different price.

        The true cost vector is unchanged — this is exactly a strategic
        misreport, as used by the truthfulness experiments (Fig. 8).
        """
        if price < 0:
            raise ConfigurationError("price must be non-negative")
        bids = self.bids.copy()
        bids[worker_index] = price
        return SOACInstance(
            worker_ids=self.worker_ids,
            task_ids=self.task_ids,
            requirements=self.requirements,
            accuracy=self.accuracy,
            bids=bids,
            costs=self.costs,
            task_values=self.task_values,
        )

    def without_worker(self, worker_index: int) -> "SOACInstance":
        """Return a copy excluding one worker (used by payment logic/tests)."""
        keep = [i for i in range(self.n_workers) if i != worker_index]
        return SOACInstance(
            worker_ids=tuple(self.worker_ids[i] for i in keep),
            task_ids=self.task_ids,
            requirements=self.requirements,
            accuracy=self.accuracy[keep],
            bids=self.bids[keep],
            costs=self.costs[keep],
            task_values=self.task_values,
        )
