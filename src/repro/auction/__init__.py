"""Reverse-auction stage of IMC2 (Secs. II, V, VI).

- :mod:`repro.auction.soac` — the Social Optimization Accuracy
  Coverage problem (Eqs. 4-6): instance container, feasibility checks,
  cost accounting, and the CSR/CSC accuracy index;
- :mod:`repro.auction.config` — :class:`AuctionConfig`, the knobs of
  the auction stage including the engine (``backend``) selection;
- :mod:`repro.auction.reverse_auction` — Alg. 2: greedy winner
  selection by effective accuracy unit cost plus critical-value
  payments (the scalar reference engine lives here);
- :mod:`repro.auction.engine` — the vectorized engine: batched
  selection over the sparse accuracy index and prefix-shared payment
  reruns, bit-identical to the reference (DESIGN.md §10);
- :mod:`repro.auction.optimal` — exact optimum via integer linear
  programming (scipy), for approximation-ratio studies on small
  instances;
- :mod:`repro.auction.properties` — empirical verification of the
  mechanism's claimed properties (individual rationality, truthfulness,
  monotonicity, approximation bound 2eH_Ω).
"""

from .config import AuctionConfig
from .optimal import solve_optimal
from .properties import (
    approximation_bound,
    bid_utility_curve,
    verify_individual_rationality,
    verify_monotonicity,
    verify_truthfulness,
)
from .reverse_auction import AuctionOutcome, ReverseAuction
from .soac import SOACInstance, SparseAccuracy

__all__ = [
    "AuctionConfig",
    "AuctionOutcome",
    "ReverseAuction",
    "SOACInstance",
    "SparseAccuracy",
    "approximation_bound",
    "bid_utility_curve",
    "solve_optimal",
    "verify_individual_rationality",
    "verify_monotonicity",
    "verify_truthfulness",
]
