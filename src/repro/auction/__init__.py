"""Reverse-auction stage of IMC2 (Secs. II, V, VI).

- :mod:`repro.auction.soac` — the Social Optimization Accuracy
  Coverage problem (Eqs. 4-6): instance container, feasibility checks,
  and cost accounting;
- :mod:`repro.auction.reverse_auction` — Alg. 2: greedy winner
  selection by effective accuracy unit cost plus critical-value
  payments;
- :mod:`repro.auction.optimal` — exact optimum via integer linear
  programming (scipy), for approximation-ratio studies on small
  instances;
- :mod:`repro.auction.properties` — empirical verification of the
  mechanism's claimed properties (individual rationality, truthfulness,
  monotonicity, approximation bound 2eH_Ω).
"""

from .optimal import solve_optimal
from .properties import (
    approximation_bound,
    bid_utility_curve,
    verify_individual_rationality,
    verify_monotonicity,
    verify_truthfulness,
)
from .reverse_auction import AuctionOutcome, ReverseAuction
from .soac import SOACInstance

__all__ = [
    "AuctionOutcome",
    "ReverseAuction",
    "SOACInstance",
    "approximation_bound",
    "bid_utility_curve",
    "solve_optimal",
    "verify_individual_rationality",
    "verify_monotonicity",
    "verify_truthfulness",
]
