"""Array-native reverse auction: batched selection + prefix-shared payments.

This module is the auction twin of :mod:`repro.core.engine`: the same
Alg. 2 the scalar :mod:`~repro.auction.reverse_auction` transcribes, as
fleet-wide numpy passes.  Three ideas carry the speedup:

1. **Batched winner selection.**  The scalar loop evaluates
   ``Σ_j min(Θ'_j, A_k^j)`` one worker at a time, every round.  Here
   the whole fleet's capped coverages live in one dense ``(n, m)``
   array ``capped = np.minimum(residual, accuracy)`` whose row sums are
   the per-worker marginals, and each round is one ``argmin`` over the
   bid/marginal ratios.

2. **Incremental residual updates.**  A selected winner changes the
   residual only on its own task columns (CSR row of
   :class:`~repro.auction.soac.SparseAccuracy`), so only those columns
   of ``capped`` are refreshed and only the worker rows touching them
   (CSC columns) get their marginal recomputed.  Rows the winner does
   not intersect keep their stored sums.

3. **Prefix-shared critical payments.**  The payment rerun over
   ``W \\ {i}`` makes *identical* choices to the main run until the
   round that selected ``i`` — before that round, ``i`` was available
   but never the argmin, so removing it cannot change any argmin.  The
   main run therefore memoizes its per-round residuals and fleet
   marginals once (:class:`CoverTrace`), every winner's rerun reads its
   shared-prefix payment terms straight out of that trace, and only the
   *continuation* from the fork round onward is executed.

Equality contract: every quantity that reaches an output or a decision
is computed by the same floating-point expression as the reference —
marginals as dense capped-row sums (numpy's pairwise row reduction is
bit-identical whether one row or a whole matrix is summed), residual
updates by the same elementwise formula, payment terms as
``(b_k · own) / other`` in the same association order.  Winners,
selection order, payments, and monopolists are therefore *exactly*
equal, not approximately (DESIGN.md §10; pinned by
tests/property/test_property_auction_backends.py and gated ≥5× on the
payment phase by benchmarks/test_auction_bench.py).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import InfeasibleCoverageError
from .soac import COVERAGE_TOL, SOACInstance

__all__ = ["CoverTrace", "batched_greedy_cover", "run_auction", "vectorized_cover"]


@dataclass(frozen=True)
class CoverTrace:
    """Memoized state of one greedy cover run.

    ``residuals[r]`` is the residual requirement vector *before* round
    ``r``'s selection and ``scores[r]`` the fleet-wide marginal
    coverages at that residual — exactly the quantities every payment
    rerun needs for the rounds it shares with the main run.
    """

    winners: np.ndarray  # (R,) worker index selected at each round
    residuals: np.ndarray  # (R, m) residual before each selection
    scores: np.ndarray  # (R, n) fleet marginals before each selection

    @property
    def n_rounds(self) -> int:
        return len(self.winners)


class _Cover:
    """One greedy cover in flight: dense capped sums, sparse updates."""

    def __init__(self, instance: SOACInstance, residual: np.ndarray):
        self.instance = instance
        self.sparse = instance.sparse_accuracy
        self.residual = residual
        # capped[k, j] == min(residual[j], accuracy[k, j]) at all times;
        # row sums are the marginals.  Summing the full matrix along
        # axis 1 is bit-identical to summing each row alone, so these
        # scores equal the reference's per-worker sums exactly.
        self.capped = np.minimum(residual[None, :], instance.accuracy)
        self.scores = self.capped.sum(axis=1)
        self.eligible = np.ones(instance.n_workers, dtype=bool)
        self.selected: list[int] = []

    def covered(self) -> bool:
        return self.residual.sum() <= COVERAGE_TOL

    def pick(self) -> int:
        """One Alg. 2 round: argmin of bid/marginal over eligible workers.

        ``argmin`` returns the first minimum, replicating the scalar
        loop's ascending-index tie-break.  Raises
        :class:`InfeasibleCoverageError` when no eligible worker adds
        coverage.
        """
        ratios = np.full(len(self.scores), np.inf)
        useful = self.eligible & (self.scores > COVERAGE_TOL)
        np.divide(self.instance.bids, self.scores, out=ratios, where=useful)
        best = int(np.argmin(ratios))
        if not useful[best]:
            raise InfeasibleCoverageError(
                self.instance.uncovered_tasks(sorted(self.selected))
            )
        return best

    def apply(self, winner: int) -> None:
        """Subtract the winner's capped coverage; refresh affected state.

        Only the winner's still-uncovered task columns change, and only
        workers with positive accuracy on those columns get their
        marginal recomputed — everyone else's stored row sum is already
        the value a from-scratch pass would produce.
        """
        self.eligible[winner] = False
        self.selected.append(winner)
        cols = self.sparse.tasks_of(winner)
        touched = cols[self.residual[cols] > 0.0]
        if touched.size == 0:
            return
        accuracy = self.instance.accuracy
        self.residual[touched] = np.maximum(
            self.residual[touched]
            - np.minimum(self.residual[touched], accuracy[winner, touched]),
            0.0,
        )
        self.capped[:, touched] = np.minimum(
            self.residual[touched][None, :], accuracy[:, touched]
        )
        affected = self.sparse.workers_on(touched)
        self.scores[affected] = self.capped[affected].sum(axis=1)


def batched_greedy_cover(instance: SOACInstance) -> CoverTrace:
    """Alg. 2's selection loop over the whole fleet, with a full trace."""
    cover = _Cover(instance, instance.requirements.astype(np.float64).copy())
    winners: list[int] = []
    residuals: list[np.ndarray] = []
    scores: list[np.ndarray] = []
    while not cover.covered():
        winner = cover.pick()
        winners.append(winner)
        residuals.append(cover.residual.copy())
        scores.append(cover.scores.copy())
        cover.apply(winner)
    m, n = instance.n_tasks, instance.n_workers
    return CoverTrace(
        winners=np.asarray(winners, dtype=np.int64),
        residuals=(
            np.asarray(residuals) if residuals else np.empty((0, m))
        ),
        scores=np.asarray(scores) if scores else np.empty((0, n)),
    )


def vectorized_cover(
    instance: SOACInstance, *, exclude: int | None = None
) -> list[tuple[int, np.ndarray]]:
    """Drop-in twin of :func:`~repro.auction.reverse_auction.greedy_cover`.

    Same ``(worker, residual-before)`` pairs, same exceptions — computed
    by the batched engine.  Used by the equivalence suites and anywhere
    only the selection (not the trace) is wanted.
    """
    cover = _Cover(instance, instance.requirements.astype(np.float64).copy())
    if exclude is not None:
        cover.eligible[exclude] = False
    chosen: list[tuple[int, np.ndarray]] = []
    while not cover.covered():
        winner = cover.pick()
        chosen.append((winner, cover.residual.copy()))
        cover.apply(winner)
    return chosen


def _prefix_terms(instance: SOACInstance, trace: CoverTrace) -> np.ndarray:
    """Running maxima of the shared-prefix payment terms.

    ``best[r, p]`` is the largest payment term winner ``p`` collects
    from rounds ``0..r`` of its ``W \\ {i}`` rerun — rounds that are
    identical to the main run and therefore read entirely from the
    trace: at round ``r`` the replacement is the main winner ``w_r``
    and the term is ``(b_{w_r} · own_p) / other_{w_r}`` (Alg. 2 line
    15), with both marginals taken from ``trace.scores[r]``.
    """
    winners = trace.winners
    rounds = np.arange(trace.n_rounds)
    own = trace.scores[:, winners]  # (R, R): own[r, p] = marginal of p at r
    other = trace.scores[rounds, winners]  # (R,) marginal of w_r at r
    terms = (instance.bids[winners][:, None] * own) / other[:, None]
    return np.maximum.accumulate(terms, axis=0)


def _continuation(
    instance: SOACInstance, trace: CoverTrace, position: int
) -> float:
    """Best payment term from the forked tail of one winner's rerun.

    Forks the ``W \\ {i}`` rerun at the round that selected ``i``
    (everything earlier is the shared prefix) and greedily covers the
    remaining residual without ``i``.  Raises
    :class:`InfeasibleCoverageError` when the rest of the fleet cannot
    finish the cover — the monopolist case.
    """
    excluded = int(trace.winners[position])
    cover = _Cover(instance, trace.residuals[position].copy())
    prefix = trace.winners[:position]
    cover.eligible[prefix] = False
    cover.eligible[excluded] = False
    cover.selected.extend(int(w) for w in prefix)
    bids = instance.bids
    best = 0.0
    while not cover.covered():
        winner = cover.pick()
        term = (float(bids[winner]) * cover.scores[excluded]) / cover.scores[winner]
        best = max(best, term)
        cover.apply(winner)
    return float(best)


def run_auction(
    instance: SOACInstance, *, monopoly_payment_factor: float = 1.0
) -> tuple[list[int], dict[str, float], list[str]]:
    """Winner selection + critical payments, vectorized end to end.

    Returns ``(winners-in-selection-order, payments, monopolists)`` —
    the raw components :class:`~repro.auction.reverse_auction.
    ReverseAuction` assembles into an ``AuctionOutcome``.  Assumes the
    caller already ran ``instance.check_feasible()``.

    Timings of the selection loop and each winner's payment rerun go to
    the metrics registry when it is enabled (DESIGN.md §13); the
    telemetry reads outputs only, so instrumented auctions remain
    exactly equal to uninstrumented ones.
    """
    from ..obs.metrics import get_registry

    registry = get_registry()
    telemetry = registry.enabled
    if telemetry:
        selection_timer = registry.timer(
            "auction_selection_seconds",
            "Wall time of the batched winner-selection loop.",
        )
        rerun_timer = registry.timer(
            "auction_payment_rerun_seconds",
            "Wall time of one winner's critical-payment rerun.",
        )
        rounds_hist = registry.histogram(
            "auction_rounds",
            "Selection rounds (winners) per auction.",
            buckets=(1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0),
        )
        auctions_total = registry.counter(
            "auction_runs_total", "Auctions executed."
        )
        monopolists_total = registry.counter(
            "auction_monopolists_total",
            "Winners priced as monopolists (no replacement cover).",
        )
        start = time.perf_counter()
    trace = batched_greedy_cover(instance)
    if telemetry:
        selection_timer.observe(time.perf_counter() - start)
    winners = [int(w) for w in trace.winners]
    payments: dict[str, float] = {}
    monopolists: list[str] = []
    if not winners:
        if telemetry:
            auctions_total.inc()
            rounds_hist.observe(0)
        return winners, payments, monopolists

    prefix_best = _prefix_terms(instance, trace)
    for position, worker in enumerate(winners):
        worker_id = instance.worker_ids[worker]
        if telemetry:
            rerun_start = time.perf_counter()
        try:
            tail = _continuation(instance, trace, position)
        except InfeasibleCoverageError:
            # Monopolist: no replacement set exists without this worker.
            payments[worker_id] = monopoly_payment_factor * float(
                instance.bids[worker]
            )
            monopolists.append(worker_id)
            if telemetry:
                rerun_timer.observe(time.perf_counter() - rerun_start)
                monopolists_total.inc()
            continue
        shared = float(prefix_best[position - 1, position]) if position else 0.0
        payments[worker_id] = max(shared, tail)
        if telemetry:
            rerun_timer.observe(time.perf_counter() - rerun_start)
    if telemetry:
        auctions_total.inc()
        rounds_hist.observe(len(winners))
    from ..obs import trace as obs_trace

    obs_trace.emit(
        "auction_run",
        winners=len(winners),
        monopolists=len(monopolists),
        total_payment=float(sum(payments.values())),
    )
    return winners, payments, monopolists
