"""Alg. 2 — the reverse auction: winner selection + critical payments.

Winner selection phase: repeatedly pick the worker minimizing the
*effective accuracy unit cost*

    b_k / Σ_j min(Θ'_j, A_k^j)

over the residual requirement vector ``Θ'``, subtract the worker's
capped coverage from ``Θ'``, and stop when every requirement reaches 0.

Payment determination phase: for each winner ``i``, rerun the greedy
selection over ``W \\ {i}``; at every step that selects a replacement
``i_k`` under residual ``Θ''``, worker ``i`` could have taken that slot
at any price up to

    b_{i_k} · Σ_j min(Θ''_j, A_i^j) / Σ_j min(Θ''_j, A_{i_k}^j)

and the payment is the maximum such price (the Myerson critical value;
Lemmas 2-3 prove individual rationality and truthfulness from exactly
this structure).

Degenerate case: if ``W \\ {i}`` cannot cover the requirements, worker
``i`` is a *monopolist* and its critical value is unbounded; the
auction then pays ``monopoly_payment_factor · b_i`` and records the
worker in :attr:`AuctionOutcome.monopolists` (see DESIGN.md §4).

Two interchangeable engines execute the algorithm —
:class:`~repro.auction.config.AuctionConfig` selects one.  This module
holds the scalar ``"reference"`` transcription (per-worker loops, the
payment phase rerunning the greedy from scratch per winner);
:mod:`repro.auction.engine` is the ``"vectorized"`` default (fleet-wide
batched selection, prefix-shared payment reruns) producing bit-identical
outcomes (DESIGN.md §10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InfeasibleCoverageError
from .config import AuctionConfig
from .soac import COVERAGE_TOL, SOACInstance

__all__ = [
    "AuctionOutcome",
    "ReverseAuction",
    "greedy_cover",
    "reference_payments",
]


@dataclass(frozen=True, eq=False)
class AuctionOutcome:
    """Result of one auction run.

    ``winner_ids`` preserves selection order.  ``payments`` maps every
    *winner* to its payment (losers are paid 0 and omitted).
    ``social_cost`` is ``Σ c_i`` over winners — the SOAC objective the
    paper plots in Fig. 6.
    """

    method: str
    winner_ids: tuple[str, ...]
    winner_indexes: tuple[int, ...]
    payments: dict[str, float]
    social_cost: float
    total_payment: float
    monopolists: tuple[str, ...] = ()

    @property
    def n_winners(self) -> int:
        return len(self.winner_ids)

    def payment_of(self, worker_id: str) -> float:
        """Payment to a worker (0 for losers)."""
        return self.payments.get(worker_id, 0.0)

    def utility_of(self, worker_id: str, cost: float) -> float:
        """``u_i = p_i - c_i`` for winners, 0 for losers (Eq. 1)."""
        if worker_id not in self.payments:
            return 0.0
        return self.payments[worker_id] - cost


def greedy_cover(
    instance: SOACInstance,
    *,
    exclude: int | None = None,
) -> list[tuple[int, np.ndarray]]:
    """Run Alg. 2's selection loop; yield ``(worker, residual-before)`` pairs.

    ``exclude`` removes one worker from consideration (the payment
    phase's ``W \\ {i}``).  Raises :class:`InfeasibleCoverageError` when
    the remaining workers cannot cover the requirements.

    One capped-coverage buffer is reused across every marginal
    evaluation and residual update, so the only per-round allocation is
    the recorded residual snapshot.
    """
    residual = instance.requirements.astype(np.float64).copy()
    capped = np.empty_like(residual)
    accuracy = instance.accuracy
    bids = instance.bids
    chosen: list[tuple[int, np.ndarray]] = []
    selected: set[int] = set()
    while residual.sum() > COVERAGE_TOL:
        best_worker = -1
        best_ratio = np.inf
        for k in range(instance.n_workers):
            if k == exclude or k in selected:
                continue
            np.minimum(residual, accuracy[k], out=capped)
            marginal = capped.sum()
            if marginal <= COVERAGE_TOL:
                continue
            ratio = bids[k] / marginal
            if ratio < best_ratio or (ratio == best_ratio and k < best_worker):
                best_ratio = ratio
                best_worker = k
        if best_worker < 0:
            uncovered = instance.uncovered_tasks(sorted(selected))
            raise InfeasibleCoverageError(uncovered)
        chosen.append((best_worker, residual.copy()))
        selected.add(best_worker)
        np.minimum(residual, accuracy[best_worker], out=capped)
        residual -= capped
        np.maximum(residual, 0.0, out=residual)
    return chosen


def reference_payments(
    instance: SOACInstance,
    selection: list[tuple[int, np.ndarray]],
    *,
    monopoly_payment_factor: float = 1.0,
) -> tuple[dict[str, float], list[str]]:
    """Payment phase of Alg. 2 (lines 9-20), scalar transcription.

    Reruns the *entire* greedy cover over ``W \\ {i}`` once per winner
    — the O(W³·T) hot path the vectorized engine's prefix sharing
    eliminates.  Returns ``(payments, monopolists)``.
    """
    payments: dict[str, float] = {}
    monopolists: list[str] = []
    capped = np.empty(instance.n_tasks, dtype=np.float64)
    for i, _ in selection:
        worker_id = instance.worker_ids[i]
        try:
            replacement_run = greedy_cover(instance, exclude=i)
        except InfeasibleCoverageError:
            # Monopolist: no replacement set exists without i.
            payments[worker_id] = monopoly_payment_factor * float(
                instance.bids[i]
            )
            monopolists.append(worker_id)
            continue
        payment = 0.0
        accuracy_i = instance.accuracy[i]
        for k, residual in replacement_run:
            np.minimum(residual, accuracy_i, out=capped)
            own = capped.sum()
            np.minimum(residual, instance.accuracy[k], out=capped)
            other = capped.sum()
            if other <= COVERAGE_TOL:
                continue
            payment = max(payment, float(instance.bids[k]) * own / other)
        payments[worker_id] = float(payment)
    return payments, monopolists


class ReverseAuction:
    """IMC2's auction stage (Alg. 2).

    Accepts an :class:`~repro.auction.config.AuctionConfig` (or the
    individual knobs as keyword overrides).  The ``backend`` knob picks
    the execution engine; outcomes are identical either way.
    """

    method_name = "RA"

    def __init__(
        self,
        config: AuctionConfig | None = None,
        *,
        monopoly_payment_factor: float | None = None,
        backend: str | None = None,
    ):
        base = config if config is not None else AuctionConfig()
        changes: dict[str, object] = {}
        if monopoly_payment_factor is not None:
            changes["monopoly_payment_factor"] = monopoly_payment_factor
        if backend is not None:
            changes["backend"] = backend
        self.config = base.evolve(**changes) if changes else base

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def monopoly_payment_factor(self) -> float:
        return self.config.monopoly_payment_factor

    def run(self, instance: SOACInstance) -> AuctionOutcome:
        """Select winners and compute critical payments."""
        instance.check_feasible()

        if self.config.backend == "vectorized":
            from .engine import run_auction

            winners, payments, monopolists = run_auction(
                instance,
                monopoly_payment_factor=self.config.monopoly_payment_factor,
            )
        else:
            # --- Winner selection phase (Alg. 2 lines 1-8) ---
            selection = greedy_cover(instance)
            winners = [worker for worker, _ in selection]
            # --- Payment determination phase (Alg. 2 lines 9-20) ---
            payments, monopolists = reference_payments(
                instance,
                selection,
                monopoly_payment_factor=self.config.monopoly_payment_factor,
            )

        total_payment = float(sum(payments.values()))
        return AuctionOutcome(
            method=self.method_name,
            winner_ids=tuple(instance.worker_ids[i] for i in winners),
            winner_indexes=tuple(winners),
            payments=payments,
            social_cost=instance.social_cost(winners),
            total_payment=total_payment,
            monopolists=tuple(monopolists),
        )
