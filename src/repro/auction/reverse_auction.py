"""Alg. 2 — the reverse auction: winner selection + critical payments.

Winner selection phase: repeatedly pick the worker minimizing the
*effective accuracy unit cost*

    b_k / Σ_j min(Θ'_j, A_k^j)

over the residual requirement vector ``Θ'``, subtract the worker's
capped coverage from ``Θ'``, and stop when every requirement reaches 0.

Payment determination phase: for each winner ``i``, rerun the greedy
selection over ``W \\ {i}``; at every step that selects a replacement
``i_k`` under residual ``Θ''``, worker ``i`` could have taken that slot
at any price up to

    b_{i_k} · Σ_j min(Θ''_j, A_i^j) / Σ_j min(Θ''_j, A_{i_k}^j)

and the payment is the maximum such price (the Myerson critical value;
Lemmas 2-3 prove individual rationality and truthfulness from exactly
this structure).

Degenerate case: if ``W \\ {i}`` cannot cover the requirements, worker
``i`` is a *monopolist* and its critical value is unbounded; the
auction then pays ``monopoly_payment_factor · b_i`` and records the
worker in :attr:`AuctionOutcome.monopolists` (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, InfeasibleCoverageError
from .soac import COVERAGE_TOL, SOACInstance

__all__ = ["AuctionOutcome", "ReverseAuction", "greedy_cover"]


@dataclass(frozen=True, eq=False)
class AuctionOutcome:
    """Result of one auction run.

    ``winner_ids`` preserves selection order.  ``payments`` maps every
    *winner* to its payment (losers are paid 0 and omitted).
    ``social_cost`` is ``Σ c_i`` over winners — the SOAC objective the
    paper plots in Fig. 6.
    """

    method: str
    winner_ids: tuple[str, ...]
    winner_indexes: tuple[int, ...]
    payments: dict[str, float]
    social_cost: float
    total_payment: float
    monopolists: tuple[str, ...] = ()

    @property
    def n_winners(self) -> int:
        return len(self.winner_ids)

    def payment_of(self, worker_id: str) -> float:
        """Payment to a worker (0 for losers)."""
        return self.payments.get(worker_id, 0.0)

    def utility_of(self, worker_id: str, cost: float) -> float:
        """``u_i = p_i - c_i`` for winners, 0 for losers (Eq. 1)."""
        if worker_id not in self.payments:
            return 0.0
        return self.payments[worker_id] - cost


def _marginal_coverage(
    accuracy_row: np.ndarray, residual: np.ndarray
) -> float:
    """``Σ_j min(Θ'_j, A_k^j)`` — the capped coverage a worker adds."""
    return float(np.minimum(residual, accuracy_row).sum())


def greedy_cover(
    instance: SOACInstance,
    *,
    exclude: int | None = None,
) -> list[tuple[int, np.ndarray]]:
    """Run Alg. 2's selection loop; yield ``(worker, residual-before)`` pairs.

    ``exclude`` removes one worker from consideration (the payment
    phase's ``W \\ {i}``).  Raises :class:`InfeasibleCoverageError` when
    the remaining workers cannot cover the requirements.
    """
    residual = instance.requirements.astype(np.float64).copy()
    available = [i for i in range(instance.n_workers) if i != exclude]
    chosen: list[tuple[int, np.ndarray]] = []
    selected: set[int] = set()
    while residual.sum() > COVERAGE_TOL:
        best_worker = -1
        best_ratio = np.inf
        for k in available:
            if k in selected:
                continue
            marginal = _marginal_coverage(instance.accuracy[k], residual)
            if marginal <= COVERAGE_TOL:
                continue
            ratio = instance.bids[k] / marginal
            if ratio < best_ratio or (ratio == best_ratio and k < best_worker):
                best_ratio = ratio
                best_worker = k
        if best_worker < 0:
            uncovered = instance.uncovered_tasks(selected)
            raise InfeasibleCoverageError(uncovered)
        chosen.append((best_worker, residual.copy()))
        selected.add(best_worker)
        residual = np.maximum(
            residual - np.minimum(residual, instance.accuracy[best_worker]), 0.0
        )
    return chosen


class ReverseAuction:
    """IMC2's auction stage (Alg. 2)."""

    method_name = "RA"

    def __init__(self, *, monopoly_payment_factor: float = 1.0):
        if monopoly_payment_factor < 1.0:
            raise ConfigurationError(
                "monopoly_payment_factor must be >= 1 (a winner must never "
                "be paid below its bid)"
            )
        self.monopoly_payment_factor = monopoly_payment_factor

    def run(self, instance: SOACInstance) -> AuctionOutcome:
        """Select winners and compute critical payments."""
        instance.check_feasible()

        # --- Winner selection phase (Alg. 2 lines 1-8) ---
        selection = greedy_cover(instance)
        winners = [worker for worker, _ in selection]

        # --- Payment determination phase (Alg. 2 lines 9-20) ---
        payments: dict[str, float] = {}
        monopolists: list[str] = []
        for i in winners:
            worker_id = instance.worker_ids[i]
            try:
                replacement_run = greedy_cover(instance, exclude=i)
            except InfeasibleCoverageError:
                # Monopolist: no replacement set exists without i.
                payments[worker_id] = (
                    self.monopoly_payment_factor * float(instance.bids[i])
                )
                monopolists.append(worker_id)
                continue
            payment = 0.0
            for k, residual in replacement_run:
                own = _marginal_coverage(instance.accuracy[i], residual)
                other = _marginal_coverage(instance.accuracy[k], residual)
                if other <= COVERAGE_TOL:
                    continue
                payment = max(payment, float(instance.bids[k]) * own / other)
            payments[worker_id] = payment

        total_payment = float(sum(payments.values()))
        return AuctionOutcome(
            method=self.method_name,
            winner_ids=tuple(instance.worker_ids[i] for i in winners),
            winner_indexes=tuple(winners),
            payments=payments,
            social_cost=instance.social_cost(winners),
            total_payment=total_payment,
            monopolists=tuple(monopolists),
        )
