"""Exact SOAC optimum via integer linear programming.

The SOAC problem (Eqs. 4-6) is NP-hard, but small instances solve
quickly with a branch-and-bound MILP solver; we use
:func:`scipy.optimize.milp` (HiGHS).  The experiment harness uses this
to measure the greedy mechanism's *empirical* approximation ratio
against the theoretical ``2 e H_Ω`` bound (Lemma 5) — an extension
beyond the paper's own evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..errors import ReproError
from .soac import SOACInstance

__all__ = ["OptimalSolution", "solve_optimal"]


@dataclass(frozen=True)
class OptimalSolution:
    """An exact optimum of one SOAC instance.

    ``objective`` minimizes the declared bids (the auction's view);
    ``social_cost`` re-prices the chosen set at true costs for
    comparison with :attr:`AuctionOutcome.social_cost`.
    """

    winner_ids: tuple[str, ...]
    winner_indexes: tuple[int, ...]
    objective: float
    social_cost: float

    @property
    def n_winners(self) -> int:
        return len(self.winner_ids)


def solve_optimal(
    instance: SOACInstance,
    *,
    use_costs: bool = False,
    time_limit: float | None = 30.0,
) -> OptimalSolution:
    """Solve ``min Σ price_i x_i  s.t.  A^T x ≥ Θ, x ∈ {0,1}^n`` exactly.

    ``use_costs`` optimizes true costs instead of declared bids (they
    coincide under truthful bidding).  Raises
    :class:`InfeasibleCoverageError` for uncoverable instances and
    :class:`ReproError` if the solver fails (for example on hitting
    ``time_limit``).
    """
    instance.check_feasible()
    prices = instance.costs if use_costs else instance.bids
    n = instance.n_workers

    constraint = LinearConstraint(
        instance.accuracy.T,
        lb=instance.requirements,
        ub=np.full(instance.n_tasks, np.inf),
    )
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = milp(
        c=np.asarray(prices, dtype=np.float64),
        constraints=[constraint],
        integrality=np.ones(n),
        bounds=Bounds(lb=np.zeros(n), ub=np.ones(n)),
        options=options,
    )
    if not result.success:
        raise ReproError(f"MILP solver failed: {result.message}")
    chosen = tuple(int(i) for i in np.nonzero(np.round(result.x) >= 1)[0])
    return OptimalSolution(
        winner_ids=tuple(instance.worker_ids[i] for i in chosen),
        winner_indexes=chosen,
        objective=float(result.fun),
        social_cost=instance.social_cost(chosen),
    )
