"""Empirical verification of the mechanism's claimed properties.

Theorem 3 states IMC2 is computationally efficient, individually
rational, truthful, and ``2 e H_Ω``-approximate.  This module provides
the experimental counterparts used by the test suite and by Fig. 8:

- :func:`verify_individual_rationality` — every winner bidding its true
  cost gets non-negative utility (Lemma 2);
- :func:`verify_monotonicity` — a winner keeps winning when it lowers
  its bid (first half of Myerson's condition, Theorem 2);
- :func:`bid_utility_curve` / :func:`verify_truthfulness` — sweep one
  worker's declared bid and check no misreport beats truthful bidding
  (Lemma 3, the Fig. 8 experiment);
- :func:`approximation_bound` — the ``2 e H_Ω`` factor of Lemma 5 for a
  given instance.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .config import AuctionConfig
from .reverse_auction import AuctionOutcome, ReverseAuction
from .soac import SOACInstance

__all__ = [
    "BidUtilityPoint",
    "approximation_bound",
    "bid_utility_curve",
    "verify_individual_rationality",
    "verify_monotonicity",
    "verify_truthfulness",
]


@dataclass(frozen=True)
class BidUtilityPoint:
    """One point of a Fig. 8-style curve: declared bid, utility, won?"""

    bid: float
    utility: float
    won: bool
    payment: float


def verify_individual_rationality(
    instance: SOACInstance, outcome: AuctionOutcome
) -> bool:
    """Check ``p_i ≥ c_i`` for every winner (Lemma 2, with truthful bids)."""
    cost_by_id = dict(zip(instance.worker_ids, instance.costs))
    return all(
        outcome.payments[w] >= cost_by_id[w] - 1e-9 for w in outcome.winner_ids
    )


def bid_utility_curve(
    instance: SOACInstance,
    worker_id: str,
    bid_grid: Sequence[float],
    *,
    auction: ReverseAuction | None = None,
    auction_config: AuctionConfig | None = None,
) -> list[BidUtilityPoint]:
    """Utility of one worker as a function of its declared bid.

    The worker's *cost* stays fixed at its true value while the declared
    bid sweeps ``bid_grid`` — exactly the manipulation the truthfulness
    property forbids from ever being profitable.  This regenerates the
    Fig. 8 curves.
    """
    if auction is not None and auction_config is not None:
        raise ConfigurationError(
            "pass either auction or auction_config, not both"
        )
    auction = auction or ReverseAuction(auction_config)
    worker_index = instance.worker_ids.index(worker_id)
    true_cost = float(instance.costs[worker_index])
    points = []
    for bid in bid_grid:
        outcome = auction.run(instance.with_bid(worker_index, float(bid)))
        won = worker_id in outcome.payments
        payment = outcome.payment_of(worker_id)
        utility = payment - true_cost if won else 0.0
        points.append(
            BidUtilityPoint(bid=float(bid), utility=utility, won=won, payment=payment)
        )
    return points


def verify_truthfulness(
    instance: SOACInstance,
    worker_id: str,
    bid_grid: Sequence[float],
    *,
    auction: ReverseAuction | None = None,
    auction_config: AuctionConfig | None = None,
    tolerance: float = 1e-9,
) -> bool:
    """No bid in ``bid_grid`` may beat bidding the true cost (Lemma 3)."""
    if auction is not None and auction_config is not None:
        raise ConfigurationError(
            "pass either auction or auction_config, not both"
        )
    auction = auction or ReverseAuction(auction_config)
    worker_index = instance.worker_ids.index(worker_id)
    true_cost = float(instance.costs[worker_index])
    truthful_outcome = auction.run(instance.with_bid(worker_index, true_cost))
    truthful_utility = truthful_outcome.utility_of(worker_id, true_cost)
    curve = bid_utility_curve(instance, worker_id, bid_grid, auction=auction)
    return all(point.utility <= truthful_utility + tolerance for point in curve)


def verify_monotonicity(
    instance: SOACInstance,
    worker_id: str,
    *,
    lower_bids: Iterable[float] | None = None,
    auction: ReverseAuction | None = None,
    auction_config: AuctionConfig | None = None,
) -> bool:
    """A winner at bid ``b_i`` must still win at any lower bid (Theorem 2).

    Vacuously true if the worker loses at its current bid.
    """
    if auction is not None and auction_config is not None:
        raise ConfigurationError(
            "pass either auction or auction_config, not both"
        )
    auction = auction or ReverseAuction(auction_config)
    worker_index = instance.worker_ids.index(worker_id)
    current_bid = float(instance.bids[worker_index])
    baseline = auction.run(instance)
    if worker_id not in baseline.payments:
        return True
    if lower_bids is None:
        lower_bids = np.linspace(0.0, current_bid, 5)
    for bid in lower_bids:
        if bid > current_bid:
            continue
        outcome = auction.run(instance.with_bid(worker_index, float(bid)))
        if worker_id not in outcome.payments:
            return False
    return True


def _harmonic(k: int) -> float:
    """H_k = 1 + 1/2 + ... + 1/k (H_0 = 0)."""
    return sum(1.0 / x for x in range(1, k + 1))


def approximation_bound(instance: SOACInstance) -> float:
    """The ``2 e H_Ω`` approximation factor of Lemma 5.

    ``Ω = (1/Δv) Σ_j Θ_j`` with ``Δv`` the minimum positive accuracy —
    the requirement mass measured in units of the smallest accuracy
    contribution.
    """
    positive = instance.accuracy[instance.accuracy > 0]
    if positive.size == 0:
        return math.inf
    delta_v = float(positive.min())
    omega = int(math.ceil(float(instance.requirements.sum()) / delta_v))
    return 2.0 * math.e * _harmonic(max(omega, 1))
