"""Deterministic random-number management.

Every stochastic component of the library accepts either an integer seed
or a ready-made :class:`numpy.random.Generator`.  The helpers here
normalize both forms and derive independent child generators so that,
for example, dataset generation and cost sampling never share a stream
(adding a parameter to one cannot perturb the other).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

#: Type accepted wherever randomness is needed.
SeedLike = int | np.random.Generator | None

_DEFAULT_SEED = 0x5EED


def ensure_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to a fixed library-wide default seed (experiments are
    reproducible unless the caller explicitly asks for entropy), an
    ``int`` seeds a fresh PCG64 generator, and an existing generator is
    passed through unchanged.
    """
    if seed is None:
        return np.random.default_rng(_DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot build a Generator from {type(seed).__name__}")


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]


def instance_seeds(base_seed: int, instances: int) -> list[int]:
    """Derive one integer seed per experiment instance.

    Used by the simulation runner: instance ``k`` of an experiment with
    ``base_seed`` always sees the same dataset regardless of how many
    other instances run alongside it.
    """
    if instances < 0:
        raise ValueError("instances must be non-negative")
    ss = np.random.SeedSequence(base_seed)
    return [int(child.generate_state(1)[0]) for child in ss.spawn(instances)]


def iter_instance_rngs(base_seed: int, instances: int) -> Iterator[np.random.Generator]:
    """Yield one generator per instance, derived as in :func:`instance_seeds`."""
    for seed in instance_seeds(base_seed, instances):
        yield np.random.default_rng(seed)
