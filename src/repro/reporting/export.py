"""CSV / JSON export of experiment results, and the JSON inverse.

Floats are written in shortest-``repr`` form in both formats, so a
written file reads back *exactly*: ``read_json(write_json(result))``
reproduces the result's x-grid and series bit for bit (the round-trip
the export tests pin).  The JSON payload is the same form the run
ledger stores (:meth:`~repro.simulation.sweep.ExperimentResult.
to_payload`), which is what makes ledger-backed exports equivalent to
exporting a cold run.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..simulation.sweep import ExperimentResult

__all__ = ["read_json", "write_csv", "write_json"]


def write_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write ``x, series...`` rows to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([result.x_label, *result.series_names])
        for row in result.rows():
            writer.writerow([repr(c) if isinstance(c, float) else c for c in row])
    return path


def write_json(result: ExperimentResult, path: str | Path) -> Path:
    """Write the full result (including meta) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(result.to_payload(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_json(path: str | Path) -> ExperimentResult:
    """Read a :func:`write_json` file back into an ExperimentResult.

    The inverse of :func:`write_json`: x values and every series come
    back bit-identical (JSON floats round-trip exactly); meta comes
    back as its JSON-safe form.
    """
    with open(Path(path)) as handle:
        return ExperimentResult.from_payload(json.load(handle))
