"""CSV / JSON export of experiment results."""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..simulation.sweep import ExperimentResult

__all__ = ["write_csv", "write_json"]


def write_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write ``x, series...`` rows to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([result.x_label, *result.series_names])
        for row in result.rows():
            writer.writerow([repr(c) if isinstance(c, float) else c for c in row])
    return path


def write_json(result: ExperimentResult, path: str | Path) -> Path:
    """Write the full result (including meta) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "x_label": result.x_label,
        "y_label": result.y_label,
        "x_values": list(result.x_values),
        "series": {name: list(ys) for name, ys in result.series.items()},
        "meta": {k: _jsonable(v) for k, v in result.meta.items()},
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)
