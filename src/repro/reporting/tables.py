"""Plain-text table rendering."""

from __future__ import annotations

from collections.abc import Sequence

from ..simulation.sweep import ExperimentResult

__all__ = ["format_table", "render_result_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_format: str = "{:.4f}",
) -> str:
    """Render a left-padded ASCII table.

    Floats format via ``float_format``; everything else via ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    header_line = " | ".join(h.ljust(widths[k]) for k, h in enumerate(headers))
    rule = "-+-".join("-" * w for w in widths)
    body = [
        " | ".join(cell.rjust(widths[k]) for k, cell in enumerate(row))
        for row in text_rows
    ]
    return "\n".join([header_line, rule, *body])


def render_result_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as ``x | series...`` rows."""
    headers = [result.x_label, *result.series_names]
    lines = [
        f"== {result.experiment_id}: {result.title} ==",
        format_table(headers, result.rows()),
    ]
    if result.meta:
        lines.append("")
        for key, value in result.meta.items():
            lines.append(f"  {key}: {value}")
    return "\n".join(lines)
