"""ASCII line charts — figure rendering without plotting dependencies.

Each series of an :class:`~repro.simulation.sweep.ExperimentResult`
gets a marker character; points are scattered on a character grid with
axis labels and a legend.  Good enough to eyeball the *shape* — which
is the reproduction target — straight from a terminal or a CI log.
"""

from __future__ import annotations

from ..simulation.sweep import ExperimentResult

__all__ = ["render_chart"]

_MARKERS = "o*x+#@%&"


def render_chart(
    result: ExperimentResult,
    *,
    width: int = 60,
    height: int = 16,
) -> str:
    """Render the result as an ASCII chart with a legend."""
    if width < 10 or height < 4:
        raise ValueError("chart needs width >= 10 and height >= 4")
    xs = result.x_values
    all_ys = [y for ys in result.series.values() for y in ys]
    if not all_ys:
        return f"(no data for {result.experiment_id})"
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(all_ys), max(all_ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, marker: str) -> None:
        col = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = marker

    legend = []
    for index, (name, ys) in enumerate(result.series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {name}")
        for x, y in zip(xs, ys):
            plot(x, y, marker)

    y_labels = [f"{y_max:.3g}", f"{(y_max + y_min) / 2:.3g}", f"{y_min:.3g}"]
    label_width = max(len(label) for label in y_labels)
    lines = [f"{result.experiment_id}: {result.title}"]
    lines.append(f"{result.y_label}".rjust(label_width + 2))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_labels[0]
        elif row_index == height // 2:
            label = y_labels[1]
        elif row_index == height - 1:
            label = y_labels[2]
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(row)}")
    lines.append(f"{' ' * label_width} +{'-' * width}")
    x_left = f"{x_min:.3g}"
    x_right = f"{x_max:.3g}"
    padding = width - len(x_left) - len(x_right)
    lines.append(
        f"{' ' * label_width}  {x_left}{' ' * max(padding, 1)}{x_right}"
    )
    lines.append(f"{' ' * label_width}  {result.x_label}")
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)
