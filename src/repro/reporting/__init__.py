"""Reporting: ASCII tables, ASCII line charts, CSV/JSON export.

The harness renders every reproduced table/figure directly in the
terminal (no plotting dependencies) and exports machine-readable CSV so
results can be archived and diffed across runs.
"""

from .export import read_json, write_csv, write_json
from .figures import render_chart
from .tables import format_table, render_result_table

__all__ = [
    "format_table",
    "read_json",
    "render_chart",
    "render_result_table",
    "write_csv",
    "write_json",
]
