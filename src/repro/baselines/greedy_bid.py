"""GB — the Greedy Bid auction baseline (Sec. VII-A).

GB repeatedly selects the *cheapest* worker that still contributes
positive marginal coverage, ignoring how much accuracy the worker
actually adds, until every requirement is covered.

Payment follows the Vickrey second-price idea [20]: each winner is paid
the bid of the cheapest useful *loser* at the moment the selection
finished (the price it would have taken to displace the marginal
excluded worker), or its own bid if every useful worker won.  As with
GA, the payment rule does not affect the reproduced social-cost figures.
"""

from __future__ import annotations

import numpy as np

from ..auction.reverse_auction import AuctionOutcome
from ..auction.soac import COVERAGE_TOL, SOACInstance
from ..errors import InfeasibleCoverageError

__all__ = ["GreedyBid"]


class GreedyBid:
    """Cheapest-first greedy winner selection with Vickrey-style payment."""

    method_name = "GB"

    def run(self, instance: SOACInstance) -> AuctionOutcome:
        """Select by minimal bid among still-useful workers."""
        instance.check_feasible()
        residual = instance.requirements.astype(np.float64).copy()
        selected: list[int] = []
        chosen: set[int] = set()
        while residual.sum() > COVERAGE_TOL:
            best_worker = -1
            best_bid = np.inf
            for k in range(instance.n_workers):
                if k in chosen:
                    continue
                marginal = float(np.minimum(residual, instance.accuracy[k]).sum())
                if marginal <= COVERAGE_TOL:
                    continue
                if instance.bids[k] < best_bid or (
                    instance.bids[k] == best_bid and k < best_worker
                ):
                    best_bid = float(instance.bids[k])
                    best_worker = k
            if best_worker < 0:
                raise InfeasibleCoverageError(instance.uncovered_tasks(chosen))
            selected.append(best_worker)
            chosen.add(best_worker)
            residual = np.maximum(
                residual - np.minimum(residual, instance.accuracy[best_worker]), 0.0
            )

        # Vickrey-style uniform reference price: the cheapest loser that
        # could still have been useful for some task.
        losers = [
            k
            for k in range(instance.n_workers)
            if k not in chosen and float(instance.accuracy[k].sum()) > COVERAGE_TOL
        ]
        reference = min((float(instance.bids[k]) for k in losers), default=None)
        payments = {}
        for i in selected:
            own_bid = float(instance.bids[i])
            payments[instance.worker_ids[i]] = (
                max(own_bid, reference) if reference is not None else own_bid
            )
        return AuctionOutcome(
            method=self.method_name,
            winner_ids=tuple(instance.worker_ids[i] for i in selected),
            winner_indexes=tuple(selected),
            payments=payments,
            social_cost=instance.social_cost(selected),
            total_payment=float(sum(payments.values())),
        )
