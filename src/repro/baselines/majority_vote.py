"""MV — the Majority Voting baseline (Sec. VII-A).

The truth of each task is the value supported by the most workers,
with lexicographic tie-breaking for determinism.  MV treats every
worker as equally reliable, which is exactly the weakness the paper's
Table 1 example exploits: two copiers plus their source outvote a
single correct worker.

MV still reports an accuracy matrix (each worker's agreement rate with
the majority answer) so it can feed the auction stage in ablations,
and a confidence per task (the winning vote share).
"""

from __future__ import annotations

import numpy as np

from ..core.date import TruthDiscoveryResult, build_result
from ..core.engine import dense_accuracy, posterior_table, support_table
from ..core.indexing import DatasetIndex
from ..types import Dataset

__all__ = ["MajorityVote"]


class MajorityVote:
    """Majority voting with agreement-rate accuracies."""

    method_name = "MV"

    def run(
        self, dataset: Dataset, *, index: DatasetIndex | None = None
    ) -> TruthDiscoveryResult:
        """Vote once and derive agreement-based worker accuracies.

        Runs entirely on the integer-coded claim arrays: the vote, the
        vote-share posteriors, and the per-worker agreement rates are
        all segment reductions over value groups / workers.
        """
        index = index or DatasetIndex(dataset)
        arrays = index.arrays
        truth_codes = arrays.majority_codes()

        # Vote shares double as per-value "posteriors" and support.
        counts = arrays.group_size.astype(np.float64)
        task_totals = np.bincount(
            arrays.claim_task, minlength=index.n_tasks
        ).astype(np.float64)
        shares = np.divide(
            counts,
            task_totals[arrays.group_task],
            out=np.zeros_like(counts),
            where=task_totals[arrays.group_task] > 0,
        )
        posteriors = posterior_table(arrays, shares)
        support = support_table(arrays, counts)

        # Accuracy: each worker's agreement rate with the majority
        # answers, broadcast over its answered tasks.
        agrees = (
            arrays.claim_code == truth_codes[arrays.claim_task]
        ).astype(np.float64)
        hits = np.bincount(
            arrays.claim_worker, weights=agrees, minlength=index.n_workers
        )
        answered = np.bincount(arrays.claim_worker, minlength=index.n_workers)
        agreement = np.divide(
            hits, answered, out=np.zeros(index.n_workers), where=answered > 0
        )
        accuracy = dense_accuracy(arrays, agreement[arrays.claim_worker])

        return build_result(
            index,
            arrays.truth_values(truth_codes),
            accuracy,
            posteriors,
            support,
            dependence={},
            iterations=1,
            converged=True,
            method=self.method_name,
        )
