"""MV — the Majority Voting baseline (Sec. VII-A).

The truth of each task is the value supported by the most workers,
with lexicographic tie-breaking for determinism.  MV treats every
worker as equally reliable, which is exactly the weakness the paper's
Table 1 example exploits: two copiers plus their source outvote a
single correct worker.

MV still reports an accuracy matrix (each worker's agreement rate with
the majority answer) so it can feed the auction stage in ablations,
and a confidence per task (the winning vote share).
"""

from __future__ import annotations

import numpy as np

from ..core.date import TruthDiscoveryResult, build_result
from ..core.indexing import DatasetIndex
from ..types import Dataset

__all__ = ["MajorityVote"]


class MajorityVote:
    """Majority voting with agreement-rate accuracies."""

    method_name = "MV"

    def run(
        self, dataset: Dataset, *, index: DatasetIndex | None = None
    ) -> TruthDiscoveryResult:
        """Vote once and derive agreement-based worker accuracies."""
        index = index or DatasetIndex(dataset)
        truths = index.majority_vote()

        # Vote shares double as per-value "posteriors" and support.
        posteriors: list[dict[str, float]] = []
        support: list[dict[str, float]] = []
        for j in range(index.n_tasks):
            groups = index.value_groups[j]
            counts = {v: float(len(ws)) for v, ws in groups.items()}
            total = sum(counts.values())
            posteriors.append(
                {v: c / total for v, c in counts.items()} if total else {}
            )
            support.append(counts)

        # Accuracy: each worker's agreement rate with the majority
        # answers, broadcast over its answered tasks.
        accuracy = np.zeros((index.n_workers, index.n_tasks), dtype=np.float64)
        for i, claims in enumerate(index.claims_by_worker):
            if not claims:
                continue
            agreement = np.mean(
                [1.0 if truths[j] == value else 0.0 for j, value in claims.items()]
            )
            for j in claims:
                accuracy[i, j] = agreement

        return build_result(
            index,
            truths,
            accuracy,
            posteriors,
            support,
            dependence={},
            iterations=1,
            converged=True,
            method=self.method_name,
        )
