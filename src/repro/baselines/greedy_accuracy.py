"""GA — the Greedy Accuracy auction baseline (Sec. VII-A).

GA repeatedly selects the worker with the highest *marginal accuracy
coverage* ``Σ_j min(Θ'_j, A_k^j)`` over the residual requirements,
ignoring prices entirely, until every task's requirement is covered.

Payment: the paper says GA "pays the critical value to the winners",
but GA's selection never reads bids, so no finite Myerson critical
value exists; we pay the declared bid (first-price).  This choice is
invisible to every reproduced figure — Fig. 6 compares *social cost*,
which depends only on the selected set (see DESIGN.md §4).
"""

from __future__ import annotations

import numpy as np

from ..auction.reverse_auction import AuctionOutcome
from ..auction.soac import COVERAGE_TOL, SOACInstance
from ..errors import InfeasibleCoverageError

__all__ = ["GreedyAccuracy"]


class GreedyAccuracy:
    """Accuracy-first greedy winner selection."""

    method_name = "GA"

    def run(self, instance: SOACInstance) -> AuctionOutcome:
        """Select by maximal marginal coverage; pay declared bids."""
        instance.check_feasible()
        residual = instance.requirements.astype(np.float64).copy()
        selected: list[int] = []
        chosen: set[int] = set()
        while residual.sum() > COVERAGE_TOL:
            best_worker = -1
            best_coverage = 0.0
            for k in range(instance.n_workers):
                if k in chosen:
                    continue
                marginal = float(np.minimum(residual, instance.accuracy[k]).sum())
                if marginal <= COVERAGE_TOL:
                    continue
                better = marginal > best_coverage
                tie = (
                    marginal == best_coverage
                    and best_worker >= 0
                    and (
                        instance.bids[k] < instance.bids[best_worker]
                        or (
                            instance.bids[k] == instance.bids[best_worker]
                            and k < best_worker
                        )
                    )
                )
                if better or tie:
                    best_coverage = marginal
                    best_worker = k
            if best_worker < 0:
                raise InfeasibleCoverageError(instance.uncovered_tasks(chosen))
            selected.append(best_worker)
            chosen.add(best_worker)
            residual = np.maximum(
                residual - np.minimum(residual, instance.accuracy[best_worker]), 0.0
            )
        payments = {
            instance.worker_ids[i]: float(instance.bids[i]) for i in selected
        }
        return AuctionOutcome(
            method=self.method_name,
            winner_ids=tuple(instance.worker_ids[i] for i in selected),
            winner_indexes=tuple(selected),
            payments=payments,
            social_cost=instance.social_cost(selected),
            total_payment=float(sum(payments.values())),
        )
