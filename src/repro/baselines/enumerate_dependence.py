"""ED — the Enumerate-Dependence baseline (Sec. VII-A).

ED follows DATE except in step 2: instead of the greedy ordering that
discounts each worker only against its predecessors, ED *enumerates all
possible dependence configurations* between a worker and every other
co-provider of the same value.  Each co-provider pair may or may not
have an active copy edge; a worker's claim is independent exactly when
none of its outgoing edges is active.  Summing the probability mass of
every configuration is exponential in the group size — the cost the
paper measures in Fig. 5 (DATE runs in ≈42.6% of ED's time at n=120,
m=300).

Under the paper's independent-copying assumption the enumeration has a
closed form, ``Π (1 - r·P(i→i'|D))`` over all co-providers, which ED
uses above :attr:`EnumerateDependence.exact_enumeration_limit` workers
to stay finite on adversarial inputs.  Note the product ranges over
*all* co-providers, not just greedy-order predecessors, so ED discounts
copiers more aggressively than DATE — the source of its small precision
edge (+0.8% average in Fig. 4).
"""

from __future__ import annotations

from itertools import product

import numpy as np

from ..core.config import DateConfig
from ..core.date import DATE
from ..core.dependence import DependencePosterior, directed_probability
from ..core.engine import DependenceArrays, DirectedDependenceLookup
from ..core.independence import IndependenceTable
from ..core.indexing import ClaimArrays, DatasetIndex
from ..errors import ConfigurationError

__all__ = ["EnumerateDependence"]


def _enumerated_independence(edge_probs: list[float]) -> float:
    """Mass of the no-active-edge configuration by explicit enumeration.

    Iterates all ``2^k`` on/off assignments of the worker's possible
    copy edges and accumulates the mass of configurations in which the
    worker copied nobody.  Mathematically equal to ``Π (1 - p)`` — the
    point of ED is paying the enumeration cost, not changing the value.
    """
    independent_mass = 0.0
    for bits in product((False, True), repeat=len(edge_probs)):
        if any(bits):
            continue
        mass = 1.0
        for active, p in zip(bits, edge_probs):
            mass *= p if active else 1.0 - p
        independent_mass += mass
    return independent_mass


def _closed_form_independence(edge_probs: list[float]) -> float:
    result = 1.0
    for p in edge_probs:
        result *= 1.0 - p
    return result


class EnumerateDependence(DATE):
    """DATE with exhaustive dependence enumeration in step 2."""

    method_name = "ED"

    def __init__(
        self,
        config: DateConfig | None = None,
        *,
        exact_enumeration_limit: int = 16,
    ):
        super().__init__(config)
        if exact_enumeration_limit < 0:
            raise ConfigurationError("exact_enumeration_limit must be >= 0")
        self.exact_enumeration_limit = exact_enumeration_limit

    def _independence(
        self,
        index: DatasetIndex,
        dependence: dict[tuple[int, int], DependencePosterior],
    ) -> IndependenceTable:
        r = self.config.copy_prob_r
        table: IndependenceTable = []
        for j in range(index.n_tasks):
            per_value: dict[str, dict[int, float]] = {}
            for value, group in index.value_groups[j].items():
                scores: dict[int, float] = {}
                for worker in group:
                    edge_probs = [
                        r * directed_probability(dependence, worker, other)
                        for other in group
                        if other != worker
                    ]
                    if len(edge_probs) <= self.exact_enumeration_limit:
                        scores[worker] = _enumerated_independence(edge_probs)
                    else:
                        scores[worker] = _closed_form_independence(edge_probs)
                per_value[value] = scores
            table.append(per_value)
        return table

    def _independence_flat(
        self,
        index: DatasetIndex,
        arrays: ClaimArrays,
        dependence: DependenceArrays,
    ) -> np.ndarray:
        """Array-side enumeration: same exponential step 2, flat output.

        Steps 1 and 3 ride the vectorized kernels; the per-worker
        ``2^k`` configuration sweep — the cost ED exists to measure —
        stays explicit, fed by the O(pairs) sorted-key dependence
        lookup (the dense n_workers² matrix is never materialized;
        unset entries and the diagonal gather as 0, exactly as the
        dense matrix's zeros did).
        """
        r = self.config.copy_prob_r
        directed = DirectedDependenceLookup.build(arrays, dependence)
        indep = np.ones(arrays.n_claims, dtype=np.float64)
        for m, claim_idx in arrays.multi_group_buckets:
            members = arrays.claim_worker[claim_idx]  # (G, m)
            # r * P(i -> i') for every ordered member pair of the group.
            edges = r * directed.gather(members[:, :, None], members[:, None, :])
            if m - 1 <= self.exact_enumeration_limit:
                off_diag = ~np.eye(m, dtype=bool)
                for g in range(len(members)):
                    for k in range(m):
                        indep[claim_idx[g, k]] = _enumerated_independence(
                            edges[g, k][off_diag[k]].tolist()
                        )
            else:
                complements = 1.0 - edges
                complements[:, np.arange(m), np.arange(m)] = 1.0
                indep[claim_idx] = complements.prod(axis=2)
        return indep
