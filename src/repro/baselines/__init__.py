"""Baseline algorithms the paper compares against (Sec. VII-A).

Truth-discovery baselines (Fig. 3-5):

- :class:`MajorityVote` (MV) — the value claimed by the most workers;
- :class:`NoCopier` (NC) — accuracy-aware Bayesian voting that assumes
  all workers are independent (step 3 of DATE only);
- :class:`EnumerateDependence` (ED) — DATE with step 2 replaced by
  explicit enumeration of copy configurations among co-providers
  (exponential; slightly more precise, much slower).

Auction baselines (Fig. 6-7):

- :class:`GreedyAccuracy` (GA) — repeatedly select the worker with the
  highest marginal accuracy coverage;
- :class:`GreedyBid` (GB) — repeatedly select the cheapest useful
  worker, with a Vickrey-style payment.
"""

from .enumerate_dependence import EnumerateDependence
from .greedy_accuracy import GreedyAccuracy
from .greedy_bid import GreedyBid
from .majority_vote import MajorityVote
from .no_copier import NoCopier

__all__ = [
    "EnumerateDependence",
    "GreedyAccuracy",
    "GreedyBid",
    "MajorityVote",
    "NoCopier",
]
