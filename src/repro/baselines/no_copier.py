"""NC — the No-Copier baseline (Sec. VII-A).

NC assumes every worker is independent, so all dependence machinery is
skipped: it iterates only step 3 of DATE (Bayesian value posteriors and
accuracy refinement, Eqs. 17-20) with every independence probability
fixed at 1.  Against data with copiers it inherits MV's weakness in a
softer form — copied claims still accrue full support — which is why
the paper reports DATE beating NC by ~7.4% precision on average.
"""

from __future__ import annotations

import warnings

from ..core.accuracy import update_accuracy_matrix, value_posteriors
from ..core.config import DateConfig
from ..core.date import TruthDiscoveryResult, build_result
from ..core.indexing import DatasetIndex
from ..core.support import select_truths, support_counts
from ..errors import ConvergenceWarning
from ..types import Dataset

__all__ = ["NoCopier"]


class NoCopier:
    """Accuracy-only iterative truth discovery (step 3 of DATE)."""

    method_name = "NC"

    def __init__(self, config: DateConfig | None = None):
        self.config = config or DateConfig()

    def run(
        self, dataset: Dataset, *, index: DatasetIndex | None = None
    ) -> TruthDiscoveryResult:
        """Iterate posterior/accuracy refinement without dependence."""
        cfg = self.config
        index = index or DatasetIndex(dataset)
        cfg.false_values.prepare(index)

        truths = index.majority_vote()
        accuracy = index.initial_accuracy_matrix(cfg.initial_accuracy)

        # All workers fully independent: I_v^j(i) = 1 everywhere.
        independence = [
            {value: {i: 1.0 for i in group} for value, group in groups.items()}
            for groups in index.value_groups
        ]

        iterations = 0
        converged = False
        cycled = False
        seen_states: set[tuple[str | None, ...]] = {tuple(truths)}
        posteriors: list[dict[str, float]] = []
        support: list[dict[str, float]] = []
        while iterations < cfg.max_iterations:
            iterations += 1
            posteriors = value_posteriors(
                index,
                accuracy,
                false_values=cfg.false_values,
                accuracy_clamp=cfg.accuracy_clamp,
            )
            accuracy = update_accuracy_matrix(
                index, posteriors, granularity=cfg.granularity
            )
            support = support_counts(
                index,
                accuracy,
                independence,
                similarity=cfg.similarity,
                similarity_weight=cfg.similarity_weight,
            )
            new_truths = select_truths(support)
            if new_truths == truths:
                truths = new_truths
                converged = True
                break
            truths = new_truths
            state = tuple(truths)
            if state in seen_states:
                # Cycle (period >= 2): stop deterministically.
                cycled = True
                break
            seen_states.add(state)
        if not converged and not cycled:
            warnings.warn(
                f"NC stopped at the iteration cap ({cfg.max_iterations}) "
                "without the truth estimate stabilizing",
                ConvergenceWarning,
                stacklevel=2,
            )
        return build_result(
            index,
            truths,
            accuracy,
            posteriors,
            support,
            dependence={},
            iterations=iterations,
            converged=converged,
            method=self.method_name,
        )
