"""NC — the No-Copier baseline (Sec. VII-A).

NC assumes every worker is independent, so all dependence machinery is
skipped: it iterates only step 3 of DATE (Bayesian value posteriors and
accuracy refinement, Eqs. 17-20) with every independence probability
fixed at 1.  Against data with copiers it inherits MV's weakness in a
softer form — copied claims still accrue full support — which is why
the paper reports DATE beating NC by ~7.4% precision on average.

Like DATE, NC honours ``DateConfig.backend``: the vectorized engine
iterates flat per-claim arrays, the reference engine the scalar
kernels; both produce identical results.
"""

from __future__ import annotations

import numpy as np

from ..core.accuracy import update_accuracy_matrix, value_posteriors
from ..core.config import DateConfig
from ..core.date import TruthDiscoveryResult, build_result, iterate_truths
from ..core.engine import (
    accuracy_flat,
    dense_accuracy,
    plain_posterior_groups,
    posterior_table,
    select_truth_codes,
    support_flat,
    support_table,
)
from ..core.indexing import DatasetIndex
from ..core.support import select_truths, support_counts
from ..types import Dataset

__all__ = ["NoCopier"]


class NoCopier:
    """Accuracy-only iterative truth discovery (step 3 of DATE)."""

    method_name = "NC"

    def __init__(self, config: DateConfig | None = None):
        self.config = config or DateConfig()

    def run(
        self, dataset: Dataset, *, index: DatasetIndex | None = None
    ) -> TruthDiscoveryResult:
        """Iterate posterior/accuracy refinement without dependence."""
        index = index or DatasetIndex(dataset)
        if self.config.backend == "vectorized":
            return self._run_vectorized(index)
        return self._run_reference(index)

    def _run_reference(self, index: DatasetIndex) -> TruthDiscoveryResult:
        cfg = self.config
        cfg.false_values.prepare(index)

        truths = index.majority_vote()
        accuracy = index.initial_accuracy_matrix(cfg.initial_accuracy)

        # All workers fully independent: I_v^j(i) = 1 everywhere.
        independence = [
            {value: {i: 1.0 for i in group} for value, group in groups.items()}
            for groups in index.value_groups
        ]

        posteriors: list[dict[str, float]] = []
        support: list[dict[str, float]] = []

        def step(truths):
            nonlocal posteriors, support, accuracy
            posteriors = value_posteriors(
                index,
                accuracy,
                false_values=cfg.false_values,
                accuracy_clamp=cfg.accuracy_clamp,
            )
            accuracy = update_accuracy_matrix(
                index, posteriors, granularity=cfg.granularity
            )
            support = support_counts(
                index,
                accuracy,
                independence,
                similarity=cfg.similarity,
                similarity_weight=cfg.similarity_weight,
            )
            return select_truths(support)

        truths, iterations, converged = iterate_truths(
            truths,
            step,
            max_iterations=cfg.max_iterations,
            state_key=tuple,
            label="NC",
        )
        return build_result(
            index,
            truths,
            accuracy,
            posteriors,
            support,
            dependence={},
            iterations=iterations,
            converged=converged,
            method=self.method_name,
        )

    def _run_vectorized(self, index: DatasetIndex) -> TruthDiscoveryResult:
        cfg = self.config
        arrays = index.arrays
        cfg.false_values.prepare(index)

        truth_codes = arrays.majority_codes()
        claim_acc = np.full(arrays.n_claims, cfg.initial_accuracy, dtype=np.float64)
        ones = np.ones(arrays.n_claims, dtype=np.float64)

        group_post = None
        group_support = None

        def step(truth_codes):
            nonlocal group_post, group_support, claim_acc
            group_post = plain_posterior_groups(
                arrays,
                claim_acc,
                false_values=cfg.false_values,
                accuracy_clamp=cfg.accuracy_clamp,
            )
            claim_acc = accuracy_flat(
                arrays, group_post, granularity=cfg.granularity
            )
            group_support = support_flat(
                arrays,
                claim_acc,
                ones,
                similarity=cfg.similarity,
                similarity_weight=cfg.similarity_weight,
            )
            return select_truth_codes(arrays, group_support)

        truth_codes, iterations, converged = iterate_truths(
            truth_codes,
            step,
            max_iterations=cfg.max_iterations,
            state_key=lambda codes: codes.tobytes(),
            label="NC",
        )
        return build_result(
            index,
            arrays.truth_values(truth_codes),
            dense_accuracy(arrays, claim_acc),
            posterior_table(arrays, group_post) if group_post is not None else [],
            support_table(arrays, group_support)
            if group_support is not None
            else [],
            dependence={},
            iterations=iterations,
            converged=converged,
            method=self.method_name,
        )
