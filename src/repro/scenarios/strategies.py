"""Composable worker-strategy transforms with ground-truth labels.

The paper evaluates DATE against one adversary shape — independent
copiers, each replaying a single source (``inject_copiers``).  Related
work studies far richer strategic behavior: strategic revelation
without verification (arXiv:2104.03487) and Theseus-style effort
withholding / spam (arXiv:1705.04387).  This module turns those
behaviors into *composable dataset transforms*:

- :class:`ChainCopiers` — transitive copying: A copies B copies C, so
  errors propagate along a path rather than a star;
- :class:`CollusionRing` — a ring of workers copies a shared **hidden
  leader** answer sheet that never appears in the claim graph, the
  hardest case for pairwise dependence detection;
- :class:`SybilAmplification` — one worker profile cloned under ``k``
  fresh identities, each replaying the original's claims verbatim;
- :class:`LazyWorkers` — effort withholding: answers replaced by
  uniform-random draws over each task's domain (spam);
- :class:`BidShading` — auction-side strategists that misreport their
  private cost (the data is untouched; the declared bids move).

Every transform is a **pure function of** ``(dataset, seed)``: applying
the same transform with the same seed to the same dataset yields an
identical dataset, which is what makes the parallel scenario runner
bit-reproducible.  Each transform also emits
:class:`AdversaryLabel` ground truth so detection precision/recall is
measurable — including for behaviors (hidden leaders) that cannot be
recorded on :class:`~repro.types.WorkerProfile` without leaking into
the claim graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, ensure_generator, spawn
from ..types import Dataset, Task, WorkerProfile

__all__ = [
    "AdversaryLabel",
    "BidShading",
    "ChainCopiers",
    "CollusionRing",
    "LazyWorkers",
    "ScenarioWorld",
    "Strategy",
    "SybilAmplification",
    "apply_strategies",
]

#: Roles that are part of a *copy structure* the dependence posteriors
#: can in principle detect (the denominator of recall).  Copy sources
#: (chain roots, sybil origins) are included: a detector flagging a
#: true (copier, source) pair necessarily flags both endpoints, so
#: leaving sources out would structurally cap precision below 1 for a
#: perfect detector.
COPY_LIKE_ROLES = frozenset(
    {"copier", "chain-root", "colluder", "sybil", "sybil-origin"}
)


@dataclass(frozen=True)
class AdversaryLabel:
    """Ground truth about one adversarial identity.

    ``worker_id`` names a worker in the transformed dataset — except
    for virtual identities (``virtual=True``), such as the hidden
    leader of a collusion ring, which exist only in the generative
    story and deliberately never in the claim graph.
    """

    worker_id: str
    strategy: str
    role: str
    virtual: bool = False
    detail: dict[str, object] = field(default_factory=dict)

    @property
    def copy_like(self) -> bool:
        """Whether a dependence detector should be able to flag this."""
        return self.role in COPY_LIKE_ROLES


@dataclass(frozen=True)
class ScenarioWorld:
    """A transformed dataset plus the full adversary ground truth."""

    dataset: Dataset
    labels: tuple[AdversaryLabel, ...] = ()

    def labels_for(self, role: str) -> tuple[AdversaryLabel, ...]:
        return tuple(lab for lab in self.labels if lab.role == role)

    @property
    def adversary_ids(self) -> frozenset[str]:
        """Non-virtual labeled workers (every strategy's footprint)."""
        return frozenset(
            lab.worker_id for lab in self.labels if not lab.virtual
        )

    @property
    def copy_adversary_ids(self) -> frozenset[str]:
        """Workers a dependence detector is *supposed* to flag."""
        return frozenset(
            lab.worker_id
            for lab in self.labels
            if not lab.virtual and lab.copy_like
        )

    def bid_prices(self) -> dict[str, float]:
        """Declared-bid overrides from bid-shading labels (empty if none)."""
        return {
            lab.worker_id: float(lab.detail["declared_bid"])
            for lab in self.labels
            if lab.role == "bid-shader"
        }


class Strategy:
    """Base class: one adversarial behavior applied to a dataset.

    Subclasses implement :meth:`apply`; they must draw randomness only
    from the generator they are handed and never mutate the input
    dataset, so a strategy is a pure function of ``(dataset, rng
    state)``.
    """

    #: Short machine name, recorded on every label the strategy emits.
    name: str = "strategy"

    def apply(
        self,
        dataset: Dataset,
        rng: np.random.Generator,
        exclude: frozenset[str] = frozenset(),
    ) -> tuple[Dataset, tuple[AdversaryLabel, ...]]:
        """Transform ``dataset``; never recruit workers in ``exclude``.

        ``exclude`` names workers whose claims earlier strategies in a
        stack depend on (colluders, sybil origins, ...); recruiting
        them would silently corrupt the earlier ground truth.
        """
        raise NotImplementedError


def _eligible_ids(dataset: Dataset, exclude: frozenset[str] = frozenset()) -> list[str]:
    """Workers that are still plain independents (stable id order).

    Copiers *and the workers they copy from* are ineligible: rewriting
    a copy source's claims after the copy was taken would silently
    destroy the very dependence signal an earlier transform planted
    (and that detection is scored against).  ``exclude`` carries the
    footprints only the labels know about — e.g. ring colluders, whose
    profiles deliberately stay clean.
    """
    sources = {s for w in dataset.workers for s in w.sources}
    return [
        w.worker_id
        for w in dataset.workers
        if not w.is_copier
        and w.worker_id not in sources
        and w.worker_id not in exclude
    ]


def _pick(rng: np.random.Generator, ids: list[str], count: int) -> list[str]:
    """Draw ``count`` distinct ids, deterministic in ``(ids, rng)``."""
    if count > len(ids):
        raise ConfigurationError(
            f"cannot pick {count} workers from {len(ids)} eligible candidates"
        )
    picks = rng.choice(len(ids), size=count, replace=False)
    return [ids[int(i)] for i in picks]


def _draw_value(
    task: Task, reliability: float, rng: np.random.Generator
) -> str | None:
    """One independent answer: truth w.p. ``reliability``, else a
    uniform false value from *this task's* domain.

    Unlike ``draw_independent_value`` this sizes the false-value draw
    per task, so heterogeneous domains (e.g. CSV campaigns whose
    domains were inferred from observed values) work.  Returns ``None``
    when no independent draw is possible (open domain, or no known
    truth to be right about) — callers keep/skip the claim instead.
    """
    truth = task.truth if task.truth in task.domain else None
    false_values = [v for v in task.domain if v != truth]
    if truth is not None and rng.random() < reliability:
        return truth
    if not false_values:
        return truth
    return false_values[int(rng.integers(len(false_values)))]


@dataclass(frozen=True)
class ChainCopiers(Strategy):
    """Transitive copy chains: ``w_0 <- w_1 <- ... <- w_{L-1}``.

    Each chain picks ``chain_length`` distinct independent workers; the
    root keeps its own answers, every later member re-derives its
    claims from its *predecessor's final claims* (so copied errors
    propagate transitively).  Claims regenerate with the classic copier
    mixture: answer a task the predecessor answered with probability
    ``follow_prob``; copy verbatim with probability ``copy_prob``, else
    draw independently from the member's own reliability.

    Chains are disjoint and edges always point from a later chain
    position to an earlier one, so the dependence graph is a forest —
    no loop can arise, satisfying the paper's no-loop assumption
    (Sec. II-B) by construction.
    """

    n_chains: int = 2
    chain_length: int = 3
    copy_prob: float = 0.9
    follow_prob: float = 0.95
    extra_prob: float = 0.0
    name: str = "chain_copiers"

    def __post_init__(self) -> None:
        if self.n_chains < 1:
            raise ConfigurationError("n_chains must be >= 1")
        if self.chain_length < 2:
            raise ConfigurationError("chain_length must be >= 2 (root + copier)")
        for attr in ("copy_prob", "follow_prob", "extra_prob"):
            if not 0.0 <= getattr(self, attr) <= 1.0:
                raise ConfigurationError(f"{attr} must be in [0, 1]")

    def apply(self, dataset, rng, exclude=frozenset()):
        members = _pick(
            rng, _eligible_ids(dataset, exclude), self.n_chains * self.chain_length
        )
        claims = dict(dataset.claims)
        profiles = {w.worker_id: w for w in dataset.workers}
        labels: list[AdversaryLabel] = []
        for c in range(self.n_chains):
            chain = members[c * self.chain_length : (c + 1) * self.chain_length]
            # The root keeps its own answers but is part of the planted
            # copy structure (mirror of the sybil origin): any detector
            # that finds the (copier, root) pair flags the root too.
            labels.append(
                AdversaryLabel(
                    worker_id=chain[0],
                    strategy=self.name,
                    role="chain-root",
                    detail={"chain": c, "depth": 0},
                )
            )
            for depth in range(1, len(chain)):
                copier, source = chain[depth], chain[depth - 1]
                worker = profiles[copier]
                # Drop the copier's own answers, then re-derive from the
                # predecessor's *current* claims (already rewritten for
                # depth-1, which is what makes the chain transitive).
                for task in dataset.tasks:
                    claims.pop((copier, task.task_id), None)
                for task in dataset.tasks:
                    value = claims.get((source, task.task_id))
                    if value is not None:
                        if rng.random() >= self.follow_prob:
                            continue
                        if rng.random() >= self.copy_prob:
                            own = _draw_value(task, worker.reliability, rng)
                            if own is not None:
                                value = own
                        claims[(copier, task.task_id)] = value
                    elif self.extra_prob > 0.0 and rng.random() < self.extra_prob:
                        extra = _draw_value(task, worker.reliability, rng)
                        if extra is not None:
                            claims[(copier, task.task_id)] = extra
                profiles[copier] = replace(
                    worker,
                    is_copier=True,
                    sources=(source,),
                    copy_prob=self.copy_prob,
                )
                labels.append(
                    AdversaryLabel(
                        worker_id=copier,
                        strategy=self.name,
                        role="copier",
                        detail={"chain": c, "depth": depth, "source": source},
                    )
                )
        workers = tuple(profiles[w.worker_id] for w in dataset.workers)
        return (
            Dataset(tasks=dataset.tasks, workers=workers, claims=claims),
            tuple(labels),
        )


@dataclass(frozen=True)
class CollusionRing(Strategy):
    """A ring copying a shared *hidden* leader answer sheet.

    The leader is virtual: a low-reliability answer sheet drawn once
    per ring, never registered as a worker, so no claim-graph edge or
    profile field betrays it — ring members look like independents who
    happen to agree.  Each member keeps its original answered-task set
    but rewrites each value to the leader's answer with probability
    ``copy_prob`` (own independent draw otherwise).
    """

    ring_size: int = 4
    copy_prob: float = 0.9
    leader_reliability: float = 0.35
    name: str = "collusion_ring"

    def __post_init__(self) -> None:
        if self.ring_size < 2:
            raise ConfigurationError("ring_size must be >= 2")
        if not 0.0 <= self.copy_prob <= 1.0:
            raise ConfigurationError("copy_prob must be in [0, 1]")
        if not 0.0 < self.leader_reliability <= 1.0:
            raise ConfigurationError("leader_reliability must be in (0, 1]")

    def apply(self, dataset, rng, exclude=frozenset()):
        members = _pick(rng, _eligible_ids(dataset, exclude), self.ring_size)
        # The hidden leader's sheet covers every drawable task; members
        # only ever read the entries for tasks they answer, and keep
        # their original claim where no independent draw exists.
        sheet: dict[str, str] = {}
        for task in dataset.tasks:
            value = _draw_value(task, self.leader_reliability, rng)
            if value is not None:
                sheet[task.task_id] = value
        claims = dict(dataset.claims)
        member_set = set(members)
        for worker in dataset.workers:
            if worker.worker_id not in member_set:
                continue
            for task in dataset.tasks:
                key = (worker.worker_id, task.task_id)
                if key not in claims or task.task_id not in sheet:
                    continue
                if rng.random() < self.copy_prob:
                    claims[key] = sheet[task.task_id]
                else:
                    claims[key] = _draw_value(task, worker.reliability, rng)
        leader_id = f"__{self.name}_leader_{members[0]}__"
        labels = [
            AdversaryLabel(
                worker_id=leader_id,
                strategy=self.name,
                role="leader",
                virtual=True,
                detail={"members": tuple(sorted(members))},
            )
        ]
        labels += [
            AdversaryLabel(
                worker_id=member,
                strategy=self.name,
                role="colluder",
                detail={"leader": leader_id},
            )
            for member in members
        ]
        return (
            Dataset(tasks=dataset.tasks, workers=dataset.workers, claims=claims),
            tuple(labels),
        )


@dataclass(frozen=True)
class SybilAmplification(Strategy):
    """Clone worker profiles under fresh identities (sybil attack).

    Each chosen origin profile gains ``clones_per_profile`` new
    identities that replay the origin's claims verbatim — the cheapest
    way to amplify one voice in vote-based truth discovery.  Clones
    preserve the origin's per-identity claim count exactly, and their
    profiles record the generative truth (``is_copier``, ``sources``)
    that evaluation reads and estimation never does.
    """

    n_profiles: int = 2
    clones_per_profile: int = 3
    name: str = "sybil_amplification"

    def __post_init__(self) -> None:
        if self.n_profiles < 1:
            raise ConfigurationError("n_profiles must be >= 1")
        if self.clones_per_profile < 1:
            raise ConfigurationError("clones_per_profile must be >= 1")

    def apply(self, dataset, rng, exclude=frozenset()):
        origins = _pick(rng, _eligible_ids(dataset, exclude), self.n_profiles)
        claims = dict(dataset.claims)
        workers = list(dataset.workers)
        existing = {w.worker_id for w in dataset.workers}
        labels: list[AdversaryLabel] = []
        for origin in origins:
            profile = dataset.worker_by_id[origin]
            origin_claims = dataset.claims_by_worker[origin]
            labels.append(
                AdversaryLabel(
                    worker_id=origin,
                    strategy=self.name,
                    role="sybil-origin",
                    detail={"clones": self.clones_per_profile},
                )
            )
            for j in range(self.clones_per_profile):
                clone_id = f"{origin}_syb{j}"
                if clone_id in existing:
                    raise ConfigurationError(
                        f"sybil identity {clone_id!r} already exists"
                    )
                existing.add(clone_id)
                workers.append(
                    WorkerProfile(
                        worker_id=clone_id,
                        cost=profile.cost,
                        reliability=profile.reliability,
                        is_copier=True,
                        sources=(origin,),
                        copy_prob=1.0,
                    )
                )
                for task_id, value in origin_claims.items():
                    claims[(clone_id, task_id)] = value
                labels.append(
                    AdversaryLabel(
                        worker_id=clone_id,
                        strategy=self.name,
                        role="sybil",
                        detail={"origin": origin},
                    )
                )
        return (
            Dataset(tasks=dataset.tasks, workers=tuple(workers), claims=claims),
            tuple(labels),
        )


@dataclass(frozen=True)
class LazyWorkers(Strategy):
    """Effort withholding: answers become uniform draws over the domain.

    The chosen workers keep their answered-task sets (participation is
    observable; effort is not) but every value is replaced by a uniform
    draw over the task's full domain — the spammer model of
    Theseus-style effort withholding.  Profiles record the new
    generative reliability (the mean chance level over answered tasks).
    """

    n_workers: int = 5
    name: str = "lazy_workers"

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")

    def apply(self, dataset, rng, exclude=frozenset()):
        lazy = _pick(rng, _eligible_ids(dataset, exclude), self.n_workers)
        claims = dict(dataset.claims)
        profiles = {w.worker_id: w for w in dataset.workers}
        labels = []
        for worker_id in lazy:
            answered = dataset.claims_by_worker[worker_id]
            chance_levels = []
            for task in dataset.tasks:
                if task.task_id not in answered or not task.domain:
                    continue
                domain = task.domain
                value = domain[int(rng.integers(len(domain)))]
                claims[(worker_id, task.task_id)] = value
                chance_levels.append(1.0 / len(domain))
            if chance_levels:
                profiles[worker_id] = replace(
                    profiles[worker_id],
                    reliability=float(np.mean(chance_levels)),
                )
            labels.append(
                AdversaryLabel(
                    worker_id=worker_id,
                    strategy=self.name,
                    role="spammer",
                    detail={"answers": len(answered)},
                )
            )
        workers = tuple(profiles[w.worker_id] for w in dataset.workers)
        return (
            Dataset(tasks=dataset.tasks, workers=workers, claims=claims),
            tuple(labels),
        )


@dataclass(frozen=True)
class BidShading(Strategy):
    """Auction-side strategists declaring ``shade_factor × cost``.

    The data is untouched; the strategy only labels which workers
    misreport and what they declare, and
    :meth:`ScenarioWorld.bid_prices` turns those labels into the price
    overrides for :meth:`repro.types.Dataset.bids`.  The truthfulness
    experiments then measure what shading costs the shaders (Theorem 1
    says: it never pays).
    """

    n_workers: int = 5
    shade_factor: float = 0.6
    name: str = "bid_shading"

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if self.shade_factor < 0.0:
            raise ConfigurationError("shade_factor must be >= 0")

    def apply(self, dataset, rng, exclude=frozenset()):
        # Shading touches only declared bids, never claims, so earlier
        # strategies' footprints are safe targets — ``exclude`` is
        # accepted for signature uniformity and ignored.
        shaders = _pick(
            rng, [w.worker_id for w in dataset.workers], self.n_workers
        )
        labels = tuple(
            AdversaryLabel(
                worker_id=worker_id,
                strategy=self.name,
                role="bid-shader",
                detail={
                    "true_cost": dataset.worker_by_id[worker_id].cost,
                    "declared_bid": dataset.worker_by_id[worker_id].cost
                    * self.shade_factor,
                },
            )
            for worker_id in sorted(shaders)
        )
        return dataset, labels


def apply_strategies(
    dataset: Dataset,
    strategies: tuple[Strategy, ...] | list[Strategy],
    seed: SeedLike = None,
) -> ScenarioWorld:
    """Apply a strategy stack in order; pure in ``(dataset, seed)``.

    Each strategy receives its own child generator spawned from the
    root seed, so inserting or reordering strategies never perturbs the
    randomness of the others beyond their actual data dependencies.
    Later strategies never recruit workers an earlier strategy already
    labeled (or the workers copies were taken from): rewriting those
    claims would silently destroy the planted dependence signal that
    detection is scored against.
    """
    rng = ensure_generator(seed)
    children = spawn(rng, len(tuple(strategies)))
    labels: list[AdversaryLabel] = []
    for strategy, child in zip(strategies, children):
        protected = frozenset(
            label.worker_id for label in labels if not label.virtual
        )
        dataset, new_labels = strategy.apply(dataset, child, protected)
        labels.extend(new_labels)
    return ScenarioWorld(dataset=dataset, labels=tuple(labels))
