"""Declarative scenarios: world × strategy stack × engine settings.

A :class:`Scenario` is everything needed to reproduce one adversarial
evaluation — the synthetic world shape, the ordered strategy stack, the
DATE hyperparameters, the evaluation protocol (instances, base seed,
detection threshold), and whether the auction stage runs too.  It is a
frozen, picklable value object: the parallel runner ships scenarios to
spawn workers, and ``scenario.world_for(k)`` is a pure function of the
scenario, so every instance is bit-reproducible anywhere.

The module registry (:func:`register_scenario` / :func:`get_scenario` /
:func:`list_scenarios`) is the single source of truth behind
``repro scenario list`` and ``repro scenario run``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..core.config import DateConfig
from ..datasets.qatar_living import qatar_world_config
from ..datasets.synthetic import WorldConfig, generate_world
from ..errors import ConfigurationError, ReproError
from ..rng import instance_seeds
from .strategies import (
    BidShading,
    ChainCopiers,
    CollusionRing,
    LazyWorkers,
    ScenarioWorld,
    Strategy,
    SybilAmplification,
    apply_strategies,
)

__all__ = [
    "Scenario",
    "UnknownScenarioError",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
]


class UnknownScenarioError(ReproError, KeyError):
    """A scenario name is not present in the registry."""


#: Default world: the quick-scale Qatar-Living-like shape used by the
#: experiment harness, small enough for CI smoke runs.
def _default_world() -> WorldConfig:
    return qatar_world_config(n_tasks=60, n_workers=40, target_claims=1200)


@dataclass(frozen=True)
class Scenario:
    """One fully specified adversarial evaluation."""

    name: str
    description: str
    strategies: tuple[Strategy, ...]
    world: WorldConfig = field(default_factory=_default_world)
    date: DateConfig = field(default_factory=lambda: DateConfig(copy_prob_r=0.8))
    instances: int = 3
    base_seed: int = 42
    #: Dependence-posterior threshold above which a pair (and both its
    #: workers) counts as flagged by the detector.
    detection_threshold: float = 0.8
    #: Also run the IMC2 auction per instance and report shading/welfare
    #: metrics (needed by bid-shading scenarios).
    auction: bool = False
    requirement_cap: float = 0.8
    #: Truth-discovery algorithm driving the primary estimate (any zoo
    #: member; the ``date_precision`` metric reports whichever runs).
    algorithm: str = "DATE"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if self.instances < 1:
            raise ConfigurationError("instances must be >= 1")
        if not 0.0 < self.detection_threshold < 1.0:
            raise ConfigurationError("detection_threshold must be in (0, 1)")

    def evolve(self, **changes: Any) -> "Scenario":
        """Return a copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    def instance_seed(self, k: int) -> int:
        """Root seed of the k-th instance (stable across config edits)."""
        if not 0 <= k < self.instances:
            raise ConfigurationError(
                f"instance index {k} out of range [0, {self.instances})"
            )
        return instance_seeds(self.base_seed, self.instances)[k]

    def world_for(self, k: int) -> ScenarioWorld:
        """Materialize the k-th instance: world + strategy stack.

        The world generates from the instance seed and the strategies
        apply under ``seed + 1`` (mirroring ``ExperimentConfig``'s
        world/copier split), so a pure world-parameter change never
        perturbs the adversary randomness and vice versa.
        """
        seed = self.instance_seed(k)
        dataset = generate_world(self.world, seed)
        return apply_strategies(dataset, self.strategies, seed + 1)


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, *, replace_existing: bool = False) -> Scenario:
    """Add a scenario to the registry (name collisions raise)."""
    if scenario.name in _REGISTRY and not replace_existing:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up one scenario; raises :class:`UnknownScenarioError`."""
    scenario = _REGISTRY.get(name)
    if scenario is None:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return scenario


def list_scenarios() -> list[Scenario]:
    """All registered scenarios, in registration order."""
    return list(_REGISTRY.values())


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------

register_scenario(
    Scenario(
        name="chain-copiers",
        description="Two transitive copy chains (A copies B copies C)",
        strategies=(ChainCopiers(n_chains=2, chain_length=3),),
    )
)

register_scenario(
    Scenario(
        name="collusion-ring",
        description="Five workers copy a shared hidden leader sheet",
        strategies=(CollusionRing(ring_size=5),),
    )
)

register_scenario(
    Scenario(
        name="sybil-amplification",
        description="Two profiles cloned under three sybil identities each",
        strategies=(SybilAmplification(n_profiles=2, clones_per_profile=3),),
    )
)

register_scenario(
    Scenario(
        name="lazy-spammers",
        description="Eight workers withhold effort and answer uniformly",
        strategies=(LazyWorkers(n_workers=8),),
    )
)

register_scenario(
    Scenario(
        name="bid-shading",
        description="Six workers underbid their true cost in the auction",
        strategies=(BidShading(n_workers=6, shade_factor=0.6),),
        auction=True,
    )
)

register_scenario(
    Scenario(
        name="mixed-adversaries",
        description="Chain copiers + a collusion ring + lazy spammers at once",
        strategies=(
            ChainCopiers(n_chains=1, chain_length=3),
            CollusionRing(ring_size=4),
            LazyWorkers(n_workers=4),
        ),
    )
)
