"""Run scenarios: seeded instances, detection scoring, parallel fan-out.

:func:`run_scenario` materializes every instance of a
:class:`~repro.scenarios.registry.Scenario`, runs DATE (plus the MV
baseline, plus the auction when the scenario asks for it), and scores
the result against the strategy stack's ground-truth adversary labels.
The per-instance work function is a module-level function of
``(scenario, k)`` — picklable by construction — so ``parallel=N``
distributes instances over the shared spawn pool
(:mod:`repro.simulation.executor`) with results bit-identical to the
serial path: every instance derives its seeds from the scenario alone,
never from scheduling.

:func:`sweep_scenario` turns a scenario family into a plot-ready
:class:`~repro.simulation.sweep.ExperimentResult` by evolving the base
scenario along an x-grid.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from functools import partial

from ..artifacts import RunKey, RunLedger
from ..baselines import MajorityVote
from ..core.date import TruthDiscoveryResult
from ..core.indexing import DatasetIndex
from ..discovery import make_discoverer
from ..mechanism.imc2 import IMC2
from ..simulation.metrics import precision
from ..simulation.runner import InstanceTable, run_instances
from ..simulation.stats import SummaryStats
from ..simulation.sweep import ExperimentResult, sweep_series
from .registry import Scenario
from .strategies import ScenarioWorld

__all__ = [
    "DetectionReport",
    "ScenarioRunResult",
    "detection_report",
    "run_scenario",
    "scenario_run_key",
    "sweep_scenario",
]


@dataclass(frozen=True)
class DetectionReport:
    """Set-level adversary detection quality against ground truth.

    A worker is *flagged* when it appears in at least one worker pair
    whose total dependence posterior reaches the threshold; the target
    set is every member of a planted copy structure — chain copiers
    *and their roots*, colluders, sybil clones *and their origins*
    (flagging a true (copier, source) pair necessarily flags both
    endpoints, so sources belong in the target set) — while spammers
    and bid shaders leave no copy signature and stay out of the
    denominator.  Empty sets follow the usual conventions: no flags ⇒
    precision 1, no targets ⇒ recall 1; for target-free scenarios the
    F1 therefore scores false-flagging (1 = correctly flagged nobody).
    """

    flagged: frozenset[str]
    targets: frozenset[str]

    @property
    def true_positives(self) -> int:
        return len(self.flagged & self.targets)

    @property
    def precision(self) -> float:
        return self.true_positives / len(self.flagged) if self.flagged else 1.0

    @property
    def recall(self) -> float:
        return self.true_positives / len(self.targets) if self.targets else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0.0 else 0.0


def detection_report(
    result: TruthDiscoveryResult, world: ScenarioWorld, threshold: float
) -> DetectionReport:
    """Score the dependence posteriors against the adversary labels."""
    flagged: set[str] = set()
    for (a, b), posterior in result.dependence.items():
        if posterior.p_dependent >= threshold:
            flagged.add(a)
            flagged.add(b)
    return DetectionReport(
        flagged=frozenset(flagged), targets=world.copy_adversary_ids
    )


class _PrecomputedTruth:
    """Adapter handing an already-computed stage-1 result to IMC2."""

    def __init__(self, result: TruthDiscoveryResult):
        self._result = result

    def run(self, dataset, index=None) -> TruthDiscoveryResult:
        return self._result


def instance_metrics(scenario: Scenario, k: int) -> dict[str, float]:
    """All metrics of one scenario instance (module-level: picklable).

    Always reported: DATE and MV precision, detection
    precision/recall/F1 at the scenario threshold, and the adversary
    head-counts.  With ``scenario.auction`` enabled the IMC2 auction
    additionally runs once truthfully and then once per shader with
    *only that shader* deviating to its declared bid — the unilateral
    deviation that dominant-strategy truthfulness (Theorem 1) actually
    bounds (a joint all-shaders deviation could show spurious gains a
    DSIC mechanism never promises to prevent).  A genuine truthfulness
    violation would surface as ``shading_gain > 0`` (the best
    unilateral gain across shaders).
    """
    world = scenario.world_for(k)
    dataset = world.dataset
    index = DatasetIndex(dataset)
    discoverer = make_discoverer(scenario.algorithm, date_config=scenario.date)
    result = discoverer.run(dataset, index=index)
    mv = MajorityVote().run(dataset, index=index)
    report = detection_report(result, world, scenario.detection_threshold)
    metrics: dict[str, float] = {
        "date_precision": precision(result, dataset),
        "mv_precision": precision(mv, dataset),
        "detection_precision": report.precision,
        "detection_recall": report.recall,
        "detection_f1": report.f1,
        "n_adversaries": float(len(world.adversary_ids)),
        "n_flagged": float(len(report.flagged)),
    }
    if scenario.auction:
        shaded_prices = world.bid_prices()
        # Stage 1 does not depend on the bids, so every auction run
        # reuses the DATE result computed above instead of re-estimating.
        mechanism = IMC2(
            truth_algorithm=_PrecomputedTruth(result),
            requirement_cap=scenario.requirement_cap,
        )
        truthful = mechanism.run(dataset)
        shaders = sorted(shaded_prices)
        truthful_utility = sum(
            truthful.worker_utilities.get(w, 0.0) for w in shaders
        )
        # One unilateral deviation per shader: only worker ``w`` shades,
        # everyone else bids truthfully.
        unilateral = 0.0
        best_gain = 0.0 if not shaders else float("-inf")
        for worker_id in shaders:
            solo = mechanism.run(
                dataset,
                bids=dataset.bids(
                    prices={worker_id: shaded_prices[worker_id]}
                ),
            )
            utility = solo.worker_utilities.get(worker_id, 0.0)
            unilateral += utility
            best_gain = max(
                best_gain,
                utility - truthful.worker_utilities.get(worker_id, 0.0),
            )
        metrics.update(
            {
                "social_cost": truthful.auction.social_cost,
                "total_payment": truthful.auction.total_payment,
                "shader_utility_truthful": truthful_utility,
                "shader_utility_shaded": unilateral,
                "shading_gain": best_gain,
            }
        )
    return metrics


@dataclass(frozen=True)
class ScenarioRunResult:
    """Per-instance metric rows plus the scenario they came from."""

    scenario: Scenario
    table: InstanceTable

    def summary(self) -> dict[str, SummaryStats]:
        """Mean/CI of every metric across the instances."""
        return self.table.summary()

    def mean(self, metric: str) -> float:
        return self.table.mean(metric)


def scenario_run_key(scenario: Scenario) -> RunKey:
    """The per-instance ledger key of a scenario run.

    The whole frozen scenario value object *is* the declaration — the
    world shape, the ordered strategy stack, the DATE config, the
    detection threshold, and the auction toggle all live in its fields
    and are canonically encoded.  Only the instance count is
    normalized out (instance seeds are count-independent), so growing
    ``--instances`` reuses banked rows.
    """
    return RunKey(
        experiment_id=f"scenario/{scenario.name}",
        payload={"scenario": scenario.evolve(instances=1)},
    )


def run_scenario(
    scenario: Scenario,
    *,
    parallel: int | None = 1,
    ledger: RunLedger | None = None,
) -> ScenarioRunResult:
    """Run every seeded instance of ``scenario`` (optionally in parallel).

    With a ``ledger`` each instance row is banked under the scenario's
    content fingerprint (:func:`scenario_run_key`), so repeated and
    resumed runs recompute only the missing instances.
    """
    table = run_instances(
        scenario.instances,
        partial(instance_metrics, scenario),
        parallel=parallel,
        ledger=ledger,
        key=scenario_run_key(scenario) if ledger is not None else None,
    )
    return ScenarioRunResult(scenario=scenario, table=table)


def sweep_scenario(
    base: Scenario,
    x_values: Sequence[float],
    configure: Callable[[Scenario, float], Scenario],
    *,
    experiment_id: str = "scenario-sweep",
    title: str | None = None,
    x_label: str = "x",
    metrics: Sequence[str] = ("date_precision", "detection_f1"),
    parallel: int | None = 1,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Sweep a scenario family along an x-grid into plot-ready series.

    ``configure(base, x)`` evolves the base scenario for each grid
    point; each point averages the requested metrics over the
    scenario's instances.  Parallelism fans out at the *instance* level
    (the configure callable runs only in the parent process, so it may
    be any local function), which keeps the sweep bit-identical to the
    serial path for every ``parallel``.  A ``ledger`` banks the
    instance rows of every evolved scenario, so the sweep resumes at
    instance granularity.
    """

    def point(x: float) -> dict[str, float]:
        result = run_scenario(configure(base, x), parallel=parallel, ledger=ledger)
        return {metric: result.mean(metric) for metric in metrics}

    return sweep_series(
        experiment_id,
        title or f"Scenario sweep of {base.name!r}",
        x_label,
        ", ".join(metrics),
        x_values,
        point,
        meta={
            "scenario": base.name,
            "instances": base.instances,
            "base_seed": base.base_seed,
            "strategies": [s.name for s in base.strategies],
        },
    )
