"""Adversarial scenario lab: strategy transforms, registry, runner.

The lab answers "what happens to DATE (and the auction) under worker
strategies richer than the paper's single copier model" in three
layers:

- :mod:`repro.scenarios.strategies` — composable, seeded dataset
  transforms (chain copiers, collusion rings, sybil amplification,
  lazy spammers, bid shading), each emitting ground-truth
  :class:`~repro.scenarios.strategies.AdversaryLabel` records;
- :mod:`repro.scenarios.registry` — the declarative
  :class:`~repro.scenarios.registry.Scenario` value object and the
  named registry behind ``repro scenario list``;
- :mod:`repro.scenarios.runner` — seeded instance execution with
  detection precision/recall scoring and deterministic process-pool
  fan-out (``parallel=N``, bit-identical to serial).
"""

from .registry import (
    Scenario,
    UnknownScenarioError,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from .runner import (
    DetectionReport,
    ScenarioRunResult,
    detection_report,
    run_scenario,
    sweep_scenario,
)
from .strategies import (
    AdversaryLabel,
    BidShading,
    ChainCopiers,
    CollusionRing,
    LazyWorkers,
    ScenarioWorld,
    Strategy,
    SybilAmplification,
    apply_strategies,
)

__all__ = [
    "AdversaryLabel",
    "BidShading",
    "ChainCopiers",
    "CollusionRing",
    "DetectionReport",
    "LazyWorkers",
    "Scenario",
    "ScenarioRunResult",
    "ScenarioWorld",
    "Strategy",
    "SybilAmplification",
    "UnknownScenarioError",
    "apply_strategies",
    "detection_report",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_scenario",
    "sweep_scenario",
]
