"""repro — reproduction of "Incentivizing the Workers for Truth
Discovery in Crowdsourcing with Copiers" (Jiang et al., ICDCS 2019).

The package implements the paper's two-stage IMC2 mechanism end to end:

- **DATE** truth discovery with Bayesian copier detection
  (:mod:`repro.core`);
- the **SOAC** reverse auction with critical-value payments
  (:mod:`repro.auction`);
- the five evaluation baselines MV / NC / ED / GA / GB
  (:mod:`repro.baselines`);
- seeded synthetic datasets standing in for the paper's external data
  (:mod:`repro.datasets`);
- a simulation + reporting harness and one runner per paper
  table/figure (:mod:`repro.simulation`, :mod:`repro.experiments`);
- a streaming ingestion + online truth-discovery service — claim
  batches, incremental re-estimation, multi-campaign store, HTTP API
  (:mod:`repro.streaming`, ``repro serve``);
- an adversarial scenario lab — composable worker-strategy transforms
  (chain copiers, collusion rings, sybils, spammers, bid shading) with
  ground-truth labels, a declarative scenario registry, and a seeded
  parallel runner (:mod:`repro.scenarios`, ``repro scenario run``).

Quickstart::

    from repro import DATE, IMC2, generate_qatar_living_like

    dataset = generate_qatar_living_like(seed=7)
    result = DATE().run(dataset)
    print("precision:", result.precision())

    outcome = IMC2().run(dataset)
    print("winners:", len(outcome.winners))
"""

from .auction import (
    AuctionConfig,
    AuctionOutcome,
    ReverseAuction,
    SOACInstance,
    solve_optimal,
)
from .baselines import (
    EnumerateDependence,
    GreedyAccuracy,
    GreedyBid,
    MajorityVote,
    NoCopier,
)
from .core import (
    DATE,
    DateConfig,
    DatasetIndex,
    EmpiricalFalseValues,
    TruthDiscoveryResult,
    UniformFalseValues,
    ZipfFalseValues,
    discover_truth,
)
from .datasets import (
    PalmM515LikeSampler,
    WorldConfig,
    generate_qatar_living_like,
    generate_world,
    inject_copiers,
    load_dataset,
    save_dataset,
)
from .errors import (
    ConfigurationError,
    ConvergenceWarning,
    DataFormatError,
    InfeasibleCoverageError,
    MetricMismatchError,
    ReproError,
)
from .mechanism import IMC2, IMC2Outcome
from .simulation import ExperimentConfig, ExperimentResult
from .streaming import (
    CampaignStore,
    ClaimBatch,
    OnlineDATE,
    OnlineUpdate,
    replay_batches,
)
from .types import Bid, Dataset, Task, WorkerProfile

__version__ = "1.0.0"

__all__ = [
    "AuctionConfig",
    "AuctionOutcome",
    "Bid",
    "CampaignStore",
    "ClaimBatch",
    "ConfigurationError",
    "ConvergenceWarning",
    "DATE",
    "DataFormatError",
    "Dataset",
    "DatasetIndex",
    "DateConfig",
    "EmpiricalFalseValues",
    "EnumerateDependence",
    "ExperimentConfig",
    "ExperimentResult",
    "GreedyAccuracy",
    "GreedyBid",
    "IMC2",
    "IMC2Outcome",
    "InfeasibleCoverageError",
    "MajorityVote",
    "MetricMismatchError",
    "NoCopier",
    "OnlineDATE",
    "OnlineUpdate",
    "PalmM515LikeSampler",
    "ReproError",
    "ReverseAuction",
    "SOACInstance",
    "Task",
    "TruthDiscoveryResult",
    "UniformFalseValues",
    "WorkerProfile",
    "WorldConfig",
    "ZipfFalseValues",
    "discover_truth",
    "generate_qatar_living_like",
    "generate_world",
    "inject_copiers",
    "load_dataset",
    "replay_batches",
    "save_dataset",
    "solve_optimal",
    "__version__",
]
