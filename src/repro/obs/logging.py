"""Structured JSON-lines logging routed through the metrics registry.

One log record is one JSON object on one line of stderr — machine
parseable (the CI smoke jobs grep fields out of the serve log) while
staying human-skimmable.  Every record carries ``ts`` (ISO-8601 local
time), ``level``, ``logger``, ``msg``, plus whatever keyword fields the
call site attaches (campaign id, duration, route...).

Emission also feeds the process registry: each record increments
``log_messages_total{logger,level}`` when telemetry is enabled, so the
log volume of a live service is itself observable from ``/metrics``.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, TextIO

from .metrics import get_registry

__all__ = ["JsonLinesLogger", "get_logger"]


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    return repr(value)


class JsonLinesLogger:
    """A named emitter of one-JSON-object-per-line records."""

    def __init__(self, name: str, stream: TextIO | None = None):
        self.name = name
        self._stream = stream
        self._lock = threading.Lock()

    def _emit(self, level: str, msg: str, fields: dict[str, Any]) -> None:
        record: dict[str, Any] = {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "level": level,
            "logger": self.name,
            "msg": msg,
        }
        for key, value in fields.items():
            record[key] = _json_safe(value)
        line = json.dumps(record, sort_keys=False)
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            print(line, file=stream, flush=True)
        get_registry().counter(
            "log_messages_total",
            "Structured log records emitted.",
            labels={"logger": self.name, "level": level},
        ).inc()

    def info(self, msg: str, **fields: Any) -> None:
        self._emit("info", msg, fields)

    def warning(self, msg: str, **fields: Any) -> None:
        self._emit("warning", msg, fields)

    def error(self, msg: str, **fields: Any) -> None:
        self._emit("error", msg, fields)


_LOGGERS: dict[str, JsonLinesLogger] = {}
_LOGGERS_LOCK = threading.Lock()


def get_logger(name: str) -> JsonLinesLogger:
    """The process-wide logger named ``name`` (created on first use)."""
    with _LOGGERS_LOCK:
        logger = _LOGGERS.get(name)
        if logger is None:
            logger = JsonLinesLogger(name)
            _LOGGERS[name] = logger
        return logger
