"""Observability: metrics, run tracing, structured logging (DESIGN.md §13).

The obs layer makes the system legible without making it different:

- :mod:`~repro.obs.metrics` — process-wide registry of counters,
  gauges, histograms and timers, disabled by default and ~free when
  off (call sites bind instruments once per operation; the disabled
  registry hands back a shared no-op stub);
- :mod:`~repro.obs.exposition` — Prometheus text rendering of the
  registry, served at the streaming service's ``/metrics``;
- :mod:`~repro.obs.trace` — JSONL run traces named by the ledger
  result fingerprint, so every trace joins its provenance rows;
- :mod:`~repro.obs.logging` — JSON-lines structured logging.

Invariant pinned by the property suite: instrumentation only observes,
never feeds back — instrumented runs are bit-identical to
uninstrumented ones.
"""

from .exposition import CONTENT_TYPE, render_prometheus
from .logging import JsonLinesLogger, get_logger
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    DEFAULT_VALUE_BUCKETS,
    NULL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    enabled,
    get_registry,
    set_registry,
)
from .trace import (
    TRACE_DIR_ENV,
    TraceEntry,
    TraceWriter,
    active,
    default_trace_dir,
    emit,
    find_trace,
    list_traces,
    read_trace,
    run_fingerprint,
    span,
    trace_run,
)

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_VALUE_BUCKETS",
    "NULL",
    "TRACE_DIR_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesLogger",
    "MetricsRegistry",
    "Timer",
    "TraceEntry",
    "TraceWriter",
    "active",
    "default_trace_dir",
    "emit",
    "enabled",
    "find_trace",
    "get_logger",
    "get_registry",
    "list_traces",
    "read_trace",
    "render_prometheus",
    "run_fingerprint",
    "set_registry",
    "span",
    "trace_run",
]
