"""Structured run tracing: JSONL event streams joinable to the ledger.

A *trace* is the narrative of one run — ``run_start``, nested spans,
engine iteration events, per-instance rows, ``run_end`` — written as
JSON lines to ``<trace dir>/<fingerprint>.jsonl``.  The fingerprint is
the crux (DESIGN.md §13): when the traced key is a
:class:`~repro.artifacts.ledger.RunKey`, the trace file is named by the
ledger's *result* digest and per-instance events carry the exact
``row_fingerprint`` digests, so every trace joins its provenance rows
with no side table.

Like the metrics registry, tracing is opt-in and observation-only: no
active trace means :func:`emit` and :func:`span` are no-ops (one
contextvar read), and nothing a trace records ever feeds back into the
computation — instrumented runs stay bit-identical to uninstrumented
ones.

The trace directory defaults to ``~/.cache/repro/traces`` and is
overridden by ``$REPRO_TRACE_DIR`` (how CI smoke jobs capture a sample
trace as an artifact).  ``repro trace list`` / ``repro trace show``
are the reading side.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from ..errors import ConfigurationError

__all__ = [
    "TRACE_DIR_ENV",
    "TraceEntry",
    "TraceWriter",
    "active",
    "default_trace_dir",
    "emit",
    "find_trace",
    "list_traces",
    "read_trace",
    "run_fingerprint",
    "span",
    "trace_run",
]

#: Environment override for where trace files land.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"


def default_trace_dir() -> Path:
    """``$REPRO_TRACE_DIR`` when set, else ``~/.cache/repro/traces``."""
    env = os.environ.get(TRACE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "traces"


def _coerce(value: Any) -> Any:
    """JSON-safe view of an event field via the fingerprint canonicalizer.

    Lazy import: ``repro.artifacts`` pulls in the engine stack, which
    imports :mod:`repro.obs.metrics` — a module-level import here would
    cycle.
    """
    from ..artifacts.fingerprint import FingerprintError, canonical

    try:
        return canonical(value)
    except FingerprintError:
        return repr(value)


def run_fingerprint(key: Any) -> str:
    """The digest that names ``key``'s trace file.

    A :class:`~repro.artifacts.ledger.RunKey` maps to exactly its
    ledger *result* fingerprint — the trace↔provenance join.  Anything
    else (a label string, a config dict) is canonicalized under a
    ``trace`` kind of its own, so ad-hoc runs still get stable names.
    """
    from ..artifacts.fingerprint import canonical, fingerprint
    from ..artifacts.ledger import RunKey, result_fingerprint

    if isinstance(key, RunKey):
        return result_fingerprint(key)
    return fingerprint({"kind": "trace", "key": canonical(key)})


class TraceWriter:
    """Thread-safe JSON-lines event sink for one run.

    Events are appended under a lock with a monotonically increasing
    ``seq`` and ``elapsed_s`` since the writer was opened, so
    interleaved emitters (executor threads, request handlers) produce a
    totally ordered file.
    """

    def __init__(self, path: str | Path, *, run: str = ""):
        self.path = Path(path)
        self.run = run
        self._lock = threading.Lock()
        self._seq = 0
        self._start = time.perf_counter()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("", encoding="utf-8")  # one file per run

    def emit(self, event: str, **fields: Any) -> None:
        payload: dict[str, Any] = {"event": event}
        for name, value in fields.items():
            payload[name] = _coerce(value)
        with self._lock:
            payload["seq"] = self._seq
            payload["elapsed_s"] = round(time.perf_counter() - self._start, 9)
            self._seq += 1
            line = json.dumps(payload, sort_keys=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")


#: The trace active in this context (None = tracing off; emit/span no-op).
_ACTIVE: contextvars.ContextVar[TraceWriter | None] = contextvars.ContextVar(
    "repro_trace", default=None
)


def active() -> TraceWriter | None:
    """The trace writer bound to the current context, if any."""
    return _ACTIVE.get()


def emit(event: str, **fields: Any) -> None:
    """Record one event on the active trace; no-op when tracing is off."""
    writer = _ACTIVE.get()
    if writer is not None:
        writer.emit(event, **fields)


@contextmanager
def span(name: str, **fields: Any) -> Iterator[TraceWriter | None]:
    """A timed section: ``span_start`` / ``span_end`` around the body.

    Without an active trace the body runs untouched (and receives
    ``None``), so call sites never branch on whether tracing is on.
    """
    writer = _ACTIVE.get()
    if writer is None:
        yield None
        return
    start = time.perf_counter()
    writer.emit("span_start", span=name, **fields)
    ok = True
    try:
        yield writer
    except BaseException:
        ok = False
        raise
    finally:
        writer.emit(
            "span_end",
            span=name,
            ok=ok,
            duration_s=round(time.perf_counter() - start, 9),
        )


@contextmanager
def trace_run(
    key: Any,
    directory: str | Path | None = None,
    meta: dict[str, Any] | None = None,
) -> Iterator[TraceWriter]:
    """Open a trace for ``key`` and bind it as the active trace.

    The file is ``<directory>/<run_fingerprint(key)>.jsonl``; the body
    is bracketed by ``run_start`` / ``run_end`` events, the latter
    carrying ``ok=False`` when the body raised (the exception still
    propagates).
    """
    digest = run_fingerprint(key)
    root = Path(directory) if directory is not None else default_trace_dir()
    writer = TraceWriter(root / f"{digest}.jsonl", run=digest)
    writer.emit("run_start", run=digest, meta=dict(meta or {}))
    token = _ACTIVE.set(writer)
    ok = True
    try:
        yield writer
    except BaseException:
        ok = False
        raise
    finally:
        _ACTIVE.reset(token)
        writer.emit("run_end", run=digest, ok=ok)


# -- reading ---------------------------------------------------------------


@dataclass(frozen=True)
class TraceEntry:
    """Metadata of one stored trace (for ``repro trace list``)."""

    fingerprint: str
    path: Path
    events: int
    size_bytes: int
    modified_at: float


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Every event of one trace file, in ``seq`` order."""
    events: list[dict[str, Any]] = []
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"corrupt trace line in {path}: {line[:80]!r}"
                ) from exc
            events.append(payload)
    events.sort(key=lambda event: event.get("seq", 0))
    return events


def list_traces(directory: str | Path | None = None) -> list[TraceEntry]:
    """Stored traces, newest first."""
    root = Path(directory) if directory is not None else default_trace_dir()
    if not root.is_dir():
        return []
    entries = []
    for path in root.glob("*.jsonl"):
        try:
            stat = path.stat()
            with path.open(encoding="utf-8") as handle:
                events = sum(1 for line in handle if line.strip())
        except OSError:
            continue
        entries.append(
            TraceEntry(
                fingerprint=path.stem,
                path=path,
                events=events,
                size_bytes=stat.st_size,
                modified_at=stat.st_mtime,
            )
        )
    entries.sort(key=lambda entry: entry.modified_at, reverse=True)
    return entries


def find_trace(prefix: str, directory: str | Path | None = None) -> Path:
    """The unique stored trace whose fingerprint starts with ``prefix``."""
    prefix = prefix.strip()
    if not prefix:
        raise ConfigurationError("empty trace fingerprint prefix")
    root = Path(directory) if directory is not None else default_trace_dir()
    matches = sorted(root.glob(f"{prefix}*.jsonl")) if root.is_dir() else []
    if not matches:
        raise ConfigurationError(
            f"no trace matches {prefix!r} under {root}"
        )
    if len(matches) > 1:
        shown = ", ".join(p.stem[:12] for p in matches[:5])
        raise ConfigurationError(
            f"trace prefix {prefix!r} is ambiguous ({len(matches)} matches: "
            f"{shown}...)"
        )
    return matches[0]
