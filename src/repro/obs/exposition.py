"""Prometheus text exposition (format version 0.0.4) of a registry.

:func:`render_prometheus` serializes a
:class:`~repro.obs.metrics.MetricsRegistry` snapshot into the plain
text format Prometheus scrapes — the body the streaming service's
``/metrics`` route returns and ``repro metrics`` prints.

Rules implemented (pinned by ``tests/unit/test_obs_metrics.py``):

- ``# HELP`` escapes backslash and newline; label values additionally
  escape double quotes;
- label sets render in sorted label-name order, so output is
  deterministic;
- histograms expose *cumulative* ``_bucket`` series with ``le`` upper
  bounds, a ``+Inf`` bucket equal to ``_count``, plus ``_sum`` and
  ``_count``;
- values render integers without a decimal point and floats via
  ``repr`` (shortest round-trip form).
"""

from __future__ import annotations

import math

from .metrics import Histogram, MetricsRegistry

__all__ = ["CONTENT_TYPE", "render_prometheus"]

#: The scrape Content-Type for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(k, labels[k]) for k in sorted(labels)] + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"' for name, value in pairs
    )
    return "{" + body + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry's current state as Prometheus exposition text."""
    lines: list[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key in sorted(family.series):
            instrument = family.series[key]
            if isinstance(instrument, Histogram):
                counts, total, count = instrument.snapshot()
                cumulative = 0
                for bound, bucket_count in zip(instrument.bounds, counts):
                    cumulative += bucket_count
                    labels = _labels_text(
                        instrument.labels, (("le", _format_value(bound)),)
                    )
                    lines.append(
                        f"{family.name}_bucket{labels} {cumulative}"
                    )
                labels = _labels_text(instrument.labels, (("le", "+Inf"),))
                lines.append(f"{family.name}_bucket{labels} {count}")
                plain = _labels_text(instrument.labels)
                lines.append(f"{family.name}_sum{plain} {_format_value(total)}")
                lines.append(f"{family.name}_count{plain} {count}")
            else:
                labels = _labels_text(instrument.labels)
                lines.append(
                    f"{family.name}{labels} {_format_value(instrument.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
