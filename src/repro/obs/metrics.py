"""Process-wide instrumentation core: counters, gauges, histograms, timers.

Design contract (DESIGN.md §13): instrumentation must cost ~nothing
when it is off.  The single :class:`MetricsRegistry` is **disabled by
default**; while disabled, every instrument getter returns the shared
:data:`NULL` stub whose methods are no-ops, so a call site binds its
instruments once per operation (per run, per request — never per hot
loop step) and the hot path pays one attribute call on a no-op.
Toggling the registry affects the *next* operation to bind, which is
what lets the property suite pin instrumented runs bit-identical to
uninstrumented ones: instruments only ever observe values, they never
feed back into the computation.

Instruments are named series: a *family* is ``(name, kind, help, label
names)`` and each distinct label-value assignment is one series, so
``registry.counter("http_requests_total", labels={"route": "/health"})``
and the same name with ``route="/campaigns"`` are two independently
incremented values under one family — exactly the Prometheus data
model :func:`repro.obs.exposition.render_prometheus` exports.

Every instrument is thread-safe (one lock per series; the streaming
service increments from request threads), and the registry itself is
safe to call concurrently.  ``REPRO_METRICS=1`` in the environment
enables the process registry at first use — how the CI smoke jobs and
one-off CLI runs switch telemetry on without code changes.
"""

from __future__ import annotations

import os
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "NULL",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "enabled",
    "get_registry",
    "set_registry",
]

#: Default histogram buckets for durations in seconds — spans the
#: microsecond kernel phases through multi-second full experiments.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default buckets for generic value histograms (posterior deltas,
#: utilizations, ...): log-ish coverage of (0, 1] plus a few above.
DEFAULT_VALUE_BUCKETS = (
    1e-9, 1e-6, 1e-4, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 10.0, 100.0,
)


class _Instrument:
    """Shared identity of one series: name, static labels, a lock."""

    kind = "untyped"

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()


class Counter(_Instrument):
    """A monotonically increasing value (Prometheus ``counter``)."""

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str]):
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """A value that can go up and down (Prometheus ``gauge``)."""

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str]):
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Instrument):
    """Fixed-bucket distribution of observed values.

    Buckets are upper bounds, fixed at family registration; counts are
    stored per-bucket (non-cumulative) and cumulated only at export
    time, so ``observe`` is one bisect + two adds under the lock.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        buckets: tuple[float, ...] = DEFAULT_VALUE_BUCKETS,
    ):
        super().__init__(name, labels)
        bounds = tuple(sorted(set(float(b) for b in buckets)))
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs >= 1 bucket")
        self.bounds = bounds
        # counts[i] = observations in (bounds[i-1], bounds[i]];
        # counts[-1] is the +Inf overflow bucket.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value

    def time(self) -> "Timer":
        """A context manager observing its elapsed seconds here."""
        return Timer(self)

    def snapshot(self) -> tuple[tuple[int, ...], float, int]:
        """``(per-bucket counts, sum, total count)`` — one consistent read."""
        with self._lock:
            counts = tuple(self._counts)
            return counts, self._sum, sum(counts)

    @property
    def count(self) -> int:
        return self.snapshot()[2]

    @property
    def total(self) -> float:
        return self.snapshot()[1]


class Timer:
    """Context manager that feeds elapsed seconds into a histogram."""

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class _NullInstrument:
    """The disabled-registry stub: every instrument API, all no-ops.

    One shared instance stands in for counters, gauges, histograms and
    timers alike, so a call site never branches on whether telemetry is
    on — it calls the same methods either way.
    """

    kind = "null"
    name = ""
    labels: dict[str, str] = {}
    bounds: tuple[float, ...] = ()
    value = 0.0
    count = 0
    total = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NullInstrument":
        return self

    def snapshot(self):
        return (), 0.0, 0

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def __bool__(self) -> bool:
        # `if reg.counter(...)` reads as "is telemetry live here".
        return False


#: The process-wide no-op instrument.
NULL = _NullInstrument()


@dataclass
class _Family:
    """One named metric family: kind + help + its labelled series."""

    name: str
    kind: str
    help: str
    label_names: tuple[str, ...]
    buckets: tuple[float, ...] | None
    series: dict[tuple[str, ...], _Instrument]


class MetricsRegistry:
    """Thread-safe registry of named instrument families.

    ``enabled=False`` (the default) makes every getter return
    :data:`NULL`; nothing is registered and nothing is recorded.  The
    process-wide instance lives behind :func:`get_registry`.
    """

    def __init__(self, enabled: bool = False):
        self._enabled = enabled
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- switching -------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop every family (test isolation; enabled state unchanged)."""
        with self._lock:
            self._families.clear()

    # -- instrument getters ----------------------------------------------

    def counter(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Counter | _NullInstrument:
        return self._series(name, "counter", help, labels, None)

    def gauge(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Gauge | _NullInstrument:
        return self._series(name, "gauge", help, labels, None)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_VALUE_BUCKETS,
    ) -> Histogram | _NullInstrument:
        if not buckets:
            raise ConfigurationError(f"histogram {name!r} needs >= 1 bucket")
        return self._series(name, "histogram", help, labels, tuple(buckets))

    def timer(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Histogram | _NullInstrument:
        """A histogram pre-bucketed for durations; use ``.time()``."""
        return self._series(
            name, "histogram", help, labels, DEFAULT_TIME_BUCKETS
        )

    def _series(
        self,
        name: str,
        kind: str,
        help: str,
        labels: dict[str, str] | None,
        buckets: tuple[float, ...] | None,
    ):
        if not self._enabled:
            return NULL
        labels = {k: str(v) for k, v in (labels or {}).items()}
        label_names = tuple(sorted(labels))
        key = tuple(labels[k] for k in label_names)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(
                    name=name,
                    kind=kind,
                    help=help,
                    label_names=label_names,
                    buckets=buckets,
                    series={},
                )
                self._families[name] = family
            elif family.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"requested {kind}"
                )
            elif family.label_names != label_names:
                raise ConfigurationError(
                    f"metric {name!r} registered with labels "
                    f"{list(family.label_names)}, requested {list(label_names)}"
                )
            instrument = family.series.get(key)
            if instrument is None:
                if kind == "counter":
                    instrument = Counter(name, labels)
                elif kind == "gauge":
                    instrument = Gauge(name, labels)
                else:
                    instrument = Histogram(
                        name, labels, family.buckets or DEFAULT_VALUE_BUCKETS
                    )
                family.series[key] = instrument
        return instrument

    def drop_labels(self, label: str, value: str) -> int:
        """Drop every series whose ``label`` equals ``value``; return count.

        Per-entity labels (``campaign=...``) leak series when entities
        are evicted: a long-lived server would export counters for
        campaigns that no longer exist and its label cardinality would
        grow without bound.  Callers retiring an entity drop its series
        here; families themselves stay registered (an empty family
        exports nothing).
        """
        value = str(value)
        dropped = 0
        with self._lock:
            for family in self._families.values():
                if label not in family.label_names:
                    continue
                idx = family.label_names.index(label)
                doomed = [
                    key for key in family.series if key[idx] == value
                ]
                for key in doomed:
                    del family.series[key]
                dropped += len(doomed)
        return dropped

    # -- reading ---------------------------------------------------------

    def collect(self) -> list[_Family]:
        """Families sorted by name (series maps are live references)."""
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def as_dict(self) -> dict:
        """JSON-safe snapshot of every series (the ``--json`` CLI view)."""
        payload: dict[str, dict] = {}
        for family in self.collect():
            series = []
            for instrument in family.series.values():
                entry: dict = {"labels": dict(instrument.labels)}
                if isinstance(instrument, Histogram):
                    counts, total, count = instrument.snapshot()
                    entry.update(
                        buckets=list(instrument.bounds),
                        counts=list(counts),
                        sum=total,
                        count=count,
                    )
                else:
                    entry["value"] = instrument.value
                series.append(entry)
            payload[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return payload


_REGISTRY: MetricsRegistry | None = None
_REGISTRY_LOCK = threading.Lock()


def _env_enabled() -> bool:
    return os.environ.get("REPRO_METRICS", "").strip().lower() not in (
        "", "0", "false", "off",
    )


def get_registry() -> MetricsRegistry:
    """The process-wide registry (created on first use).

    ``REPRO_METRICS=1`` in the environment makes it start enabled.
    """
    global _REGISTRY
    registry = _REGISTRY
    if registry is None:
        with _REGISTRY_LOCK:
            registry = _REGISTRY
            if registry is None:
                registry = MetricsRegistry(enabled=_env_enabled())
                _REGISTRY = registry
    return registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        previous = _REGISTRY
        if previous is None:
            previous = MetricsRegistry(enabled=_env_enabled())
        _REGISTRY = registry
    return previous


def enabled() -> bool:
    """Whether the process-wide registry is currently recording."""
    return get_registry().enabled
