"""Adversary sweep — detection F1 and precision vs. adversary fraction.

The paper evaluates DATE under one adversary shape (independent
copiers).  This extension sweeps the *fraction* of adversarial workers
for each strategy family in the scenario lab — transitive copy chains,
hidden-leader collusion rings, sybil amplification, and lazy spammers —
and reports either the copier-detection F1 (how much of the copy
structure the dependence posteriors recover) or the truth-discovery
precision (how much damage the adversaries do despite detection).

Expected shapes: detection F1 stays high for chains and sybils (their
pairwise copy signal is direct) and degrades for collusion rings
(members only correlate through a leader that is absent from the claim
graph).  The lazy family plants *no* copy structure, so its F1 series
measures false-flagging instead: each instance scores 1 when the
detector correctly flags nobody and 0 when any pair crosses the
threshold, making the series the fraction of hallucination-free
instances.  Truth precision degrades gracefully with the adversary
fraction, fastest for collusion rings.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..artifacts import RunLedger
from ..datasets.qatar_living import qatar_world_config
from ..scenarios.registry import Scenario
from ..scenarios.runner import run_scenario
from ..scenarios.strategies import (
    ChainCopiers,
    CollusionRing,
    LazyWorkers,
    Strategy,
    SybilAmplification,
)
from ..simulation.sweep import ExperimentResult, sweep_series
from .common import ScalePreset, resolve_scale

__all__ = ["STRATEGY_FAMILIES", "run_adversary_f1", "run_adversary_precision"]

_DEFAULT_FRACTIONS = (0.05, 0.1, 0.2, 0.3)
_CHAIN_LENGTH = 3
_CLONES_PER_PROFILE = 3


def _chain_family(n_adversaries: int) -> tuple[Strategy, ...]:
    # Each chain of length L contributes L copy-structure members (the
    # root counts, mirroring the sybil origin), so the budget buys
    # ~n/L chains.
    n_chains = max(1, round(n_adversaries / _CHAIN_LENGTH))
    return (ChainCopiers(n_chains=n_chains, chain_length=_CHAIN_LENGTH),)


def _ring_family(n_adversaries: int) -> tuple[Strategy, ...]:
    return (CollusionRing(ring_size=max(2, n_adversaries)),)


def _sybil_family(n_adversaries: int) -> tuple[Strategy, ...]:
    # One profile plus its clones counts as clones+1 adversarial ids.
    n_profiles = max(1, round(n_adversaries / (_CLONES_PER_PROFILE + 1)))
    return (
        SybilAmplification(
            n_profiles=n_profiles, clones_per_profile=_CLONES_PER_PROFILE
        ),
    )


def _lazy_family(n_adversaries: int) -> tuple[Strategy, ...]:
    return (LazyWorkers(n_workers=max(1, n_adversaries)),)


#: name -> strategy-stack builder taking the adversary head-count.
STRATEGY_FAMILIES = {
    "chain": _chain_family,
    "ring": _ring_family,
    "sybil": _sybil_family,
    "lazy": _lazy_family,
}


def _run(
    experiment_id: str,
    metric: str,
    y_label: str,
    paper_expectation: str,
    scale: str | ScalePreset,
    instances: int | None,
    base_seed: int,
    fraction_grid: Sequence[float],
    parallel: int | None,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    preset = resolve_scale(scale)
    world = qatar_world_config(
        preset.n_tasks, preset.n_workers, preset.target_claims
    )
    n_instances = instances if instances is not None else preset.instances

    def point(fraction: float) -> dict[str, float]:
        budget = max(1, round(fraction * preset.n_workers))
        row: dict[str, float] = {}
        for family, build in STRATEGY_FAMILIES.items():
            scenario = Scenario(
                name=f"adv-{family}",
                description=f"{family} family at adversary fraction {fraction:g}",
                strategies=build(budget),
                world=world,
                instances=n_instances,
                base_seed=base_seed,
            )
            # The ledger banks at *instance* granularity inside
            # run_scenario; both adversary experiments then share rows
            # (the scenario fingerprint ignores the metric picked out).
            result = run_scenario(scenario, parallel=parallel, ledger=ledger)
            row[family] = result.mean(metric)
        return row

    return sweep_series(
        experiment_id,
        f"{y_label} versus adversary fraction per strategy family",
        "adversary fraction",
        y_label,
        tuple(fraction_grid),
        point,
        meta={
            "paper_expectation": paper_expectation,
            "instances": n_instances,
            "base_seed": base_seed,
            "scale": preset.name,
            "metric": metric,
        },
    )


def run_adversary_f1(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    fraction_grid: Sequence[float] = _DEFAULT_FRACTIONS,
    parallel: int | None = 1,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Copier-detection F1 vs. adversary fraction per strategy family."""
    return _run(
        "adv-f1",
        "detection_f1",
        "detection F1",
        "F1 high for chains/sybils (direct pairwise copy signal), lower "
        "for hidden-leader rings; the lazy series has no copy structure "
        "and reports the fraction of false-flag-free instances",
        scale,
        instances,
        base_seed,
        fraction_grid,
        parallel,
        ledger=ledger,
    )


def run_adversary_precision(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    fraction_grid: Sequence[float] = _DEFAULT_FRACTIONS,
    parallel: int | None = 1,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """DATE precision vs. adversary fraction per strategy family."""
    return _run(
        "adv-precision",
        "date_precision",
        "precision",
        "precision degrades gracefully with the adversary fraction; "
        "hidden-leader rings hurt most, sybil clones least",
        scale,
        instances,
        base_seed,
        fraction_grid,
        parallel,
        ledger=ledger,
    )
