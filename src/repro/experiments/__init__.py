"""One runner per paper table/figure, plus the experiment registry.

Every runner returns an :class:`~repro.simulation.sweep.ExperimentResult`
whose series reproduce the corresponding paper plot.  Runners accept a
``scale`` preset (``"quick"`` for CI-sized runs, ``"paper"`` for the
full Sec. VII-A setup) plus explicit overrides; the registry maps
experiment ids (``fig3a`` ... ``fig8b``, ``table1``, ``approx``) to
runners for the CLI and the benchmark harness.
"""

from .common import (
    PAPER_SCALE,
    QUICK_SCALE,
    ScalePreset,
    instance_run_key,
    result_run_key,
)
from .registry import Experiment, get_experiment, list_experiments, run_experiment

__all__ = [
    "Experiment",
    "PAPER_SCALE",
    "QUICK_SCALE",
    "ScalePreset",
    "get_experiment",
    "instance_run_key",
    "list_experiments",
    "result_run_key",
    "run_experiment",
]
