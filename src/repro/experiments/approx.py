"""Approximation-ratio study (extension beyond the paper's evaluation).

Theorem 3 bounds the reverse auction's social cost at ``2 e H_Ω`` times
the optimum.  The paper proves the bound but never measures it; this
experiment does, on instances small enough for the exact ILP
(:func:`repro.auction.optimal.solve_optimal`):

- x axis: instance index (each a fresh seeded world);
- series: greedy (RA) social cost, exact optimal social cost, and the
  realized ratio;
- meta: the theoretical bound per instance (typically orders of
  magnitude above the realized ratio — the greedy is far better in
  practice than in the worst case).
"""

from __future__ import annotations

from ..artifacts import RunLedger
from ..auction.optimal import solve_optimal
from ..auction.properties import approximation_bound
from ..auction.reverse_auction import ReverseAuction
from ..auction.soac import SOACInstance
from ..core.date import DATE
from ..simulation.config import ExperimentConfig
from ..simulation.sweep import ExperimentResult
from .common import result_run_key
from .fig67 import REQUIREMENT_CAP

__all__ = ["run_approx"]


def run_approx(
    scale: str = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    n_tasks: int = 24,
    n_workers: int = 24,
    n_copiers: int = 6,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Measure greedy-vs-optimal social cost on small seeded instances.

    The ``scale`` argument is accepted for registry uniformity but the
    world is always ILP-sized (its dimensions are explicit parameters).
    """
    config = ExperimentConfig(
        n_tasks=n_tasks,
        n_workers=n_workers,
        n_copiers=n_copiers,
        target_claims=n_tasks * n_workers // 3,
        instances=instances or 8,
        base_seed=base_seed,
    )
    key = result_run_key("approx", config, requirement_cap=REQUIREMENT_CAP)
    if ledger is not None:
        banked = ledger.get_result(key)
        if banked is not None:
            return banked
    auction = ReverseAuction()
    greedy_costs: list[float] = []
    optimal_costs: list[float] = []
    ratios: list[float] = []
    bounds: list[float] = []
    for k in range(config.instances):
        dataset = config.dataset_for(k)
        result = DATE(config.date).run(dataset)
        instance = SOACInstance.from_truth_discovery(dataset, result)
        instance = instance.with_capped_requirements(REQUIREMENT_CAP)
        greedy = auction.run(instance)
        optimal = solve_optimal(instance)
        greedy_costs.append(greedy.social_cost)
        optimal_costs.append(optimal.social_cost)
        ratios.append(
            greedy.social_cost / optimal.social_cost
            if optimal.social_cost > 0
            else 1.0
        )
        bounds.append(approximation_bound(instance))
    result = ExperimentResult(
        experiment_id="approx",
        title="Greedy reverse auction versus exact ILP optimum",
        x_label="instance",
        y_label="social cost",
        x_values=tuple(range(config.instances)),
        series={
            "RA": tuple(greedy_costs),
            "OPT": tuple(optimal_costs),
            "ratio": tuple(ratios),
        },
        meta={
            "paper_expectation": (
                "Theorem 3 guarantees ratio <= 2 e H_Omega; empirically "
                "the greedy should sit near the optimum"
            ),
            "theoretical_bounds": bounds,
            "max_ratio": max(ratios),
            "mean_ratio": sum(ratios) / len(ratios),
            "base_seed": base_seed,
        },
    )
    if ledger is not None:
        ledger.put_result(key, result)
    return result
