"""Post-auction truth quality (extension).

The SOAC constraint (Eq. 5) is motivated by the premise that covering
each task's accuracy requirement suffices to discover its truth with
the required confidence.  The paper never tests that premise; this
experiment does: re-run DATE on *only the winners' claims* and compare
precision against using the whole crowd.

Series per requirement-scale point:

- ``all workers`` — DATE precision with every claim;
- ``winners only`` — DATE precision restricted to the auction's
  winner set;
- ``winner fraction`` — |S| / n, how much of the crowd was hired.

Scaling the requirements up buys more winners and should close the
precision gap — the knob the platform actually controls.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..artifacts import RunLedger
from ..auction.config import AuctionConfig
from ..auction.reverse_auction import ReverseAuction
from ..auction.soac import SOACInstance
from ..core.date import DATE
from ..core.indexing import DatasetIndex
from ..simulation.sweep import ExperimentResult, sweep_series
from .common import ScalePreset, base_config, result_run_key
from .fig67 import REQUIREMENT_CAP

__all__ = ["run_winners_quality"]


def run_winners_quality(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    requirement_scales: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    auction_config: AuctionConfig | None = None,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Measure truth-discovery precision using only auction winners.

    ``requirement_scales`` multiply every task's (capped) accuracy
    requirement; 1.0 is the paper's setting.
    """
    config = base_config(scale, instances=instances, base_seed=base_seed)
    requirement_scales = tuple(requirement_scales)
    key = result_run_key(
        "winners",
        config,
        requirement_scales=requirement_scales,
        requirement_cap=REQUIREMENT_CAP,
        auction=auction_config or AuctionConfig(),
    )
    if ledger is not None:
        banked = ledger.get_result(key)
        if banked is not None:
            return banked
    datasets = config.datasets()
    auction = ReverseAuction(auction_config)

    prepared = []
    for dataset in datasets:
        index = DatasetIndex(dataset)
        result = DATE(config.date).run(dataset, index=index)
        instance = SOACInstance.from_truth_discovery(dataset, result)
        instance = instance.with_capped_requirements(REQUIREMENT_CAP)
        prepared.append((dataset, result, instance))

    def point(scale_factor: float) -> dict[str, float]:
        all_total, winners_total, fraction_total = 0.0, 0.0, 0.0
        for dataset, full_result, instance in prepared:
            scaled = SOACInstance(
                worker_ids=instance.worker_ids,
                task_ids=instance.task_ids,
                requirements=instance.requirements * scale_factor,
                accuracy=instance.accuracy,
                bids=instance.bids,
                costs=instance.costs,
                task_values=instance.task_values,
            )
            outcome = auction.run(scaled)
            winner_ids = set(outcome.winner_ids)
            winner_view = dataset.subset(worker_ids=winner_ids)
            winner_result = DATE(config.date).run(winner_view)
            all_total += full_result.precision()
            winners_total += winner_result.precision(dataset.truths)
            fraction_total += len(winner_ids) / max(instance.n_workers, 1)
        count = len(prepared)
        return {
            "all workers": all_total / count,
            "winners only": winners_total / count,
            "winner fraction": fraction_total / count,
        }

    result = sweep_series(
        "winners",
        "Truth-discovery precision using only the auction's winners",
        "requirement scale",
        "precision / fraction",
        requirement_scales,
        point,
        meta={
            "paper_expectation": (
                "extension: not in the paper; tests the SOAC premise that "
                "covering the accuracy requirement preserves truth quality "
                "— higher requirements buy more winners and close the gap"
            ),
            "requirement_cap": REQUIREMENT_CAP,
            "instances": config.instances,
            "base_seed": base_seed,
        },
    )
    if ledger is not None:
        ledger.put_result(key, result)
    return result
