"""Fig. 8 — truthfulness of IMC2: utility versus declared bid.

The paper picks one winner (ID 26, true cost 3, truthful utility 5)
and one loser (ID 58, true cost 8, truthful utility 0), sweeps their
declared bids away from their true costs, and shows neither can gain:
the winner's utility is maximized at the truthful bid, the loser's
never exceeds 0.

Our datasets are synthetic, so the runners pick the analogous workers
from the realized auction: a mid-payment winner and a useful loser.
The chosen ids, true costs and truthful utilities are recorded in
``meta``.
"""

from __future__ import annotations

import numpy as np

from ..artifacts import RunLedger, cached_result
from ..auction.config import AuctionConfig
from ..auction.properties import bid_utility_curve
from ..auction.reverse_auction import AuctionOutcome, ReverseAuction
from ..auction.soac import SOACInstance
from ..core.date import DATE
from ..simulation.sweep import ExperimentResult
from .common import ScalePreset, base_config, result_run_key
from .fig67 import REQUIREMENT_CAP

__all__ = ["run_fig8a", "run_fig8b"]


def _prepare_instance(
    scale: str | ScalePreset, base_seed: int, cap: float = REQUIREMENT_CAP
) -> SOACInstance:
    """One full pipeline run: dataset -> DATE -> capped SOAC instance."""
    config = base_config(scale, instances=1, base_seed=base_seed)
    dataset = config.dataset_for(0)
    result = DATE(config.date).run(dataset)
    instance = SOACInstance.from_truth_discovery(dataset, result)
    return instance.with_capped_requirements(cap)


def _competitive_instance(
    scale: str | ScalePreset,
    base_seed: int,
    auction_config: AuctionConfig | None = None,
) -> tuple[SOACInstance, "AuctionOutcome", ReverseAuction]:
    """An instance whose auction has at least one replaceable winner.

    Truthfulness (Lemma 3) presumes every winner has a replacement set;
    a *monopolist* winner (no feasible cover without it) has an
    unbounded critical value and is paid its bid, which is trivially
    manipulable.  Small capped instances can make every winner a
    monopolist, so we lower the requirement cap — increasing slack and
    competition — until a non-monopolist winner exists.
    """
    auction = ReverseAuction(auction_config)
    for cap in (REQUIREMENT_CAP, 0.6, 0.4, 0.25):
        instance = _prepare_instance(scale, base_seed, cap=cap)
        outcome = auction.run(instance)
        replaceable = [
            w for w in outcome.winner_ids if w not in outcome.monopolists
        ]
        if replaceable:
            return instance, outcome, auction
    raise RuntimeError(
        "no competitive auction configuration found; use a larger scale"
    )


def _fig8_key(
    experiment_id: str,
    scale: str | ScalePreset,
    base_seed: int,
    points: int,
    auction_config: AuctionConfig | None,
):
    """Declared fingerprint inputs of the fig8 runners.

    The resolved single-instance config captures scale and seed; the
    requirement-cap fallback ladder of :func:`_competitive_instance` is
    deterministic in those inputs, so it needs no extra declaration
    beyond the cap constant itself.
    """
    config = base_config(scale, instances=1, base_seed=base_seed)
    return result_run_key(
        experiment_id,
        config,
        points=points,
        requirement_cap=REQUIREMENT_CAP,
        auction=auction_config or AuctionConfig(),
    )


def _bid_grid(true_cost: float, points: int) -> tuple[float, ...]:
    """A sweep around the true cost, always containing the cost itself."""
    grid = set(float(b) for b in np.linspace(0.25 * true_cost, 2.5 * true_cost, points))
    grid.add(float(true_cost))
    return tuple(sorted(grid))


def _curve_result(
    experiment_id: str,
    title: str,
    instance: SOACInstance,
    worker_id: str,
    points: int,
    paper_expectation: str,
    base_seed: int,
    auction: ReverseAuction,
) -> ExperimentResult:
    worker_index = instance.worker_ids.index(worker_id)
    true_cost = float(instance.costs[worker_index])
    grid = _bid_grid(true_cost, points)
    curve = bid_utility_curve(instance, worker_id, grid, auction=auction)
    truthful = next(
        point for point in curve if abs(point.bid - true_cost) < 1e-9
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="declared bid",
        y_label="utility",
        x_values=tuple(point.bid for point in curve),
        series={
            "utility": tuple(point.utility for point in curve),
            "truthful utility": tuple(truthful.utility for _ in curve),
        },
        meta={
            "paper_expectation": paper_expectation,
            "worker_id": worker_id,
            "true_cost": true_cost,
            "truthful_utility": truthful.utility,
            "truthful_payment": truthful.payment,
            "base_seed": base_seed,
        },
    )


def run_fig8a(
    scale: str | ScalePreset = "quick",
    *,
    base_seed: int = 42,
    points: int = 15,
    auction_config: AuctionConfig | None = None,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Utility vs. declared bid for a *winner* (paper's worker 26).

    Picks the replaceable (non-monopolist) winner with the median
    payment so the curve shows both regimes: below the critical value
    (wins, payment unchanged) and above it (loses, utility 0).
    """

    def build() -> ExperimentResult:
        instance, outcome, auction = _competitive_instance(
            scale, base_seed, auction_config
        )
        ranked = sorted(
            (w for w in outcome.winner_ids if w not in outcome.monopolists),
            key=outcome.payments.__getitem__,
        )
        subject = ranked[len(ranked) // 2]
        return _curve_result(
            "fig8a",
            "Truthfulness: utility of a winner versus its declared bid",
            instance,
            subject,
            points,
            "utility is maximal and constant at/below the truthful bid, "
            "drops to 0 once the bid exceeds the critical value "
            "(paper: winner 26 keeps utility 5 when truthful)",
            base_seed,
            auction,
        )

    return cached_result(ledger, _fig8_key("fig8a", scale, base_seed, points, auction_config), build)


def run_fig8b(
    scale: str | ScalePreset = "quick",
    *,
    base_seed: int = 42,
    points: int = 15,
    auction_config: AuctionConfig | None = None,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Utility vs. declared bid for a *loser* (paper's worker 58).

    Picks the non-winner with the highest total accuracy (a loser that
    could plausibly win by underbidding — which is exactly the
    manipulation that must not be profitable).
    """

    def build() -> ExperimentResult:
        instance, outcome, auction = _competitive_instance(
            scale, base_seed, auction_config
        )
        winners = set(outcome.winner_ids)
        losers = [w for w in instance.worker_ids if w not in winners]
        if not losers:
            raise RuntimeError("auction selected every worker; no loser to pick")
        accuracy_total = {
            worker_id: float(instance.accuracy[i].sum())
            for i, worker_id in enumerate(instance.worker_ids)
        }
        subject = max(losers, key=lambda w: (accuracy_total[w], w))
        return _curve_result(
            "fig8b",
            "Truthfulness: utility of a loser versus its declared bid",
            instance,
            subject,
            points,
            "utility never exceeds the truthful 0: underbidding below cost "
            "may win but yields negative utility (paper: loser 58 stays at "
            "non-negative utility only when truthful)",
            base_seed,
            auction,
        )

    return cached_result(ledger, _fig8_key("fig8b", scale, base_seed, points, auction_config), build)
