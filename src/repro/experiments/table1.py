"""Table 1 — the motivating researcher-affiliation example.

Five workers report the affiliations of five researchers.  Worker 1 is
fully correct; workers 4 and 5 copy worker 3 (who is wrong about
Dewitt, Carey, and Halevy), so naive majority voting elects the copied
wrong answers for those three tasks.  A copier-aware method should
recover all five truths.

The claim matrix transcribes Table 1 (the OCR'd "UWise"/"UWisc" split
is a typo in the extracted text; the original example — borrowed from
Dong et al. [15] — has workers 3-5 agreeing on "UWisc").  Domains are
padded with plausible distractor affiliations so ``num_j`` reflects a
realistic answer space rather than just the observed values.
"""

from __future__ import annotations

from ..artifacts import RunKey, RunLedger, cached_result
from ..baselines import EnumerateDependence, MajorityVote, NoCopier
from ..core.config import DateConfig
from ..core.date import DATE
from ..core.indexing import DatasetIndex
from ..simulation.executor import run_jobs
from ..simulation.sweep import ExperimentResult
from ..types import Dataset, Task, WorkerProfile

__all__ = ["build_affiliation_example", "run_table1", "TABLE1_TRUTHS"]

#: Ground truth of the example.
TABLE1_TRUTHS: dict[str, str] = {
    "Stonebraker": "MIT",
    "Dewitt": "MSR",
    "Bernstein": "MSR",
    "Carey": "UCI",
    "Halevy": "Google",
}

#: Distractor affiliations padding each task's domain to num_j = 5.
_DISTRACTORS = ("Stanford", "CMU", "Oracle")

#: Claims per worker, in task order (Stonebraker, Dewitt, Bernstein,
#: Carey, Halevy).  Worker 1 is correct everywhere; workers 4 and 5
#: copy worker 3.
_CLAIM_ROWS: dict[str, tuple[str, str, str, str, str]] = {
    "w1": ("MIT", "MSR", "MSR", "UCI", "Google"),
    "w2": ("Berkeley", "MSR", "MSR", "AT&T", "Google"),
    "w3": ("MIT", "UWisc", "MSR", "BEA", "UW"),
    "w4": ("MIT", "UWisc", "MSR", "BEA", "UW"),
    "w5": ("MS", "UWisc", "MSR", "BEA", "UW"),
}

_OBSERVED_PER_TASK: dict[str, tuple[str, ...]] = {
    "Stonebraker": ("MIT", "Berkeley", "MS"),
    "Dewitt": ("MSR", "UWisc"),
    "Bernstein": ("MSR",),
    "Carey": ("UCI", "AT&T", "BEA"),
    "Halevy": ("Google", "UW"),
}


def build_affiliation_example() -> Dataset:
    """The Table 1 dataset: 5 tasks, 5 workers, workers 4-5 copying 3."""
    tasks = []
    for name, truth in TABLE1_TRUTHS.items():
        observed = _OBSERVED_PER_TASK[name]
        padding = tuple(d for d in _DISTRACTORS if d not in observed)
        domain = tuple(dict.fromkeys((*observed, *padding)))
        tasks.append(
            Task(task_id=name, domain=domain, requirement=1.0, value=1.0, truth=truth)
        )
    workers = (
        WorkerProfile(worker_id="w1", cost=3.0, reliability=1.0),
        WorkerProfile(worker_id="w2", cost=4.0, reliability=0.6),
        WorkerProfile(worker_id="w3", cost=2.0, reliability=0.4),
        WorkerProfile(
            worker_id="w4",
            cost=2.5,
            reliability=0.4,
            is_copier=True,
            sources=("w3",),
            copy_prob=1.0,
        ),
        WorkerProfile(
            worker_id="w5",
            cost=2.0,
            reliability=0.4,
            is_copier=True,
            sources=("w3",),
            copy_prob=0.8,
        ),
    )
    claims = {
        (worker_id, task.task_id): values[j]
        for worker_id, values in _CLAIM_ROWS.items()
        for j, task in enumerate(tasks)
    }
    return Dataset(tasks=tuple(tasks), workers=workers, claims=claims)


def _algorithm_estimates(name: str, config: DateConfig) -> dict[str, str]:
    """Estimated truths of one competitor on the example (picklable)."""
    algorithms = {
        "MV": lambda: MajorityVote(),
        "NC": lambda: NoCopier(config),
        "DATE": lambda: DATE(config),
        "ED": lambda: EnumerateDependence(config),
    }
    dataset = build_affiliation_example()
    result = algorithms[name]().run(dataset, index=DatasetIndex(dataset))
    return dict(result.truths)


def run_table1(
    *,
    date_config: DateConfig | None = None,
    base_seed: int = 42,
    parallel: int | None = 1,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Reproduce the Table 1 story: MV fails on 3 tasks, DATE recovers.

    Series are per-task correctness indicators (1 = estimated truth
    matches ground truth); meta carries the estimated value strings for
    inspection.  ``base_seed`` is accepted for registry uniformity; the
    example is fully deterministic, so the ``parallel`` fan-out (one
    job per algorithm through the shared process pool) cannot change
    the result — it exists as differential-test coverage of the
    executor on a heterogeneous job list, not as an optimization (the
    5-task example runs in milliseconds either way).
    """
    # A near-1 assumed r suits wholesale copying (worker 4 copies 100%
    # of worker 3's data), a strong prior α gives the five-task evidence
    # enough leverage, and the total-dependence discount handles the
    # unidentifiable copy direction (copier and source submit identical
    # data); see DESIGN.md §4.
    config = date_config or DateConfig(
        copy_prob_r=0.9,
        prior_alpha=0.5,
        discount_mode="total",
    )

    def build() -> ExperimentResult:
        names = ("MV", "NC", "DATE", "ED")
        results = run_jobs(
            [(_algorithm_estimates, (name, config)) for name in names],
            parallel=parallel,
        )
        task_names = list(TABLE1_TRUTHS)
        series: dict[str, tuple[float, ...]] = {}
        estimates: dict[str, dict[str, str]] = {}
        for name, truths in zip(names, results):
            estimates[name] = truths
            series[name] = tuple(
                1.0 if truths.get(task) == TABLE1_TRUTHS[task] else 0.0
                for task in task_names
            )
        return ExperimentResult(
            experiment_id="table1",
            title="Table 1: researcher affiliations with two copiers of worker 3",
            x_label="task index",
            y_label="correct (1) / wrong (0)",
            x_values=tuple(range(len(task_names))),
            series=series,
            meta={
                "paper_expectation": (
                    "majority voting elects the copied wrong answers for "
                    "Dewitt, Carey and Halevy (2/5 correct); copier-aware "
                    "truth discovery recovers all five"
                ),
                "tasks": task_names,
                "truths": TABLE1_TRUTHS,
                "estimates": estimates,
            },
        )

    # The example is fully deterministic given the DateConfig — the
    # config alone is the declared fingerprint input (base_seed and
    # parallel are accepted for uniformity but never read).
    return cached_result(
        ledger, RunKey("table1", {"date": config}), build
    )
