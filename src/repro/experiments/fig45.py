"""Figs. 4 and 5 — precision and running time of the truth-discovery
algorithms versus the number of tasks and workers.

Paper findings (Sec. VII-B):

- Fig. 4a: precision declines slightly as tasks grow (later tasks have
  fewer answers); DATE beats MV and NC (avg +8.4% / +7.4%), ED edges
  DATE (+0.8%).
- Fig. 4b: precision rises with workers for every algorithm.
- Fig. 5: running time grows with both dimensions; ED is by far the
  slowest (DATE ≈ 42.6% of ED's time at n=120, m=300), MV the fastest.

The two figures share their sweeps, so each runner measures precision
and wall-clock in a single pass and slices out the requested metric.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..artifacts import RunLedger, cached_result
from ..core.indexing import DatasetIndex
from ..simulation.config import ExperimentConfig
from ..simulation.metrics import precision
from ..simulation.sweep import ExperimentResult, sweep_series
from ..simulation.timing import timed
from .common import (
    ScalePreset,
    base_config,
    resolve_scale,
    result_run_key,
    truth_algorithms,
)

__all__ = ["run_fig4a", "run_fig4b", "run_fig5a", "run_fig5b"]


def _default_task_grid(preset: ScalePreset) -> tuple[int, ...]:
    top = preset.n_tasks
    return tuple(int(round(top * f)) for f in (1 / 6, 1 / 3, 1 / 2, 2 / 3, 5 / 6, 1.0))


def _default_worker_grid(preset: ScalePreset) -> tuple[int, ...]:
    top = preset.n_workers
    return tuple(int(round(top * f)) for f in (1 / 6, 1 / 3, 1 / 2, 2 / 3, 5 / 6, 1.0))


def _measure(
    config: ExperimentConfig,
    *,
    vary: str,
    metric: str,
    include_ed: bool,
) -> dict[str, object]:
    """Run all algorithms over the sweep; returns series for one metric.

    Varying tasks/workers takes *prefixes* of each full-size instance
    (paper: "we select the tasks based on the index in the increasing
    order from the data set"), so a larger grid point sees a superset
    of the smaller one's data.
    """
    datasets = config.datasets()
    indexes = {}

    def subset(k: int, size: int):
        key = (k, size)
        if key not in indexes:
            full = datasets[k]
            if vary == "tasks":
                keep = [t.task_id for t in full.tasks[:size]]
                ds = full.subset(task_ids=keep)
            else:
                keep = [w.worker_id for w in full.workers[:size]]
                ds = full.subset(worker_ids=keep)
            indexes[key] = (ds, DatasetIndex(ds))
        return indexes[key]

    def point(size: float) -> dict[str, float]:
        size = int(size)
        sums: dict[str, float] = {}
        for k in range(len(datasets)):
            ds, index = subset(k, size)
            algorithms = truth_algorithms(config.date, include_ed=include_ed)
            for name, algorithm in algorithms.items():
                result, seconds = timed(algorithm.run, ds, index=index)
                value = precision(result, ds) if metric == "precision" else seconds
                sums[name] = sums.get(name, 0.0) + value
        return {name: total / len(datasets) for name, total in sums.items()}

    return {"point_fn": point, "datasets": datasets}


def _run(
    experiment_id: str,
    title: str,
    metric: str,
    vary: str,
    scale: str | ScalePreset,
    instances: int | None,
    base_seed: int,
    grid: Sequence[int] | None,
    include_ed: bool,
    paper_expectation: str,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    preset = resolve_scale(scale)
    config = base_config(preset, instances=instances, base_seed=base_seed)
    if grid is None:
        grid = (
            _default_task_grid(preset) if vary == "tasks" else _default_worker_grid(preset)
        )
    grid = tuple(grid)
    # A sweep point aggregates over *all* instances, so its ledger key
    # keeps the full config (instance count included) plus every knob
    # the point body reads.  Timing metrics never take a ledger —
    # caching a wall-clock measurement would replay stale hardware.
    key = (
        result_run_key(
            experiment_id,
            config,
            vary=vary,
            metric=metric,
            grid=grid,
            include_ed=include_ed,
        )
        if ledger is not None
        else None
    )

    def build() -> ExperimentResult:
        measured = _measure(
            config, vary=vary, metric=metric, include_ed=include_ed
        )
        return sweep_series(
            experiment_id,
            title,
            f"number of {vary}",
            metric if metric == "precision" else "seconds",
            grid,
            measured["point_fn"],
            meta={
                "paper_expectation": paper_expectation,
                "instances": config.instances,
                "base_seed": base_seed,
                "scale": preset.name,
            },
            ledger=ledger,
            key=key,
        )

    return cached_result(ledger, key, build)


def run_fig4a(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    task_grid: Sequence[int] | None = None,
    include_ed: bool = True,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Precision vs. number of tasks for MV / NC / DATE / ED."""
    return _run(
        "fig4a",
        "Precision versus number of tasks",
        "precision",
        "tasks",
        scale,
        instances,
        base_seed,
        task_grid,
        include_ed,
        "DATE > NC > MV (avg +8.4% over MV, +7.4% over NC); ED >= DATE "
        "(+0.8%); precision declines slightly as tasks grow",
        ledger=ledger,
    )


def run_fig4b(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    worker_grid: Sequence[int] | None = None,
    include_ed: bool = True,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Precision vs. number of workers for MV / NC / DATE / ED."""
    return _run(
        "fig4b",
        "Precision versus number of workers",
        "precision",
        "workers",
        scale,
        instances,
        base_seed,
        worker_grid,
        include_ed,
        "all algorithms gain precision with more workers; ordering "
        "ED >= DATE > NC > MV preserved",
        ledger=ledger,
    )


def run_fig5a(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    task_grid: Sequence[int] | None = None,
    include_ed: bool = True,
) -> ExperimentResult:
    """Running time vs. number of tasks for MV / NC / DATE / ED."""
    return _run(
        "fig5a",
        "Truth-discovery running time versus number of tasks",
        "runtime",
        "tasks",
        scale,
        instances,
        base_seed,
        task_grid,
        include_ed,
        "running time grows with tasks; ED slowest by a wide margin "
        "(DATE at 42.6% of ED's time at n=120, m=300), MV fastest",
    )


def run_fig5b(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    worker_grid: Sequence[int] | None = None,
    include_ed: bool = True,
) -> ExperimentResult:
    """Running time vs. number of workers for MV / NC / DATE / ED."""
    return _run(
        "fig5b",
        "Truth-discovery running time versus number of workers",
        "runtime",
        "workers",
        scale,
        instances,
        base_seed,
        worker_grid,
        include_ed,
        "running time grows with workers; ED slowest, MV fastest",
    )
