"""Fig. 3 — sensitivity of DATE's precision to ε, α (a) and r (b).

Paper findings (Sec. VII-B): precision fluctuates only slightly
(0.82-0.92) across ε, α ∈ [0.1, 0.9] — DATE is insensitive to its
initializations — while the assumed copy probability r matters: the
curve rises sharply from r = 0.1 to ≈ 0.4 and then plateaus.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.date import DATE
from ..simulation.metrics import precision
from ..simulation.runner import run_instances
from ..simulation.sweep import ExperimentResult, sweep_series
from .common import ScalePreset, base_config

__all__ = ["run_fig3a", "run_fig3b"]

_DEFAULT_GRID = (0.1, 0.3, 0.5, 0.7, 0.9)
_DEFAULT_R_GRID = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def run_fig3a(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    epsilon_grid: Sequence[float] = _DEFAULT_GRID,
    alpha_grid: Sequence[float] = _DEFAULT_GRID,
    assumed_r: float = 0.2,
) -> ExperimentResult:
    """Precision vs. initial accuracy ε, one series per prior α.

    The paper fixes r = 0.2 for this sweep; datasets are identical
    across all (ε, α) points so differences are purely algorithmic.
    """
    config = base_config(scale, instances=instances, base_seed=base_seed)
    # One shared index per instance: the whole (ε, α) grid reuses the
    # same claim arrays, only the hyperparameters change.
    datasets = config.indexed_datasets()

    def point(epsilon: float) -> dict[str, float]:
        row: dict[str, float] = {}
        for alpha in alpha_grid:
            date_config = config.date.evolve(
                initial_accuracy=epsilon,
                prior_alpha=alpha,
                copy_prob_r=assumed_r,
            )
            table = run_instances(
                len(datasets),
                lambda k: {
                    "precision": precision(
                        DATE(date_config).run(
                            datasets[k][0], index=datasets[k][1]
                        ),
                        datasets[k][0],
                    )
                },
            )
            row[f"alpha={alpha:g}"] = table.mean("precision")
        return row

    return sweep_series(
        "fig3a",
        "Precision of DATE versus initial accuracy ε and prior α",
        "epsilon",
        "precision",
        epsilon_grid,
        point,
        meta={
            "paper_expectation": (
                "precision varies only slightly (0.82-0.92) across the "
                "whole (ε, α) grid; best near ε=0.5, α=0.2"
            ),
            "assumed_r": assumed_r,
            "instances": len(datasets),
            "base_seed": base_seed,
        },
    )


def run_fig3b(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    r_grid: Sequence[float] = _DEFAULT_R_GRID,
) -> ExperimentResult:
    """Precision vs. the assumed copy probability r.

    The generative copy probability stays at the dataset default; only
    DATE's assumption r sweeps, reproducing the rise-then-plateau of
    Fig. 3b.
    """
    config = base_config(scale, instances=instances, base_seed=base_seed)
    # Shared per-instance indexes across the whole r grid.
    datasets = config.indexed_datasets()

    def point(r: float) -> dict[str, float]:
        date_config = config.date.evolve(copy_prob_r=r)
        table = run_instances(
            len(datasets),
            lambda k: {
                "precision": precision(
                    DATE(date_config).run(datasets[k][0], index=datasets[k][1]),
                    datasets[k][0],
                )
            },
        )
        return {"DATE": table.mean("precision")}

    return sweep_series(
        "fig3b",
        "Precision of DATE versus assumed copy probability r",
        "r",
        "precision",
        r_grid,
        point,
        meta={
            "paper_expectation": (
                "precision increases significantly from r=0.1 to r=0.4, "
                "then converges"
            ),
            "generative_copy_prob": config.copy_prob,
            "instances": len(datasets),
            "base_seed": base_seed,
        },
    )
