"""Fig. 3 — sensitivity of DATE's precision to ε, α (a) and r (b).

Paper findings (Sec. VII-B): precision fluctuates only slightly
(0.82-0.92) across ε, α ∈ [0.1, 0.9] — DATE is insensitive to its
initializations — while the assumed copy probability r matters: the
curve rises sharply from r = 0.1 to ≈ 0.4 and then plateaus.

Execution is organized instance-first: one module-level work function
evaluates the *whole* hyperparameter grid on the k-th seeded instance
(sharing that instance's :class:`~repro.core.DatasetIndex` across every
grid cell), and :func:`~repro.simulation.runner.run_instances` fans the
instances out — serially or over the process pool (``parallel=N``)
with bit-identical results, since each instance derives its dataset
from ``(config, k)`` alone.  That purity is also what makes the run
ledger sound here: with ``ledger=`` each instance row is banked under
its content fingerprint, so re-runs recompute only new instances.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import partial

from ..artifacts import RunLedger, cached_result
from ..core.date import DATE
from ..core.indexing import DatasetIndex
from ..simulation.config import ExperimentConfig
from ..simulation.metrics import precision
from ..simulation.runner import run_instances
from ..simulation.sweep import ExperimentResult, sweep_series
from .common import ScalePreset, base_config, instance_run_key, result_run_key

__all__ = ["run_fig3a", "run_fig3b"]

_DEFAULT_GRID = (0.1, 0.3, 0.5, 0.7, 0.9)
_DEFAULT_R_GRID = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def _cell(epsilon: float, alpha: float) -> str:
    return f"eps={epsilon:g}|alpha={alpha:g}"


def _fig3a_instance(
    config: ExperimentConfig,
    epsilon_grid: tuple[float, ...],
    alpha_grid: tuple[float, ...],
    assumed_r: float,
    k: int,
) -> dict[str, float]:
    """Precision of the whole (ε, α) grid on instance ``k`` (picklable)."""
    dataset = config.dataset_for(k)
    index = DatasetIndex(dataset)
    row: dict[str, float] = {}
    for epsilon in epsilon_grid:
        for alpha in alpha_grid:
            date_config = config.date.evolve(
                initial_accuracy=epsilon,
                prior_alpha=alpha,
                copy_prob_r=assumed_r,
            )
            result = DATE(date_config).run(dataset, index=index)
            row[_cell(epsilon, alpha)] = precision(result, dataset)
    return row


def run_fig3a(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    epsilon_grid: Sequence[float] = _DEFAULT_GRID,
    alpha_grid: Sequence[float] = _DEFAULT_GRID,
    assumed_r: float = 0.2,
    parallel: int | None = 1,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Precision vs. initial accuracy ε, one series per prior α.

    The paper fixes r = 0.2 for this sweep; datasets are identical
    across all (ε, α) points so differences are purely algorithmic.
    """
    config = base_config(scale, instances=instances, base_seed=base_seed)
    epsilon_grid = tuple(epsilon_grid)
    alpha_grid = tuple(alpha_grid)
    declared = {
        "epsilon_grid": epsilon_grid,
        "alpha_grid": alpha_grid,
        "assumed_r": assumed_r,
    }

    def build() -> ExperimentResult:
        table = run_instances(
            config.instances,
            partial(_fig3a_instance, config, epsilon_grid, alpha_grid, assumed_r),
            parallel=parallel,
            ledger=ledger,
            key=instance_run_key("fig3a", config, **declared),
        )

        def point(epsilon: float) -> dict[str, float]:
            return {
                f"alpha={alpha:g}": table.mean(_cell(epsilon, alpha))
                for alpha in alpha_grid
            }

        return sweep_series(
            "fig3a",
            "Precision of DATE versus initial accuracy ε and prior α",
            "epsilon",
            "precision",
            epsilon_grid,
            point,
            meta={
                "paper_expectation": (
                    "precision varies only slightly (0.82-0.92) across the "
                    "whole (ε, α) grid; best near ε=0.5, α=0.2"
                ),
                "assumed_r": assumed_r,
                "instances": config.instances,
                "base_seed": base_seed,
            },
        )

    return cached_result(
        ledger, result_run_key("fig3a", config, **declared), build
    )


def _fig3b_instance(
    config: ExperimentConfig,
    r_grid: tuple[float, ...],
    k: int,
) -> dict[str, float]:
    """Precision of the whole r grid on instance ``k`` (picklable)."""
    dataset = config.dataset_for(k)
    index = DatasetIndex(dataset)
    row: dict[str, float] = {}
    for r in r_grid:
        result = DATE(config.date.evolve(copy_prob_r=r)).run(dataset, index=index)
        row[f"r={r:g}"] = precision(result, dataset)
    return row


def run_fig3b(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    r_grid: Sequence[float] = _DEFAULT_R_GRID,
    parallel: int | None = 1,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Precision vs. the assumed copy probability r.

    The generative copy probability stays at the dataset default; only
    DATE's assumption r sweeps, reproducing the rise-then-plateau of
    Fig. 3b.
    """
    config = base_config(scale, instances=instances, base_seed=base_seed)
    r_grid = tuple(r_grid)

    def build() -> ExperimentResult:
        table = run_instances(
            config.instances,
            partial(_fig3b_instance, config, r_grid),
            parallel=parallel,
            ledger=ledger,
            key=instance_run_key("fig3b", config, r_grid=r_grid),
        )

        def point(r: float) -> dict[str, float]:
            return {"DATE": table.mean(f"r={r:g}")}

        return sweep_series(
            "fig3b",
            "Precision of DATE versus assumed copy probability r",
            "r",
            "precision",
            r_grid,
            point,
            meta={
                "paper_expectation": (
                    "precision increases significantly from r=0.1 to r=0.4, "
                    "then converges"
                ),
                "generative_copy_prob": config.copy_prob,
                "instances": config.instances,
                "base_seed": base_seed,
            },
        )

    return cached_result(
        ledger, result_run_key("fig3b", config, r_grid=r_grid), build
    )
