"""Algorithm zoo accuracy × copier-fraction grid (``algo-accuracy``).

Every zoo member (:data:`~repro.discovery.ALGORITHM_NAMES`) runs on the
same seeded instances while the copier fraction sweeps, exposing the
paper's central contrast: reputation-iterating baselines (TruthFinder,
LCA) *amplify* copied claims and degrade as copiers grow, majority
voting degrades gently, and DATE's dependence-aware discounting stays
robust.

Execution follows the fig3 instance-first template: one module-level
work function evaluates the whole (algorithm × fraction) grid on the
k-th instance, sharing one :class:`~repro.core.DatasetIndex` per
fraction across every algorithm, so ``parallel=N`` and the run ledger
are sound (each instance row is a pure function of ``(config, k)``).
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence
from functools import partial

from ..artifacts import RunLedger, cached_result
from ..core.indexing import DatasetIndex
from ..discovery import ALGORITHM_NAMES, canonical_algorithm, make_discoverer
from ..simulation.config import ExperimentConfig
from ..simulation.metrics import precision
from ..simulation.runner import run_instances
from ..simulation.sweep import ExperimentResult, sweep_series
from .common import ScalePreset, base_config, instance_run_key, result_run_key

__all__ = ["run_algo_accuracy"]

#: Copier fractions of the worker pool swept by default.
_DEFAULT_FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4)


def _cell(name: str, fraction: float) -> str:
    return f"{name}|copiers={fraction:g}"


def _algo_accuracy_instance(
    config: ExperimentConfig,
    algorithms: tuple[str, ...],
    fractions: tuple[float, ...],
    seed: int,
    k: int,
) -> dict[str, float]:
    """Precision of the whole grid on instance ``k`` (picklable)."""
    row: dict[str, float] = {}
    for fraction in fractions:
        point = config.evolve(n_copiers=int(round(fraction * config.n_workers)))
        dataset = point.dataset_for(k)
        index = DatasetIndex(dataset)
        for name in algorithms:
            discoverer = make_discoverer(
                name, date_config=config.date, seed=seed
            )
            with warnings.catch_warnings():
                # TruthFinder/LCA legitimately hit their iteration caps
                # on adversarial instances; the cap is part of the
                # algorithm definition, not a data-quality problem.
                warnings.simplefilter("ignore")
                result = discoverer.run(dataset, index=index)
            row[_cell(name, fraction)] = precision(result, dataset)
    return row


def run_algo_accuracy(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    copier_fractions: Sequence[float] = _DEFAULT_FRACTIONS,
    parallel: int | None = 1,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Precision of every selected algorithm vs. the copier fraction.

    Datasets are identical across algorithms at each fraction (one
    index shared per point), so series differences are purely
    algorithmic.  Algorithm names are case-insensitive and normalized
    to their canonical registry spelling.
    """
    config = base_config(scale, instances=instances, base_seed=base_seed)
    algorithms = tuple(canonical_algorithm(name) for name in algorithms)
    copier_fractions = tuple(copier_fractions)
    declared = {
        "algorithms": algorithms,
        "copier_fractions": copier_fractions,
        "algo_seed": base_seed,
    }

    def build() -> ExperimentResult:
        table = run_instances(
            config.instances,
            partial(
                _algo_accuracy_instance,
                config,
                algorithms,
                copier_fractions,
                base_seed,
            ),
            parallel=parallel,
            ledger=ledger,
            key=instance_run_key("algo-accuracy", config, **declared),
        )

        def point(fraction: float) -> dict[str, float]:
            return {
                name: table.mean(_cell(name, fraction))
                for name in algorithms
            }

        return sweep_series(
            "algo-accuracy",
            "Precision of the truth-discovery zoo versus copier fraction",
            "copier_fraction",
            "precision",
            copier_fractions,
            point,
            meta={
                "expectation": (
                    "reputation-iterating baselines (TruthFinder, LCA) "
                    "degrade sharply as copiers grow; MV degrades gently; "
                    "DATE's dependence-aware discounting stays robust"
                ),
                "algorithms": list(algorithms),
                "instances": config.instances,
                "base_seed": base_seed,
            },
        )

    return cached_result(
        ledger, result_run_key("algo-accuracy", config, **declared), build
    )
