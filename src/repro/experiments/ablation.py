"""Ablation experiment: quantify DATE's design choices (extension).

Registers :func:`repro.analysis.ablation.run_date_ablation` as an
experiment so the CLI and benches can regenerate the DESIGN.md §4
decision table: one precision series over the variant list, with the
per-variant confidence intervals in ``meta``.
"""

from __future__ import annotations

from ..analysis.ablation import ABLATION_VARIANTS, run_date_ablation
from ..artifacts import RunLedger
from ..simulation.sweep import ExperimentResult
from .common import ScalePreset, base_config, result_run_key

__all__ = ["run_ablation"]


def run_ablation(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    variants: dict[str, dict[str, object]] | None = None,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Run the DATE design-choice ablation on seeded instances."""
    config = base_config(scale, instances=instances, base_seed=base_seed)
    key = result_run_key(
        "ablation",
        config,
        variants=variants if variants is not None else ABLATION_VARIANTS,
    )
    if ledger is not None:
        banked = ledger.get_result(key)
        if banked is not None:
            return banked
    rows = run_date_ablation(config, variants=variants)
    names = [row.variant for row in rows]
    result = ExperimentResult(
        experiment_id="ablation",
        title="DATE design-choice ablation (precision per variant)",
        x_label="variant index",
        y_label="precision",
        x_values=tuple(range(len(rows))),
        series={"precision": tuple(row.precision.mean for row in rows)},
        meta={
            "variants": names,
            "per_variant": {
                row.variant: str(row.precision) for row in rows
            },
            "paper_expectation": (
                "extension: not in the paper; quantifies the DESIGN.md §4 "
                "interpretation choices"
            ),
            "instances": config.instances,
            "base_seed": base_seed,
            "available_variants": sorted(ABLATION_VARIANTS),
        },
    )
    if ledger is not None:
        ledger.put_result(key, result)
    return result
