"""Experiment registry: id -> runner, with declared capabilities.

The single source of truth for "what can be reproduced": the CLI, the
benchmark harness, and EXPERIMENTS.md all enumerate this table.

Each entry *declares* which harness features its runner supports via
``features`` — ``scale`` / ``instances`` / ``parallel`` / ``ledger`` —
so the CLI threads ``--scale``, ``--instances``, ``--parallel`` and the
run ledger from the declaration instead of maintaining ad-hoc id sets.
Runtime-measuring experiments (fig5, fig7) deliberately do not declare
``ledger``: a cached wall-clock series would replay stale hardware, so
they always recompute.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigurationError, UnknownExperimentError
from ..simulation.sweep import ExperimentResult
from .ablation import run_ablation
from .algo_accuracy import run_algo_accuracy
from .approx import run_approx
from .fig3 import run_fig3a, run_fig3b
from .fig45 import run_fig4a, run_fig4b, run_fig5a, run_fig5b
from .fig_adversary import run_adversary_f1, run_adversary_precision
from .fig67 import run_fig6a, run_fig6b, run_fig7a, run_fig7a_payments, run_fig7b
from .fig8 import run_fig8a, run_fig8b
from .table1 import run_table1
from .winners import run_winners_quality

__all__ = [
    "Experiment",
    "FEATURES",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]

#: Every feature a runner may declare.
FEATURES = frozenset({"scale", "instances", "parallel", "ledger"})


@dataclass(frozen=True)
class Experiment:
    """A registered experiment and its declared harness capabilities."""

    experiment_id: str
    paper_reference: str
    summary: str
    runner: Callable[..., ExperimentResult]
    #: Harness keywords the runner accepts (subset of :data:`FEATURES`).
    features: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        unknown = self.features - FEATURES
        if unknown:
            raise ConfigurationError(
                f"experiment {self.experiment_id!r} declares unknown "
                f"features {sorted(unknown)}; known: {sorted(FEATURES)}"
            )

    def supports(self, feature: str) -> bool:
        return feature in self.features


_REGISTRY: dict[str, Experiment] = {}


def _register(
    experiment_id: str,
    paper_reference: str,
    summary: str,
    runner: Callable[..., ExperimentResult],
    *,
    features: str = "",
) -> None:
    _REGISTRY[experiment_id] = Experiment(
        experiment_id=experiment_id,
        paper_reference=paper_reference,
        summary=summary,
        runner=runner,
        features=frozenset(features.split()) if features else frozenset(),
    )


_register(
    "table1",
    "Table 1",
    "Motivating example: majority voting fooled by two copiers",
    run_table1,
    features="parallel ledger",
)
_register(
    "fig3a",
    "Fig. 3a",
    "DATE precision vs initial accuracy ε and prior α",
    run_fig3a,
    features="scale instances parallel ledger",
)
_register(
    "fig3b",
    "Fig. 3b",
    "DATE precision vs assumed copy probability r",
    run_fig3b,
    features="scale instances parallel ledger",
)
_register(
    "fig4a",
    "Fig. 4a",
    "Precision vs number of tasks (MV/NC/DATE/ED)",
    run_fig4a,
    features="scale instances ledger",
)
_register(
    "fig4b",
    "Fig. 4b",
    "Precision vs number of workers (MV/NC/DATE/ED)",
    run_fig4b,
    features="scale instances ledger",
)
_register(
    "fig5a",
    "Fig. 5a",
    "Truth-discovery runtime vs number of tasks",
    run_fig5a,
    features="scale instances",
)
_register(
    "fig5b",
    "Fig. 5b",
    "Truth-discovery runtime vs number of workers",
    run_fig5b,
    features="scale instances",
)
_register(
    "fig6a",
    "Fig. 6a",
    "Social cost vs number of tasks (RA/GA/GB)",
    run_fig6a,
    features="scale instances ledger",
)
_register(
    "fig6b",
    "Fig. 6b",
    "Social cost vs number of workers (RA/GA/GB)",
    run_fig6b,
    features="scale instances ledger",
)
_register(
    "fig7a",
    "Fig. 7a",
    "Auction runtime vs number of tasks (RA/GA/GB)",
    run_fig7a,
    features="scale instances",
)
_register(
    "fig7b",
    "Fig. 7b",
    "Auction runtime vs number of workers (RA/GA/GB)",
    run_fig7b,
    features="scale instances",
)
_register(
    "fig7a-payments",
    "Fig. 7a (companion)",
    "Total auction payment vs number of tasks (deterministic twin of fig7a)",
    run_fig7a_payments,
    features="scale instances ledger",
)
_register(
    "fig8a",
    "Fig. 8a",
    "Truthfulness: winner utility vs declared bid",
    run_fig8a,
    features="scale ledger",
)
_register(
    "fig8b",
    "Fig. 8b",
    "Truthfulness: loser utility vs declared bid",
    run_fig8b,
    features="scale ledger",
)
_register(
    "approx",
    "Theorem 3 (extension)",
    "Empirical approximation ratio vs exact ILP optimum",
    run_approx,
    features="scale instances ledger",
)
_register(
    "ablation",
    "DESIGN.md §4 (extension)",
    "Precision ablation of DATE's design choices",
    run_ablation,
    features="scale instances ledger",
)
_register(
    "winners",
    "SOAC premise (extension)",
    "Truth-discovery precision using only auction winners",
    run_winners_quality,
    features="scale instances ledger",
)
_register(
    "algo-accuracy",
    "Algorithm zoo (extension)",
    "Precision of every TruthDiscoverer vs copier fraction",
    run_algo_accuracy,
    features="scale instances parallel ledger",
)
_register(
    "adv-f1",
    "Scenario lab (extension)",
    "Copier-detection F1 vs adversary fraction per strategy family",
    run_adversary_f1,
    features="scale instances parallel ledger",
)
_register(
    "adv-precision",
    "Scenario lab (extension)",
    "DATE precision vs adversary fraction per strategy family",
    run_adversary_precision,
    features="scale instances parallel ledger",
)


def list_experiments() -> list[Experiment]:
    """All registered experiments, in registration (paper) order."""
    return list(_REGISTRY.values())


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one experiment; raises :class:`UnknownExperimentError`."""
    experiment = _REGISTRY.get(experiment_id)
    if experiment is None:
        raise UnknownExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(sorted(_REGISTRY))}"
        )
    return experiment


def run_experiment(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    """Run one experiment by id with runner-specific keyword arguments.

    Feature keywords (``scale``, ``instances``, ``parallel``,
    ``ledger``) are validated against the experiment's declaration, so
    passing e.g. ``ledger=`` to a runtime-measuring runner fails with a
    clear message instead of a ``TypeError`` deep in the runner.
    """
    experiment = get_experiment(experiment_id)
    undeclared = sorted(
        name for name in kwargs if name in FEATURES and name not in experiment.features
    )
    if undeclared:
        raise ConfigurationError(
            f"experiment {experiment_id!r} does not support "
            f"{', '.join(undeclared)} (declared features: "
            f"{sorted(experiment.features) or 'none'})"
        )
    return experiment.runner(**kwargs)
