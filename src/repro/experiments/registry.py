"""Experiment registry: id -> runner.

The single source of truth for "what can be reproduced": the CLI, the
benchmark harness, and EXPERIMENTS.md all enumerate this table.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from ..errors import UnknownExperimentError
from ..simulation.sweep import ExperimentResult
from .ablation import run_ablation
from .approx import run_approx
from .fig3 import run_fig3a, run_fig3b
from .fig45 import run_fig4a, run_fig4b, run_fig5a, run_fig5b
from .fig_adversary import run_adversary_f1, run_adversary_precision
from .fig67 import run_fig6a, run_fig6b, run_fig7a, run_fig7a_payments, run_fig7b
from .fig8 import run_fig8a, run_fig8b
from .table1 import run_table1
from .winners import run_winners_quality

__all__ = ["Experiment", "get_experiment", "list_experiments", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """A registered experiment."""

    experiment_id: str
    paper_reference: str
    summary: str
    runner: Callable[..., ExperimentResult]


_REGISTRY: dict[str, Experiment] = {}


def _register(
    experiment_id: str,
    paper_reference: str,
    summary: str,
    runner: Callable[..., ExperimentResult],
) -> None:
    _REGISTRY[experiment_id] = Experiment(
        experiment_id=experiment_id,
        paper_reference=paper_reference,
        summary=summary,
        runner=runner,
    )


_register(
    "table1",
    "Table 1",
    "Motivating example: majority voting fooled by two copiers",
    run_table1,
)
_register("fig3a", "Fig. 3a", "DATE precision vs initial accuracy ε and prior α", run_fig3a)
_register("fig3b", "Fig. 3b", "DATE precision vs assumed copy probability r", run_fig3b)
_register("fig4a", "Fig. 4a", "Precision vs number of tasks (MV/NC/DATE/ED)", run_fig4a)
_register("fig4b", "Fig. 4b", "Precision vs number of workers (MV/NC/DATE/ED)", run_fig4b)
_register("fig5a", "Fig. 5a", "Truth-discovery runtime vs number of tasks", run_fig5a)
_register("fig5b", "Fig. 5b", "Truth-discovery runtime vs number of workers", run_fig5b)
_register("fig6a", "Fig. 6a", "Social cost vs number of tasks (RA/GA/GB)", run_fig6a)
_register("fig6b", "Fig. 6b", "Social cost vs number of workers (RA/GA/GB)", run_fig6b)
_register("fig7a", "Fig. 7a", "Auction runtime vs number of tasks (RA/GA/GB)", run_fig7a)
_register("fig7b", "Fig. 7b", "Auction runtime vs number of workers (RA/GA/GB)", run_fig7b)
_register(
    "fig7a-payments",
    "Fig. 7a (companion)",
    "Total auction payment vs number of tasks (deterministic twin of fig7a)",
    run_fig7a_payments,
)
_register("fig8a", "Fig. 8a", "Truthfulness: winner utility vs declared bid", run_fig8a)
_register("fig8b", "Fig. 8b", "Truthfulness: loser utility vs declared bid", run_fig8b)
_register(
    "approx",
    "Theorem 3 (extension)",
    "Empirical approximation ratio vs exact ILP optimum",
    run_approx,
)
_register(
    "ablation",
    "DESIGN.md §4 (extension)",
    "Precision ablation of DATE's design choices",
    run_ablation,
)
_register(
    "winners",
    "SOAC premise (extension)",
    "Truth-discovery precision using only auction winners",
    run_winners_quality,
)
_register(
    "adv-f1",
    "Scenario lab (extension)",
    "Copier-detection F1 vs adversary fraction per strategy family",
    run_adversary_f1,
)
_register(
    "adv-precision",
    "Scenario lab (extension)",
    "DATE precision vs adversary fraction per strategy family",
    run_adversary_precision,
)


def list_experiments() -> list[Experiment]:
    """All registered experiments, in registration (paper) order."""
    return list(_REGISTRY.values())


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one experiment; raises :class:`UnknownExperimentError`."""
    experiment = _REGISTRY.get(experiment_id)
    if experiment is None:
        raise UnknownExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(sorted(_REGISTRY))}"
        )
    return experiment


def run_experiment(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    """Run one experiment by id with runner-specific keyword arguments."""
    return get_experiment(experiment_id).runner(**kwargs)
