"""Shared infrastructure for the experiment runners.

Two scale presets parameterize every experiment:

- :data:`PAPER_SCALE` — the full Sec. VII-A setup (300 tasks, 120
  workers, 30 copiers, ≈6000 claims; the paper averages over 100
  instances, we default to 10 which already gives tight CIs);
- :data:`QUICK_SCALE` — a proportionally shrunk world for CI and
  pytest-benchmark runs, preserving the claim density, copier fraction
  and therefore the qualitative shapes.

:func:`truth_algorithms` builds fresh instances of the four
truth-discovery competitors sharing one :class:`DateConfig` (including
its ``backend`` selection — sweeps can pit the vectorized engine
against the scalar reference);  :func:`auction_algorithms` does the
same for the three auction competitors.

Runners that evaluate several algorithms or hyperparameter points on
the same dataset should structure the work *instance-first*: one
module-level (picklable) function builds the k-th dataset plus one
shared :class:`~repro.core.DatasetIndex` and evaluates every
algorithm/grid cell on it, and
:func:`~repro.simulation.runner.run_instances` fans the instances out
(``parallel=N`` bit-identical to serial) — the pattern of
``experiments.fig3`` and ``scenarios.runner.instance_metrics``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..artifacts import RunKey
from ..baselines import (
    EnumerateDependence,
    GreedyAccuracy,
    GreedyBid,
    MajorityVote,
    NoCopier,
)
from ..core.config import DateConfig
from ..core.date import DATE
from ..auction.config import AuctionConfig
from ..auction.reverse_auction import ReverseAuction
from ..errors import ConfigurationError
from ..simulation.config import ExperimentConfig

__all__ = [
    "PAPER_SCALE",
    "QUICK_SCALE",
    "ScalePreset",
    "auction_algorithms",
    "base_config",
    "instance_run_key",
    "resolve_scale",
    "result_run_key",
    "truth_algorithms",
]


@dataclass(frozen=True)
class ScalePreset:
    """A named experiment size."""

    name: str
    n_tasks: int
    n_workers: int
    n_copiers: int
    target_claims: int
    instances: int

    def to_config(
        self, *, base_seed: int = 42, date: DateConfig | None = None
    ) -> ExperimentConfig:
        """Materialize an :class:`ExperimentConfig` for this preset."""
        config = ExperimentConfig(
            n_tasks=self.n_tasks,
            n_workers=self.n_workers,
            n_copiers=self.n_copiers,
            target_claims=self.target_claims,
            instances=self.instances,
            base_seed=base_seed,
        )
        if date is not None:
            config = config.evolve(date=date)
        return config


PAPER_SCALE = ScalePreset(
    name="paper",
    n_tasks=300,
    n_workers=120,
    n_copiers=30,
    target_claims=6000,
    instances=10,
)

QUICK_SCALE = ScalePreset(
    name="quick",
    n_tasks=120,
    n_workers=60,
    n_copiers=15,
    target_claims=2400,
    instances=3,
)

_PRESETS = {preset.name: preset for preset in (PAPER_SCALE, QUICK_SCALE)}


def resolve_scale(scale: str | ScalePreset) -> ScalePreset:
    """Look up a preset by name, or pass a custom preset through."""
    if isinstance(scale, ScalePreset):
        return scale
    preset = _PRESETS.get(scale)
    if preset is None:
        raise ConfigurationError(
            f"unknown scale {scale!r}; expected one of {sorted(_PRESETS)} "
            "or a ScalePreset instance"
        )
    return preset


def base_config(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    date: DateConfig | None = None,
    **overrides: Any,
) -> ExperimentConfig:
    """The standard way every runner builds its configuration."""
    preset = resolve_scale(scale)
    if instances is not None:
        preset = replace(preset, instances=instances)
    config = preset.to_config(base_seed=base_seed, date=date)
    if overrides:
        config = config.evolve(**overrides)
    return config


def instance_run_key(
    experiment_id: str, config: ExperimentConfig, **inputs: Any
) -> RunKey:
    """The per-instance ledger key of a runner (DESIGN.md §11).

    This is how runners *declare* their fingerprint inputs: the fully
    resolved :class:`ExperimentConfig` plus every extra knob the metric
    body reads (grids, assumed r, ...), as keyword arguments — never
    the runner's raw ad-hoc kwargs.  The instance *count* is
    deliberately normalized out: instance seeds derive from
    ``SeedSequence.spawn`` keyed by the index alone, so instance ``k``
    computes the same row in a 10- or 100-instance run, and growing
    ``--instances`` reuses the banked prefix.
    """
    return RunKey(
        experiment_id=experiment_id,
        payload={"config": config.evolve(instances=1), **inputs},
    )


def result_run_key(
    experiment_id: str,
    config: ExperimentConfig | None = None,
    **inputs: Any,
) -> RunKey:
    """The whole-result (and sweep-point) ledger key of a runner.

    Unlike :func:`instance_run_key` the instance count stays in the
    payload — a finished result aggregates over all instances, so a
    run with a different count is different work.
    """
    payload: dict[str, Any] = dict(inputs)
    if config is not None:
        payload["config"] = config
    return RunKey(experiment_id=experiment_id, payload=payload)


def truth_algorithms(
    date_config: DateConfig | None = None,
    *,
    include_ed: bool = True,
) -> dict[str, Any]:
    """Fresh instances of the Fig. 4/5 competitors, keyed by method name.

    ``include_ed=False`` skips the exponential ED baseline for runs
    where its cost is not the point.  All four honour the shared
    config's ``backend`` (MV is array-native either way).
    """
    algorithms: dict[str, Any] = {
        "MV": MajorityVote(),
        "NC": NoCopier(date_config),
        "DATE": DATE(date_config),
    }
    if include_ed:
        algorithms["ED"] = EnumerateDependence(date_config)
    return algorithms


def auction_algorithms(
    auction_config: AuctionConfig | None = None,
) -> dict[str, Any]:
    """Fresh instances of the Fig. 6/7 competitors, keyed by method name.

    ``auction_config`` selects RA's engine backend (vectorized by
    default); outcomes are backend-independent, so sweeps can pit the
    engines against each other on wall-clock alone.
    """
    return {
        "RA": ReverseAuction(auction_config),
        "GA": GreedyAccuracy(),
        "GB": GreedyBid(),
    }
