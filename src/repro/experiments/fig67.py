"""Figs. 6 and 7 — social cost and running time of the auction
algorithms versus the number of tasks and workers.

Paper findings (Sec. VII-C):

- Fig. 6a: social cost rises with tasks (more winners needed); the
  Reverse Auction (RA) is cheapest — on average 59.4% below GA and
  40.2% below GB.
- Fig. 6b: social cost falls with workers (more cheap, accurate
  workers to choose from), same ordering.
- Fig. 7: auction running time rises with both dimensions; RA
  (O(n³m)) is the slowest, then GA (O(n³)), then GB (O(n²)).

Each sweep point runs DATE once per instance to obtain the accuracy
matrix, then runs all three auctions on the same SOAC instance, so
cost and time differences are purely due to the auction.  Requirements
are capped at 80% of each task's available accuracy so sparse sweep
points stay feasible (see ``SOACInstance.with_capped_requirements``).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..artifacts import RunLedger
from ..auction.config import AuctionConfig
from ..auction.soac import SOACInstance
from ..core.date import DATE
from ..core.indexing import DatasetIndex
from ..simulation.sweep import ExperimentResult, sweep_series
from ..simulation.timing import timed
from .common import (
    ScalePreset,
    auction_algorithms,
    base_config,
    resolve_scale,
    result_run_key,
)

__all__ = [
    "run_fig6a",
    "run_fig6b",
    "run_fig7a",
    "run_fig7a_payments",
    "run_fig7b",
]

#: Feasibility cap applied at every sweep point.
REQUIREMENT_CAP = 0.8


def _grids(preset: ScalePreset, vary: str) -> tuple[int, ...]:
    top = preset.n_tasks if vary == "tasks" else preset.n_workers
    fractions = (1 / 3, 1 / 2, 2 / 3, 5 / 6, 1.0)
    return tuple(int(round(top * f)) for f in fractions)


def _run(
    experiment_id: str,
    title: str,
    metric: str,
    vary: str,
    scale: str | ScalePreset,
    instances: int | None,
    base_seed: int,
    grid: Sequence[int] | None,
    paper_expectation: str,
    auction_config: AuctionConfig | None = None,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    preset = resolve_scale(scale)
    config = base_config(preset, instances=instances, base_seed=base_seed)
    if grid is None:
        grid = _grids(preset, vary)
    grid = tuple(grid)
    # Outcome metrics are backend-independent and deterministic, so
    # they cache under the full declared sweep description; runtime
    # metrics never take a ledger (a cached wall-clock is meaningless).
    key = (
        result_run_key(
            experiment_id,
            config,
            vary=vary,
            metric=metric,
            grid=grid,
            requirement_cap=REQUIREMENT_CAP,
            auction=auction_config or AuctionConfig(),
        )
        if ledger is not None
        else None
    )
    if ledger is not None and key is not None:
        banked = ledger.get_result(key)
        if banked is not None:
            return banked
    datasets = config.datasets()

    # Cache per (instance, size): SOAC instance built from one DATE run.
    cache: dict[tuple[int, int], SOACInstance] = {}

    def soac_for(k: int, size: int) -> SOACInstance:
        key = (k, size)
        if key not in cache:
            full = datasets[k]
            if vary == "tasks":
                ds = full.subset(task_ids=[t.task_id for t in full.tasks[:size]])
            else:
                ds = full.subset(
                    worker_ids=[w.worker_id for w in full.workers[:size]]
                )
            result = DATE(config.date).run(ds, index=DatasetIndex(ds))
            instance = SOACInstance.from_truth_discovery(ds, result)
            cache[key] = instance.with_capped_requirements(REQUIREMENT_CAP)
        return cache[key]

    def point(size: float) -> dict[str, float]:
        size = int(size)
        sums: dict[str, float] = {}
        for k in range(len(datasets)):
            instance = soac_for(k, size)
            for name, algorithm in auction_algorithms(auction_config).items():
                outcome, seconds = timed(algorithm.run, instance)
                if metric == "social_cost":
                    value = outcome.social_cost
                elif metric == "total_payment":
                    value = outcome.total_payment
                else:
                    value = seconds
                sums[name] = sums.get(name, 0.0) + value
        return {name: total / len(datasets) for name, total in sums.items()}

    result = sweep_series(
        experiment_id,
        title,
        f"number of {vary}",
        {
            "social_cost": "social cost",
            "total_payment": "total payment",
        }.get(metric, "seconds"),
        grid,
        point,
        meta={
            "paper_expectation": paper_expectation,
            "requirement_cap": REQUIREMENT_CAP,
            "instances": config.instances,
            "base_seed": base_seed,
            "scale": preset.name,
            "auction_backend": (auction_config or AuctionConfig()).backend,
        },
        ledger=ledger,
        key=key,
    )
    if ledger is not None and key is not None:
        ledger.put_result(key, result)
    return result


def run_fig6a(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    task_grid: Sequence[int] | None = None,
    auction_config: AuctionConfig | None = None,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Social cost vs. number of tasks for RA / GA / GB."""
    return _run(
        "fig6a",
        "Social cost versus number of tasks",
        "social_cost",
        "tasks",
        scale,
        instances,
        base_seed,
        task_grid,
        "social cost rises with tasks; RA cheapest (avg -59.4% vs GA, "
        "-40.2% vs GB)",
        auction_config=auction_config,
        ledger=ledger,
    )


def run_fig6b(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    worker_grid: Sequence[int] | None = None,
    auction_config: AuctionConfig | None = None,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Social cost vs. number of workers for RA / GA / GB."""
    return _run(
        "fig6b",
        "Social cost versus number of workers",
        "social_cost",
        "workers",
        scale,
        instances,
        base_seed,
        worker_grid,
        "social cost falls with workers; RA cheapest throughout",
        auction_config=auction_config,
        ledger=ledger,
    )


def run_fig7a(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    task_grid: Sequence[int] | None = None,
    auction_config: AuctionConfig | None = None,
) -> ExperimentResult:
    """Auction running time vs. number of tasks for RA / GA / GB."""
    return _run(
        "fig7a",
        "Auction running time versus number of tasks",
        "runtime",
        "tasks",
        scale,
        instances,
        base_seed,
        task_grid,
        "running time rises with tasks; RA (O(n^3 m)) slowest, "
        "GA (O(n^3)) next, GB (O(n^2)) fastest",
        auction_config=auction_config,
    )


def run_fig7b(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    worker_grid: Sequence[int] | None = None,
    auction_config: AuctionConfig | None = None,
) -> ExperimentResult:
    """Auction running time vs. number of workers for RA / GA / GB."""
    return _run(
        "fig7b",
        "Auction running time versus number of workers",
        "runtime",
        "workers",
        scale,
        instances,
        base_seed,
        worker_grid,
        "running time rises with workers; RA slowest, GB fastest",
        auction_config=auction_config,
    )


def run_fig7a_payments(
    scale: str | ScalePreset = "quick",
    *,
    instances: int | None = None,
    base_seed: int = 42,
    task_grid: Sequence[int] | None = None,
    auction_config: AuctionConfig | None = None,
    ledger: RunLedger | None = None,
) -> ExperimentResult:
    """Total payment vs. number of tasks — fig7a's deterministic twin.

    Fig. 7a itself plots wall-clock, which no golden fixture can pin;
    this companion runs the *same sweep* (same datasets, same DATE
    runs, same auctions) but records each method's total payment, so
    the whole fig6/fig7 auction pipeline has a seed-reproducible series
    for regression pinning (tests/golden/fig7a_payments.json).
    """
    return _run(
        "fig7a-payments",
        "Total auction payment versus number of tasks",
        "total_payment",
        "tasks",
        scale,
        instances,
        base_seed,
        task_grid,
        "companion series (not a paper figure): RA's critical payments "
        "exceed its bids but its winner sets stay cheap; payments rise "
        "with tasks like the social cost",
        auction_config=auction_config,
        ledger=ledger,
    )
