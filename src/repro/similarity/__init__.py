"""Value-similarity substrate for the Sec. IV-A extension.

The paper merges "multiple presentations" of the same truth
(abbreviations, typos) by converting values to word vectors [25] and
comparing them with cosine / Euclidean / Pearson / asymmetric
similarity.  Pretrained embeddings are unavailable offline, so
:class:`CharNgramVectorizer` provides a deterministic character-n-gram
hashing embedding with the same interface, and
:func:`normalized_levenshtein` offers a vector-free alternative.

:func:`string_similarity` builds the ``sim(v, v')`` callback that
:class:`~repro.core.config.DateConfig` plugs into the support-count
adjustment (Eq. 21).
"""

from .levenshtein import levenshtein_distance, normalized_levenshtein
from .measures import (
    asymmetric_similarity,
    cosine_similarity,
    euclidean_similarity,
    pearson_similarity,
    string_similarity,
)
from .vectorize import CharNgramVectorizer

__all__ = [
    "CharNgramVectorizer",
    "asymmetric_similarity",
    "cosine_similarity",
    "euclidean_similarity",
    "levenshtein_distance",
    "normalized_levenshtein",
    "pearson_similarity",
    "string_similarity",
]
