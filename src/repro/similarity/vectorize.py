"""Deterministic character-n-gram hashing vectorizer.

Stands in for the word2vec embeddings of [25] (see DESIGN.md §3): each
string maps to a fixed-dimension count vector of its character n-grams,
hashed with CRC32 (stable across processes, unlike Python's salted
``hash``).  Strings sharing substrings land near each other, which is
exactly the property the multiple-presentations extension needs
("IT" vs "Information Technology", "MSR" vs "MS Research").
"""

from __future__ import annotations

import zlib

import numpy as np

from ..errors import ConfigurationError

__all__ = ["CharNgramVectorizer"]


class CharNgramVectorizer:
    """Embed strings as L2-normalized hashed character-n-gram counts.

    Parameters
    ----------
    ngram_range:
        Inclusive (min_n, max_n) n-gram sizes; defaults to bigrams and
        trigrams.
    dimension:
        Size of the hashed output space.
    lowercase:
        Case-fold before extracting n-grams.
    pad:
        Surround the string with boundary markers so prefixes/suffixes
        are distinguishable from interior substrings.
    """

    def __init__(
        self,
        *,
        ngram_range: tuple[int, int] = (2, 3),
        dimension: int = 128,
        lowercase: bool = True,
        pad: bool = True,
    ):
        lo, hi = ngram_range
        if not 1 <= lo <= hi:
            raise ConfigurationError("ngram_range must satisfy 1 <= min <= max")
        if dimension < 1:
            raise ConfigurationError("dimension must be >= 1")
        self.ngram_range = (lo, hi)
        self.dimension = dimension
        self.lowercase = lowercase
        self.pad = pad
        self._cache: dict[str, np.ndarray] = {}

    def _ngrams(self, text: str) -> list[str]:
        if self.lowercase:
            text = text.lower()
        if self.pad:
            text = f"^{text}$"
        lo, hi = self.ngram_range
        grams = []
        for n in range(lo, hi + 1):
            grams.extend(text[k : k + n] for k in range(max(len(text) - n + 1, 0)))
        return grams

    def transform(self, text: str) -> np.ndarray:
        """Embed one string (results are cached per vectorizer)."""
        cached = self._cache.get(text)
        if cached is not None:
            return cached
        vector = np.zeros(self.dimension, dtype=np.float64)
        for gram in self._ngrams(text):
            slot = zlib.crc32(gram.encode("utf-8")) % self.dimension
            vector[slot] += 1.0
        norm = float(np.linalg.norm(vector))
        if norm > 0:
            vector /= norm
        vector.setflags(write=False)
        self._cache[text] = vector
        return vector

    def transform_many(self, texts: list[str]) -> np.ndarray:
        """Embed a batch; rows follow input order."""
        return np.vstack([self.transform(t) for t in texts])
