"""Vector similarity measures and the string-similarity factory.

The four measures the paper cites for comparing value vectors
(Sec. IV-A): Euclidean [21], Pearson [22], asymmetric [23], and cosine
[24].  All are mapped into [0, 1] so they can directly weight the
Eq. 21 support adjustment.

:func:`string_similarity` composes a measure with a vectorizer (or the
vector-free Levenshtein similarity) into the cached ``sim(v, v')``
callback consumed by :class:`~repro.core.config.DateConfig`.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..errors import ConfigurationError
from .levenshtein import normalized_levenshtein
from .vectorize import CharNgramVectorizer

__all__ = [
    "cosine_similarity",
    "euclidean_similarity",
    "pearson_similarity",
    "asymmetric_similarity",
    "string_similarity",
]


def cosine_similarity(u: np.ndarray, v: np.ndarray) -> float:
    """Cosine of the angle between ``u`` and ``v``, clipped to [0, 1].

    Negative cosines (impossible for count vectors, possible for general
    embeddings) clip to 0: anti-correlated values lend no support.
    """
    nu = float(np.linalg.norm(u))
    nv = float(np.linalg.norm(v))
    if nu == 0.0 or nv == 0.0:
        return 0.0
    return float(np.clip(np.dot(u, v) / (nu * nv), 0.0, 1.0))


def euclidean_similarity(u: np.ndarray, v: np.ndarray) -> float:
    """``1 / (1 + ||u - v||)`` — distance mapped into (0, 1]."""
    return 1.0 / (1.0 + float(np.linalg.norm(np.asarray(u) - np.asarray(v))))


def pearson_similarity(u: np.ndarray, v: np.ndarray) -> float:
    """Pearson correlation rescaled from [-1, 1] into [0, 1].

    Constant vectors have undefined correlation; they count as fully
    similar to each other and dissimilar to anything else.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    du = u - u.mean()
    dv = v - v.mean()
    nu = float(np.linalg.norm(du))
    nv = float(np.linalg.norm(dv))
    if nu == 0.0 and nv == 0.0:
        return 1.0 if np.allclose(u, v) else 0.0
    if nu == 0.0 or nv == 0.0:
        return 0.0
    corr = float(np.dot(du, dv) / (nu * nv))
    return (np.clip(corr, -1.0, 1.0) + 1.0) / 2.0


def asymmetric_similarity(u: np.ndarray, v: np.ndarray) -> float:
    """Directed overlap: how much of ``u``'s mass is matched by ``v`` [23].

    ``Σ min(u, v) / Σ u`` for non-negative vectors — 1.0 when ``u`` is
    contained in ``v`` (an abbreviation inside the full form), smaller
    the other way around.
    """
    u = np.abs(np.asarray(u, dtype=np.float64))
    v = np.abs(np.asarray(v, dtype=np.float64))
    mass = float(u.sum())
    if mass == 0.0:
        return 0.0
    return float(np.minimum(u, v).sum() / mass)


_VECTOR_MEASURES: dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "cosine": cosine_similarity,
    "euclidean": euclidean_similarity,
    "pearson": pearson_similarity,
    "asymmetric": asymmetric_similarity,
}


def string_similarity(
    measure: str = "cosine",
    *,
    vectorizer: CharNgramVectorizer | None = None,
    threshold: float = 0.0,
) -> Callable[[str, str], float]:
    """Build a cached ``sim(v, v') -> [0, 1]`` callback for Eq. 21.

    ``measure`` is one of ``cosine``, ``euclidean``, ``pearson``,
    ``asymmetric`` (over hashed n-gram vectors) or ``levenshtein``
    (no vectorizer).  Similarities at or below ``threshold`` are
    reported as 0 so weak resemblances lend no support.
    """
    if not 0.0 <= threshold < 1.0:
        raise ConfigurationError("threshold must be in [0, 1)")
    cache: dict[tuple[str, str], float] = {}

    if measure == "levenshtein":
        def base(a: str, b: str) -> float:
            return normalized_levenshtein(a, b)
    elif measure in _VECTOR_MEASURES:
        vec = vectorizer or CharNgramVectorizer()
        metric = _VECTOR_MEASURES[measure]

        def base(a: str, b: str) -> float:
            return metric(vec.transform(a), vec.transform(b))
    else:
        raise ConfigurationError(
            f"unknown measure {measure!r}; expected one of "
            f"{sorted(_VECTOR_MEASURES)} or 'levenshtein'"
        )

    symmetric = measure != "asymmetric"

    def sim(a: str, b: str) -> float:
        if a == b:
            return 1.0
        if symmetric and b < a:
            key = (b, a)
        else:
            key = (a, b)
        value = cache.get(key)
        if value is None:
            value = base(*key)
            cache[key] = value
        return value if value > threshold else 0.0

    return sim
