"""Levenshtein (edit) distance and its normalized similarity.

Pure-Python two-row dynamic program — no dependencies, O(len(a)·len(b))
time, O(min(len)) space.  The normalized form maps distance into a
similarity in [0, 1] suitable for the Eq. 21 support adjustment.
"""

from __future__ import annotations

__all__ = ["levenshtein_distance", "normalized_levenshtein"]


def levenshtein_distance(a: str, b: str) -> int:
    """Minimum number of single-character edits transforming ``a`` into ``b``."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner dimension.
    if len(b) < len(a):
        a, b = b, a
    previous = list(range(len(a) + 1))
    for i, char_b in enumerate(b, start=1):
        current = [i]
        for j, char_a in enumerate(a, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (char_a != char_b)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def normalized_levenshtein(a: str, b: str) -> float:
    """``1 - distance / max(len)`` — 1.0 for equal strings, 0.0 for disjoint."""
    if a == b:
        return 1.0
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / longest
