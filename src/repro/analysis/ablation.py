"""One-factor-at-a-time ablation of DATE's design choices.

DESIGN.md §4 documents four decision points where the paper text is
ambiguous or where we deliberately deviate (with a paper-literal mode
kept available).  This experiment quantifies each choice on seeded
datasets:

- ``ordering``: greedy order of step 2 (``dependent_first`` per the
  prose vs ``independent_first`` per the OCR'd pseudocode);
- ``discount_mode``: Eq. 16's directed discount vs the total-dependence
  variant;
- ``discounted_posterior``: Dong-style vote discounting in the accuracy
  update vs the literal Alg. 1 line 23;
- ``granularity``: worker-level vs task-level accuracy (Eq. 17).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.date import DATE
from ..core.indexing import DatasetIndex
from ..simulation.config import ExperimentConfig
from ..simulation.metrics import precision
from ..simulation.stats import SummaryStats, summarize

__all__ = ["AblationRow", "run_date_ablation", "ABLATION_VARIANTS"]

#: Name -> DateConfig overrides, relative to the library defaults.
ABLATION_VARIANTS: dict[str, dict[str, object]] = {
    "default": {},
    "ordering=independent_first": {"ordering": "independent_first"},
    "discount=total": {"discount_mode": "total"},
    "posterior=literal(eq20)": {"discounted_posterior": False},
    "granularity=task": {"granularity": "task"},
    "paper-literal": {
        "discounted_posterior": False,
        "ordering": "dependent_first",
        "discount_mode": "directed",
    },
}


@dataclass(frozen=True)
class AblationRow:
    """Precision summary for one configuration variant."""

    variant: str
    overrides: dict[str, object]
    precision: SummaryStats

    def __str__(self) -> str:
        return f"{self.variant}: {self.precision}"


def run_date_ablation(
    config: ExperimentConfig | None = None,
    *,
    variants: dict[str, dict[str, object]] | None = None,
) -> list[AblationRow]:
    """Run every variant on the same seeded instances.

    All variants see byte-identical datasets, so the precision deltas
    are purely algorithmic.  Returns rows in variant order.
    """
    config = config or ExperimentConfig(
        n_tasks=120, n_workers=60, n_copiers=15, target_claims=2400, instances=3
    )
    variants = variants if variants is not None else ABLATION_VARIANTS
    datasets = config.datasets()
    indexes = [DatasetIndex(ds) for ds in datasets]

    rows = []
    for name, overrides in variants.items():
        date_config = config.date.evolve(**overrides) if overrides else config.date
        values = [
            precision(DATE(date_config).run(ds, index=idx), ds)
            for ds, idx in zip(datasets, indexes)
        ]
        rows.append(
            AblationRow(
                variant=name,
                overrides=dict(overrides),
                precision=summarize(values),
            )
        )
    return rows
