"""Post-hoc analysis tools (extensions beyond the paper's evaluation).

- :mod:`repro.analysis.dependence_graph` — turn DATE's pairwise
  dependence posteriors into a directed copy graph (networkx), extract
  likely copier clusters, and score detection against ground truth;
- :mod:`repro.analysis.ablation` — one-factor-at-a-time ablation of
  the DATE design choices documented in DESIGN.md §4 (ordering,
  discount mode, posterior discounting, accuracy granularity).
"""

from .ablation import AblationRow, run_date_ablation
from .dependence_graph import (
    copier_clusters,
    dependence_graph,
    detection_scores,
    likely_sources,
)

__all__ = [
    "AblationRow",
    "copier_clusters",
    "dependence_graph",
    "detection_scores",
    "likely_sources",
    "run_date_ablation",
]
