"""Copy-graph analysis of DATE's dependence posteriors.

DATE estimates, for every co-answering worker pair, the probability of
each copy direction.  Thresholding those posteriors yields a directed
*copy graph*: an edge ``a -> b`` means "a likely copies from b".  This
module builds that graph (networkx), extracts the copier clusters the
platform would audit, ranks likely source workers, and — when the
dataset carries generative ground truth — scores the detector.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..core.date import TruthDiscoveryResult
from ..errors import ConfigurationError
from ..types import Dataset

__all__ = [
    "dependence_graph",
    "copier_clusters",
    "likely_sources",
    "detection_scores",
    "DetectionScores",
]


def dependence_graph(
    result: TruthDiscoveryResult,
    *,
    threshold: float = 0.5,
) -> nx.DiGraph:
    """Build the directed copy graph from a truth-discovery result.

    An edge ``a -> b`` (a copies from b) is added when
    ``P(a → b | D) >= threshold``; the posterior is stored as the edge
    attribute ``probability``.  All workers appear as nodes with their
    estimated accuracy as the ``accuracy`` attribute.
    """
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError("threshold must be in (0, 1]")
    graph = nx.DiGraph()
    for worker_id in result.worker_ids:
        graph.add_node(worker_id, accuracy=result.worker_accuracy.get(worker_id, 0.0))
    for (a, b), posterior in result.dependence.items():
        if posterior.p_a_to_b >= threshold:
            graph.add_edge(a, b, probability=posterior.p_a_to_b)
        if posterior.p_b_to_a >= threshold:
            graph.add_edge(b, a, probability=posterior.p_b_to_a)
    return graph


def copier_clusters(
    result: TruthDiscoveryResult,
    *,
    threshold: float = 0.5,
    min_size: int = 2,
) -> list[set[str]]:
    """Weakly-connected groups of workers linked by suspected copying.

    Each cluster is a candidate audit unit: a source plus its likely
    copiers (directionality inside the cluster can be ambiguous when
    copies are verbatim).  Returned largest-first.
    """
    graph = dependence_graph(result, threshold=threshold)
    graph.remove_nodes_from([n for n in list(graph) if graph.degree(n) == 0])
    clusters = [set(c) for c in nx.weakly_connected_components(graph)]
    return sorted(
        (c for c in clusters if len(c) >= min_size),
        key=lambda c: (-len(c), sorted(c)),
    )


def likely_sources(
    result: TruthDiscoveryResult,
    *,
    threshold: float = 0.5,
    top: int | None = None,
) -> list[tuple[str, float]]:
    """Rank workers by how much copying mass points *at* them.

    A worker's source score is the sum of ``P(x → worker)`` over all
    incoming suspected-copy edges; the workers others copy from rank
    highest.  Returns ``(worker_id, score)`` pairs, descending.
    """
    graph = dependence_graph(result, threshold=threshold)
    scores = {
        node: sum(
            data["probability"] for _, _, data in graph.in_edges(node, data=True)
        )
        for node in graph
    }
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    ranked = [(w, s) for w, s in ranked if s > 0.0]
    return ranked[:top] if top is not None else ranked


@dataclass(frozen=True)
class DetectionScores:
    """Precision/recall of copier detection against generative truth.

    A worker counts as *detected* when it belongs to any suspected-copy
    cluster.  ``pair_recall`` scores the finer-grained goal: how many
    true (copier, source) pairs are linked by an edge in either
    direction.
    """

    threshold: float
    detected_copiers: int
    true_copiers: int
    false_positives: int
    flagged_workers: int
    pair_recall: float

    @property
    def recall(self) -> float:
        """Fraction of true copiers that were flagged."""
        if self.true_copiers == 0:
            return 1.0
        return self.detected_copiers / self.true_copiers

    @property
    def precision(self) -> float:
        """Fraction of flagged workers that are copiers *or sources*."""
        if self.flagged_workers == 0:
            return 1.0
        return 1.0 - self.false_positives / self.flagged_workers


def detection_scores(
    result: TruthDiscoveryResult,
    dataset: Dataset,
    *,
    threshold: float = 0.5,
) -> DetectionScores:
    """Score copier detection against the dataset's generative truth."""
    clusters = copier_clusters(result, threshold=threshold)
    flagged = {worker for cluster in clusters for worker in cluster}
    copiers = {w.worker_id for w in dataset.workers if w.is_copier}
    sources = {s for w in dataset.workers if w.is_copier for s in w.sources}
    involved = copiers | sources

    detected = len(flagged & copiers)
    false_positives = len(flagged - involved)

    graph = dependence_graph(result, threshold=threshold)
    true_pairs = [
        (w.worker_id, source)
        for w in dataset.workers
        if w.is_copier
        for source in w.sources
    ]
    linked = sum(
        1
        for copier, source in true_pairs
        if graph.has_edge(copier, source) or graph.has_edge(source, copier)
    )
    return DetectionScores(
        threshold=threshold,
        detected_copiers=detected,
        true_copiers=len(copiers),
        false_positives=false_positives,
        flagged_workers=len(flagged),
        pair_recall=linked / len(true_pairs) if true_pairs else 1.0,
    )
