"""Synthetic stand-in for the eBay Palm Pilot M515 bid-price dataset.

The paper draws worker costs from 5017 eBay bid prices for a Palm
Pilot M515 PDA [41].  That dump is not available offline, so
:class:`PalmM515LikeSampler` reproduces its qualitative properties:

- right-skewed, unimodal prices (lognormal body);
- a hard floor (opening bids) and a soft ceiling (buy-it-now region),
  implemented as truncation to ``[floor, ceiling]`` dollars;
- heaping on "round" amounts — online bidders disproportionately bid
  multiples of $5, which we mimic by snapping a fraction of samples.

Costs are then affinely rescaled into the range the paper's own numbers
imply (the Fig. 8 workers have true costs 3 and 8, so costs live in
single digits); see DESIGN.md §3.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, ensure_generator

__all__ = ["PalmM515LikeSampler", "sample_costs"]


class PalmM515LikeSampler:
    """Seeded sampler of PDA-auction-like bid prices (in dollars).

    Parameters mirror the empirical shape: ``median`` and ``sigma``
    parameterize the lognormal body, ``floor``/``ceiling`` truncate,
    ``round_fraction`` of samples are snapped to ``round_to``-dollar
    increments.
    """

    def __init__(
        self,
        *,
        median: float = 120.0,
        sigma: float = 0.45,
        floor: float = 20.0,
        ceiling: float = 400.0,
        round_fraction: float = 0.5,
        round_to: float = 5.0,
    ):
        if median <= 0 or sigma <= 0:
            raise ConfigurationError("median and sigma must be positive")
        if not 0 < floor < ceiling:
            raise ConfigurationError("need 0 < floor < ceiling")
        if not 0.0 <= round_fraction <= 1.0:
            raise ConfigurationError("round_fraction must be in [0, 1]")
        if round_to <= 0:
            raise ConfigurationError("round_to must be positive")
        self.median = median
        self.sigma = sigma
        self.floor = floor
        self.ceiling = ceiling
        self.round_fraction = round_fraction
        self.round_to = round_to

    def __fingerprint__(self) -> dict:
        """Identifying parameters for the run ledger's canonical
        fingerprint — the full sampler shape (the sampler is otherwise
        stateless; randomness comes from the per-call seed)."""
        return {
            "median": self.median,
            "sigma": self.sigma,
            "floor": self.floor,
            "ceiling": self.ceiling,
            "round_fraction": self.round_fraction,
            "round_to": self.round_to,
        }

    def sample(self, count: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``count`` bid prices in dollars."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        rng = ensure_generator(seed)
        prices = rng.lognormal(mean=np.log(self.median), sigma=self.sigma, size=count)
        prices = np.clip(prices, self.floor, self.ceiling)
        snap = rng.random(count) < self.round_fraction
        prices[snap] = np.round(prices[snap] / self.round_to) * self.round_to
        return np.clip(prices, self.floor, self.ceiling)


def sample_costs(
    count: int,
    seed: SeedLike = None,
    *,
    cost_range: tuple[float, float] = (1.0, 10.0),
    sampler: PalmM515LikeSampler | None = None,
) -> np.ndarray:
    """Draw worker costs: auction-shaped prices rescaled into ``cost_range``.

    The affine rescale maps the sampler's truncation interval (not the
    realized min/max, which would couple costs across workers) onto
    ``cost_range``, preserving the distribution shape.
    """
    lo, hi = cost_range
    if not 0 <= lo < hi:
        raise ConfigurationError("cost_range must satisfy 0 <= lo < hi")
    sampler = sampler or PalmM515LikeSampler()
    prices = sampler.sample(count, seed)
    scale = (hi - lo) / (sampler.ceiling - sampler.floor)
    return lo + (prices - sampler.floor) * scale
