"""Synthetic crowdsourcing worlds with independent workers.

:func:`generate_world` builds a seeded :class:`~repro.types.Dataset`
of *independent* workers; :func:`~repro.datasets.copiers.inject_copiers`
then converts a subset into copiers.  Together they parameterize every
experiment in the harness.

Key modelling choices (all configurable through :class:`WorldConfig`):

- **Reliability.** Worker reliabilities are Beta-distributed.  The
  default ``Beta(5.5, 4.5)`` (mean 0.55, clipped to [0.3, 0.9]) was
  calibrated so the paper's precision band (0.82-0.92, Fig. 3) and
  method separation (DATE > NC > MV, Fig. 4) reproduce: workers are
  right more often than chance but individually noisy — the regime
  where accuracy-aware truth discovery beats majority voting without
  trivializing the problem.
- **Participation decay.** The probability a worker answers task ``j``
  decays linearly with the task index.  The paper observes exactly this
  in its data ("tasks with small index are performed by more workers")
  and attributes the declining precision-vs-tasks curve of Fig. 4a to
  it.  Total expected claims are calibrated to ``target_claims``.
- **False values.** An erring worker picks among the task's false
  values uniformly or with a Zipf bias (popular wrong answers), the
  generative counterpart of Sec. IV-B.
- **Auction attributes.** Per-task accuracy requirements ``Θ_j`` and
  platform values ``V_j`` are uniform over configurable ranges
  (paper defaults: ``U[2, 4]`` and ``U[5, 8]``); worker costs come from
  the auction-price sampler.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, ensure_generator, spawn
from ..types import Dataset, Task, WorkerProfile
from .auction_prices import PalmM515LikeSampler, sample_costs

__all__ = ["WorldConfig", "generate_world"]


@dataclass(frozen=True)
class WorldConfig:
    """Parameters of a synthetic crowdsourcing world (defaults: Sec. VII-A)."""

    n_tasks: int = 300
    n_workers: int = 120
    #: Expected total number of claims across all workers and tasks.
    target_claims: int = 6000
    #: Number of false values per task (``num_j``); the Qatar-Living
    #: analogue uses 2 (domain Good/Bad/Other).
    num_false: int = 2
    #: Shared label set used for every task's domain.  When ``None``,
    #: each task gets its own synthetic labels ``t<j>_v<k>``.
    shared_labels: tuple[str, ...] | None = None
    #: Linear participation decay across the task index: task ``m-1``
    #: is answered at ``(1 - participation_decay)`` times the rate of
    #: task 0.
    participation_decay: float = 0.6
    #: Beta parameters of the reliability distribution (mean a/(a+b)).
    reliability_alpha: float = 5.5
    reliability_beta: float = 4.5
    #: Reliabilities are clipped into this interval so no worker is a
    #: perfect oracle or pure noise.
    reliability_clip: tuple[float, float] = (0.30, 0.90)
    #: How erring workers pick false values: "uniform" or "zipf".
    false_value_style: str = "uniform"
    zipf_exponent: float = 1.2
    #: Per-task accuracy requirement Θ_j ~ U[lo, hi] (paper: [2, 4]).
    requirement_range: tuple[float, float] = (2.0, 4.0)
    #: Per-task platform value V_j ~ U[lo, hi] (paper: [5, 8]).
    value_range: tuple[float, float] = (5.0, 8.0)
    #: Worker cost range after rescaling the auction-price samples.
    cost_range: tuple[float, float] = (1.0, 10.0)
    cost_sampler: PalmM515LikeSampler = field(default_factory=PalmM515LikeSampler)

    def __post_init__(self) -> None:
        if self.n_tasks < 1 or self.n_workers < 1:
            raise ConfigurationError("need at least one task and one worker")
        if self.target_claims < self.n_tasks:
            raise ConfigurationError(
                "target_claims must be at least n_tasks (every task needs "
                "a fighting chance of an answer)"
            )
        if self.num_false < 1:
            raise ConfigurationError("num_false must be >= 1")
        if self.shared_labels is not None and len(self.shared_labels) != (
            self.num_false + 1
        ):
            raise ConfigurationError(
                "shared_labels must contain exactly num_false + 1 labels"
            )
        if not 0.0 <= self.participation_decay < 1.0:
            raise ConfigurationError("participation_decay must be in [0, 1)")
        if self.reliability_alpha <= 0 or self.reliability_beta <= 0:
            raise ConfigurationError("reliability Beta parameters must be positive")
        lo, hi = self.reliability_clip
        if not 0.0 < lo < hi < 1.0:
            raise ConfigurationError("reliability_clip must satisfy 0 < lo < hi < 1")
        if self.false_value_style not in ("uniform", "zipf"):
            raise ConfigurationError(
                f"false_value_style must be 'uniform' or 'zipf', "
                f"got {self.false_value_style!r}"
            )
        if self.zipf_exponent < 0:
            raise ConfigurationError("zipf_exponent must be >= 0")
        for name in ("requirement_range", "value_range", "cost_range"):
            rlo, rhi = getattr(self, name)
            if rlo < 0 or rhi < rlo:
                raise ConfigurationError(f"{name} must satisfy 0 <= lo <= hi")

    def evolve(self, **changes: Any) -> "WorldConfig":
        """Return a copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)


def _participation_profile(config: WorldConfig) -> np.ndarray:
    """Per-task answer probability, calibrated to the claim budget.

    ``p_j = base · (1 - decay · j/(m-1))``, with ``base`` chosen so the
    expected number of claims over all workers equals ``target_claims``
    (capped at probability 1).
    """
    m = config.n_tasks
    if m == 1:
        shape = np.ones(1)
    else:
        shape = 1.0 - config.participation_decay * (np.arange(m) / (m - 1))
    expected_per_worker = config.target_claims / config.n_workers
    base = expected_per_worker / shape.sum()
    return np.clip(base * shape, 0.0, 1.0)


def _false_value_probabilities(config: WorldConfig) -> np.ndarray:
    """Probability over a task's false values for an erring worker."""
    if config.false_value_style == "uniform":
        return np.full(config.num_false, 1.0 / config.num_false)
    ranks = np.arange(1, config.num_false + 1, dtype=np.float64)
    weights = ranks**-config.zipf_exponent
    return weights / weights.sum()


def _task_domains(config: WorldConfig, rng: np.random.Generator) -> list[Task]:
    """Draw tasks: domain, ground truth, requirement, and value."""
    req_lo, req_hi = config.requirement_range
    val_lo, val_hi = config.value_range
    width = len(str(config.n_tasks - 1))
    tasks = []
    for j in range(config.n_tasks):
        if config.shared_labels is not None:
            domain = tuple(config.shared_labels)
        else:
            domain = tuple(
                f"t{j:0{width}d}_v{k}" for k in range(config.num_false + 1)
            )
        truth = domain[int(rng.integers(len(domain)))]
        tasks.append(
            Task(
                task_id=f"t{j:0{width}d}",
                domain=domain,
                requirement=float(rng.uniform(req_lo, req_hi)),
                value=float(rng.uniform(val_lo, val_hi)),
                truth=truth,
            )
        )
    return tasks


def draw_independent_value(
    task: Task,
    reliability: float,
    rng: np.random.Generator,
    false_probs: np.ndarray,
) -> str:
    """One independent answer: the truth w.p. ``reliability``, else a false value.

    False values are ordered by their position in the task domain
    (truth removed), so the Zipf bias consistently favors the same
    wrong answer per task — the "everyone thinks it's Sydney" effect.
    """
    if rng.random() < reliability:
        return task.truth  # type: ignore[return-value]
    false_values = [v for v in task.domain if v != task.truth]
    pick = int(rng.choice(len(false_values), p=false_probs[: len(false_values)]))
    return false_values[pick]


def generate_world(config: WorldConfig | None = None, seed: SeedLike = None) -> Dataset:
    """Generate a seeded world of independent workers.

    The returned dataset carries full generative ground truth (task
    truths, worker reliabilities and costs) for evaluation; estimation
    algorithms never read those fields.
    """
    config = config or WorldConfig()
    rng = ensure_generator(seed)
    task_rng, worker_rng, claim_rng, cost_rng = spawn(rng, 4)

    tasks = _task_domains(config, task_rng)
    participation = _participation_profile(config)
    false_probs = _false_value_probabilities(config)

    reliabilities = np.clip(
        worker_rng.beta(
            config.reliability_alpha, config.reliability_beta, size=config.n_workers
        ),
        *config.reliability_clip,
    )
    costs = sample_costs(
        config.n_workers,
        cost_rng,
        cost_range=config.cost_range,
        sampler=config.cost_sampler,
    )

    width = len(str(config.n_workers - 1))
    workers = tuple(
        WorkerProfile(
            worker_id=f"w{i:0{width}d}",
            cost=float(costs[i]),
            reliability=float(reliabilities[i]),
        )
        for i in range(config.n_workers)
    )

    claims: dict[tuple[str, str], str] = {}
    for worker in workers:
        mask = claim_rng.random(config.n_tasks) < participation
        for j in np.nonzero(mask)[0]:
            task = tasks[j]
            claims[(worker.worker_id, task.task_id)] = draw_independent_value(
                task, worker.reliability, claim_rng, false_probs
            )
    return Dataset(tasks=tuple(tasks), workers=workers, claims=claims)
