"""Copier injection: convert independent workers into copiers.

Implements the evaluation setup of Sec. VII-A ("we randomly selected 30
workers and set them to be copiers — the data of these workers is
copied from the other workers") on top of any existing dataset:

- each designated copier is assigned one or more *source* workers,
  chosen among the non-copiers so the no-loop-dependence assumption of
  Sec. II-B holds by construction;
- the copier's claims are regenerated: for each task its source
  answered, the copier answers with probability ``follow_prob``; the
  answer is the source's value with probability ``copy_prob`` (the
  generative ``r``) and an independent draw from the copier's own
  reliability otherwise — the paper's "copiers may revise some of the
  copied values or add additional values";
- with probability ``extra_prob`` the copier also answers tasks its
  source skipped, purely independently.

Worker profiles in the returned dataset record the copier flag, the
sources, and the copy probability, so evaluation code can measure
copier-detection quality against ground truth.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, ensure_generator
from ..types import Dataset, WorkerProfile
from .synthetic import WorldConfig, _false_value_probabilities, draw_independent_value

__all__ = ["inject_copiers"]


def inject_copiers(
    dataset: Dataset,
    n_copiers: int,
    *,
    copy_prob: float = 0.8,
    follow_prob: float = 0.9,
    extra_prob: float = 0.05,
    sources_per_copier: int = 1,
    source_pool_size: int | None = None,
    source_selection: str = "uniform",
    copier_ids: Sequence[str] | None = None,
    world_config: WorldConfig | None = None,
    seed: SeedLike = None,
) -> Dataset:
    """Return a copy of ``dataset`` with ``n_copiers`` workers turned into copiers.

    Parameters
    ----------
    copy_prob:
        Probability a copier's answer is copied verbatim from a source
        (the generative counterpart of the paper's ``r``).
    follow_prob:
        Probability the copier answers a task its source answered.
    extra_prob:
        Probability the copier independently answers a task its source
        skipped ("added values" are independent contributions).
    sources_per_copier:
        Number of source workers each copier draws from (the paper
        allows copying "from multiple workers by union").
    source_pool_size:
        When set, all copiers draw their sources from a common random
        pool of this many independent workers, clustering several
        copiers behind the same source — the Table 1 pattern (workers 4
        and 5 both copy worker 3) that makes copiers genuinely damaging
        to vote-based truth discovery.  ``None`` lets every copier pick
        among all independent workers.
    source_selection:
        ``"uniform"`` draws the source pool uniformly;
        ``"low_reliability"`` draws it among the least reliable third of
        independent workers — the Table 1 narrative, where copiers
        replicate a *bad* worker and amplify its errors.  This is what
        makes undiscounted copying actively harmful (and the assumed
        ``r`` matter, Fig. 3b).
    copier_ids:
        Explicit copier ids; randomly drawn when omitted.
    world_config:
        Supplies the false-value style for the copier's independent
        draws; defaults to a uniform style matching the dataset's
        domain sizes.
    seed:
        Randomness for copier choice, source assignment, and answers.
    """
    if n_copiers < 0:
        raise ConfigurationError("n_copiers must be >= 0")
    if not 0.0 <= copy_prob <= 1.0:
        raise ConfigurationError("copy_prob must be in [0, 1]")
    if not 0.0 <= follow_prob <= 1.0:
        raise ConfigurationError("follow_prob must be in [0, 1]")
    if not 0.0 <= extra_prob <= 1.0:
        raise ConfigurationError("extra_prob must be in [0, 1]")
    if sources_per_copier < 1:
        raise ConfigurationError("sources_per_copier must be >= 1")
    if source_pool_size is not None and source_pool_size < 1:
        raise ConfigurationError("source_pool_size must be >= 1 when given")
    if source_selection not in ("uniform", "low_reliability"):
        raise ConfigurationError(
            "source_selection must be 'uniform' or 'low_reliability', "
            f"got {source_selection!r}"
        )
    if n_copiers == 0:
        return dataset

    rng = ensure_generator(seed)
    all_ids = [w.worker_id for w in dataset.workers]
    if copier_ids is None:
        if n_copiers > len(all_ids) - 1:
            raise ConfigurationError(
                "n_copiers must leave at least one independent worker"
            )
        chosen = rng.choice(len(all_ids), size=n_copiers, replace=False)
        copier_set = {all_ids[int(i)] for i in chosen}
    else:
        copier_set = set(copier_ids)
        if len(copier_set) != n_copiers:
            raise ConfigurationError("copier_ids must contain n_copiers distinct ids")
        unknown = copier_set - set(all_ids)
        if unknown:
            raise ConfigurationError(f"unknown copier ids: {sorted(unknown)}")
        if len(copier_set) >= len(all_ids):
            raise ConfigurationError("at least one worker must stay independent")

    independents = [w for w in all_ids if w not in copier_set]
    if source_selection == "low_reliability":
        # Source candidates: the least reliable third of the
        # independents (at least as many as the pool needs).
        by_reliability = sorted(
            independents, key=lambda w: dataset.worker_by_id[w].reliability
        )
        floor = max(len(independents) // 3, source_pool_size or 1, 1)
        independents = sorted(by_reliability[:floor])
    if source_pool_size is not None and source_pool_size < len(independents):
        pool_picks = rng.choice(
            len(independents), size=source_pool_size, replace=False
        )
        independents = sorted(independents[int(i)] for i in pool_picks)
    max_false = max((len(t.domain) - 1 for t in dataset.tasks), default=1)
    if world_config is not None:
        false_probs = _false_value_probabilities(world_config)
    else:
        false_probs = np.full(max(max_false, 1), 1.0 / max(max_false, 1))

    new_claims = dict(dataset.claims)
    new_workers: list[WorkerProfile] = []
    for worker in dataset.workers:
        if worker.worker_id not in copier_set:
            new_workers.append(worker)
            continue
        picks = rng.choice(
            len(independents),
            size=min(sources_per_copier, len(independents)),
            replace=False,
        )
        sources = tuple(sorted(independents[int(i)] for i in picks))
        new_workers.append(
            replace(
                worker,
                is_copier=True,
                sources=sources,
                copy_prob=copy_prob,
            )
        )

        # Drop the worker's previous (independent) claims entirely.
        for task in dataset.tasks:
            new_claims.pop((worker.worker_id, task.task_id), None)

        source_claims: dict[str, list[str]] = {}
        for source_id in sources:
            for task_id, value in dataset.claims_by_worker[source_id].items():
                source_claims.setdefault(task_id, []).append(value)

        for task in dataset.tasks:
            task_id = task.task_id
            if task_id in source_claims:
                if rng.random() >= follow_prob:
                    continue
                if rng.random() < copy_prob:
                    options = source_claims[task_id]
                    value = options[int(rng.integers(len(options)))]
                else:
                    value = draw_independent_value(
                        task, worker.reliability, rng, false_probs
                    )
                new_claims[(worker.worker_id, task_id)] = value
            elif extra_prob > 0.0 and rng.random() < extra_prob:
                new_claims[(worker.worker_id, task_id)] = draw_independent_value(
                    task, worker.reliability, rng, false_probs
                )
    return Dataset(
        tasks=dataset.tasks, workers=tuple(new_workers), claims=new_claims
    )
