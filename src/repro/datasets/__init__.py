"""Dataset substrate: synthetic worlds, copier injection, presets, IO.

The paper evaluates on two external datasets we cannot access offline
(Qatar Living Forum answers and an eBay bid-price dump); per DESIGN.md
§3 this package provides seeded synthetic equivalents with the same
shape, plus the generic generators they are built from:

- :func:`generate_world` — independent-worker crowdsourcing world;
- :func:`inject_copiers` — convert chosen workers into copiers;
- :func:`generate_qatar_living_like` — the paper's default workload
  (300 tasks, 120 workers, ≈6000 claims, 30 copiers);
- :class:`PalmM515LikeSampler` — right-skewed bid-price sampler
  standing in for the eBay Palm Pilot M515 auction data;
- :func:`save_dataset` / :func:`load_dataset` — CSV round-trip.
"""

from .auction_prices import PalmM515LikeSampler, sample_costs
from .copiers import inject_copiers
from .io import load_dataset, save_dataset
from .qatar_living import generate_qatar_living_like
from .synthetic import WorldConfig, generate_world

__all__ = [
    "PalmM515LikeSampler",
    "WorldConfig",
    "generate_qatar_living_like",
    "generate_world",
    "inject_copiers",
    "load_dataset",
    "sample_costs",
    "save_dataset",
]
