"""The paper's default workload: a Qatar-Living-Forum-like dataset.

Sec. VII-A evaluates on SemEval-2015 Task 3 data from the Qatar Living
Forum: 300 questions, 120 workers, 6000 comments, each annotated
"Good" / "Bad" / "Other", with 30 randomly chosen workers turned into
copiers.  That dump is not downloadable here, so this preset generates
a seeded synthetic analogue with the same shape (see DESIGN.md §3 for
the substitution argument):

- 300 tasks over the shared 3-label domain (one true + ``num_j = 2``
  false values per task);
- 120 workers, ≈6000 claims with participation decaying over the task
  index (the property the paper credits for Fig. 4a's shape);
- 30 copiers with generative copy probability ``copy_prob``;
- per-task requirements ``Θ_j ~ U[2, 4]``, values ``V_j ~ U[5, 8]``,
  and costs from the auction-price sampler rescaled to [1, 10].
"""

from __future__ import annotations

from ..rng import SeedLike, ensure_generator, spawn
from ..types import Dataset
from .copiers import inject_copiers
from .synthetic import WorldConfig, generate_world

__all__ = ["generate_qatar_living_like", "qatar_world_config", "QATAR_LIVING_LABELS"]

#: The SemEval-2015 Task 3 comment annotation labels.
QATAR_LIVING_LABELS: tuple[str, str, str] = ("Good", "Bad", "Other")


def qatar_world_config(
    n_tasks: int,
    n_workers: int,
    target_claims: int,
    *,
    base: WorldConfig | None = None,
) -> WorldConfig:
    """A :class:`WorldConfig` over the shared Good/Bad/Other domain.

    The one place the label-set/`num_false` pairing is encoded — the
    scenario lab, the adversary sweeps, and this preset all size their
    worlds through it.
    """
    return (base or WorldConfig()).evolve(
        n_tasks=n_tasks,
        n_workers=n_workers,
        target_claims=target_claims,
        num_false=len(QATAR_LIVING_LABELS) - 1,
        shared_labels=QATAR_LIVING_LABELS,
    )


def generate_qatar_living_like(
    seed: SeedLike = None,
    *,
    n_tasks: int = 300,
    n_workers: int = 120,
    n_copiers: int = 30,
    target_claims: int = 6000,
    copy_prob: float = 0.8,
    source_pool_size: int | None = None,
    source_selection: str = "low_reliability",
    config: WorldConfig | None = None,
) -> Dataset:
    """Generate the paper's default evaluation workload.

    ``config`` overrides the underlying :class:`WorldConfig` wholesale
    (its size fields are then replaced by the explicit arguments), which
    the sweep harness uses to vary reliability shapes or false-value
    styles while keeping the preset's structure.
    """
    rng = ensure_generator(seed)
    world_rng, copier_rng = spawn(rng, 2)
    world_config = qatar_world_config(
        n_tasks, n_workers, target_claims, base=config
    )
    if source_pool_size is None and n_copiers > 0:
        # Cluster roughly five copiers behind each source, the Table 1
        # pattern scaled up; this concentration makes copying damaging
        # enough to vote-based methods that the paper's Fig. 4 gaps
        # (DATE ahead of MV and NC by several points) reproduce.
        source_pool_size = max(n_copiers // 5, 2)
    world = generate_world(world_config, world_rng)
    return inject_copiers(
        world,
        n_copiers,
        copy_prob=copy_prob,
        source_pool_size=source_pool_size,
        source_selection=source_selection,
        world_config=world_config,
        seed=copier_rng,
    )
