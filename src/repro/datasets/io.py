"""CSV round-trip for datasets.

A dataset serializes to three flat CSV files in a directory —
``tasks.csv``, ``workers.csv``, ``claims.csv`` — human-inspectable and
diff-friendly, so generated worlds can be archived next to experiment
results and reloaded bit-identically.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..errors import DataFormatError
from ..types import Dataset, Task, WorkerProfile

__all__ = ["save_dataset", "load_dataset"]

_DOMAIN_SEP = "|"

_TASK_FIELDS = ["task_id", "domain", "requirement", "value", "truth"]
_WORKER_FIELDS = [
    "worker_id",
    "cost",
    "reliability",
    "is_copier",
    "sources",
    "copy_prob",
]
_CLAIM_FIELDS = ["worker_id", "task_id", "value"]


def save_dataset(dataset: Dataset, directory: str | Path) -> Path:
    """Write ``tasks.csv``, ``workers.csv`` and ``claims.csv`` under ``directory``.

    Returns the directory path.  Domain values must not contain the
    ``|`` separator (validated before writing anything).
    """
    directory = Path(directory)
    for task in dataset.tasks:
        for value in task.domain:
            if _DOMAIN_SEP in value:
                raise DataFormatError(
                    f"task {task.task_id}: domain value {value!r} contains "
                    f"the reserved separator {_DOMAIN_SEP!r}"
                )
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / "tasks.csv", "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_TASK_FIELDS)
        writer.writeheader()
        for task in dataset.tasks:
            writer.writerow(
                {
                    "task_id": task.task_id,
                    "domain": _DOMAIN_SEP.join(task.domain),
                    "requirement": repr(task.requirement),
                    "value": repr(task.value),
                    "truth": task.truth if task.truth is not None else "",
                }
            )

    with open(directory / "workers.csv", "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_WORKER_FIELDS)
        writer.writeheader()
        for worker in dataset.workers:
            writer.writerow(
                {
                    "worker_id": worker.worker_id,
                    "cost": repr(worker.cost),
                    "reliability": repr(worker.reliability),
                    "is_copier": "1" if worker.is_copier else "0",
                    "sources": _DOMAIN_SEP.join(worker.sources),
                    "copy_prob": repr(worker.copy_prob),
                }
            )

    with open(directory / "claims.csv", "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CLAIM_FIELDS)
        writer.writeheader()
        for (worker_id, task_id), value in sorted(dataset.claims.items()):
            writer.writerow(
                {"worker_id": worker_id, "task_id": task_id, "value": value}
            )
    return directory


def _read_rows(path: Path, expected_fields: list[str]) -> list[dict[str, str]]:
    if not path.exists():
        raise DataFormatError(f"missing dataset file: {path}")
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or list(reader.fieldnames) != expected_fields:
            raise DataFormatError(
                f"{path.name}: expected columns {expected_fields}, "
                f"got {reader.fieldnames}"
            )
        return list(reader)


def load_dataset(directory: str | Path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    directory = Path(directory)
    tasks = []
    for row in _read_rows(directory / "tasks.csv", _TASK_FIELDS):
        domain = tuple(row["domain"].split(_DOMAIN_SEP)) if row["domain"] else ()
        tasks.append(
            Task(
                task_id=row["task_id"],
                domain=domain,
                requirement=float(row["requirement"]),
                value=float(row["value"]),
                truth=row["truth"] or None,
            )
        )
    workers = []
    for row in _read_rows(directory / "workers.csv", _WORKER_FIELDS):
        sources = tuple(row["sources"].split(_DOMAIN_SEP)) if row["sources"] else ()
        workers.append(
            WorkerProfile(
                worker_id=row["worker_id"],
                cost=float(row["cost"]),
                reliability=float(row["reliability"]),
                is_copier=row["is_copier"] == "1",
                sources=sources,
                copy_prob=float(row["copy_prob"]),
            )
        )
    claims: dict[tuple[str, str], str] = {}
    for row in _read_rows(directory / "claims.csv", _CLAIM_FIELDS):
        key = (row["worker_id"], row["task_id"])
        if key in claims:
            # A worker submits at most one value per task; silently
            # keeping the last row would make streaming replay
            # (repro.streaming) non-deterministic on corrupt archives.
            raise DataFormatError(
                f"claims.csv: duplicate claim for worker {key[0]!r} "
                f"on task {key[1]!r}"
            )
        claims[key] = row["value"]
    return Dataset(tasks=tuple(tasks), workers=tuple(workers), claims=claims)
