"""Step 2 of DATE: per-value independence probabilities (Eq. 16).

If worker ``i`` copied value ``v`` from someone, ``i``'s claim should
not count as independent support for ``v``.  Exactly enumerating every
dependence structure is exponential, so the paper orders the providers
of each value greedily and discounts each worker only against its
*predecessors* in the order:

    I_v^j(i) = Π_{i' before i} (1 - r · P(i → i' | D))          (Eq. 16)

Ordering (Sec. III-B): the first worker is the one with the highest
total dependence probability inside the group (so its likely copiers
get discounted against it); each subsequent pick is the remaining
worker with the maximal directed dependence on an already-selected
worker (Alg. 1 line 19).  The pseudocode's line 16 is OCR-ambiguous
(argmin); ``ordering="independent_first"`` provides that variant.

The ED baseline (:mod:`repro.baselines.enumerate_dependence`) replaces
this greedy prefix rule with explicit enumeration over co-providers.
"""

from __future__ import annotations

from .dependence import DependencePosterior, directed_probability, total_dependence
from .indexing import DatasetIndex

__all__ = ["independence_probabilities", "order_value_group"]

#: Independence maps: task index -> value -> {worker index: I_v^j(i)}.
IndependenceTable = list[dict[str, dict[int, float]]]

_ORDERINGS = ("dependent_first", "independent_first")


def order_value_group(
    group: tuple[int, ...],
    posteriors: dict[tuple[int, int], DependencePosterior],
    *,
    ordering: str = "dependent_first",
) -> list[int]:
    """Return the greedy processing order for one value group ``W_v^j``.

    Ties break on the worker index so a fixed dataset and seed always
    produce the same order.
    """
    if ordering not in _ORDERINGS:
        raise ValueError(f"ordering must be one of {_ORDERINGS}, got {ordering!r}")
    if len(group) <= 1:
        return list(group)

    totals = {
        i: sum(total_dependence(posteriors, i, other) for other in group if other != i)
        for i in group
    }
    if ordering == "dependent_first":
        first = max(group, key=lambda i: (totals[i], -i))
    else:
        first = min(group, key=lambda i: (totals[i], i))

    selected = [first]
    remaining = [i for i in group if i != first]
    while remaining:
        # Alg. 1 line 19: the remaining worker most likely to have copied
        # from someone already selected.
        def attachment(i: int) -> float:
            return max(directed_probability(posteriors, i, s) for s in selected)

        nxt = max(remaining, key=lambda i: (attachment(i), -i))
        selected.append(nxt)
        remaining.remove(nxt)
    return selected


_DISCOUNT_MODES = ("directed", "total")


def independence_probabilities(
    index: DatasetIndex,
    posteriors: dict[tuple[int, int], DependencePosterior],
    *,
    copy_prob_r: float,
    ordering: str = "dependent_first",
    discount_mode: str = "directed",
) -> IndependenceTable:
    """Compute ``I_v^j(i)`` for every task, value, and providing worker.

    A worker that is the only provider of a value (or the first in its
    group's order) has independence probability 1; later workers are
    discounted by Eq. 16 against each predecessor.

    ``discount_mode`` selects the dependence probability in the product:

    - ``"directed"`` (Eq. 16 as written): ``P(i → i' | D)`` — only the
      probability that *i copied from* the predecessor;
    - ``"total"``: ``P(i → i') + P(i' → i)`` — either direction.  When a
      copier reproduces its source verbatim the two workers' data is
      identical and the direction is unidentifiable (each direction's
      posterior caps near 0.5), so the directed discount can never
      exceed ``1 - r/2``; the total mode discounts the pair's shared
      value to a single effective vote, which is what recovering the
      Table 1 example requires (DESIGN.md §4).
    """
    if not 0.0 < copy_prob_r < 1.0:
        raise ValueError(f"copy_prob_r must be in (0, 1), got {copy_prob_r}")
    if discount_mode not in _DISCOUNT_MODES:
        raise ValueError(
            f"discount_mode must be one of {_DISCOUNT_MODES}, got {discount_mode!r}"
        )
    table: IndependenceTable = []
    for j in range(index.n_tasks):
        per_value: dict[str, dict[int, float]] = {}
        for value, group in index.value_groups[j].items():
            order = order_value_group(group, posteriors, ordering=ordering)
            scores: dict[int, float] = {}
            for position, worker in enumerate(order):
                independence = 1.0
                for predecessor in order[:position]:
                    if discount_mode == "directed":
                        dep = directed_probability(posteriors, worker, predecessor)
                    else:
                        dep = total_dependence(posteriors, worker, predecessor)
                    independence *= 1.0 - copy_prob_r * dep
                scores[worker] = independence
            per_value[value] = scores
        table.append(per_value)
    return table
