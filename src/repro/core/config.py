"""Configuration for the DATE algorithm (Alg. 1 inputs).

:class:`DateConfig` bundles the paper's hyperparameters with the
engineering knobs documented in DESIGN.md §4.  All values are validated
eagerly so a bad sweep fails before any simulation time is spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..errors import ConfigurationError
from .falsedist import FalseValueDistribution, UniformFalseValues
from .support import SimilarityFn

__all__ = ["DateConfig"]


@dataclass(frozen=True)
class DateConfig:
    """Hyperparameters of DATE.

    Parameters (paper defaults from Sec. VII-A in parentheses):

    copy_prob_r:
        Assumed probability ``r`` that a copier's value is copied (0.4).
    initial_accuracy:
        Initial accuracy ``ε`` assigned to every (worker, answered task)
        pair (0.5).
    prior_alpha:
        A-priori total dependence probability ``α`` per worker pair
        (0.2); split evenly over the two copy directions.
    max_iterations:
        Iteration cap ``φ`` (100).
    accuracy_clamp:
        Open interval accuracies are clamped into before entering any
        likelihood, keeping odds ratios finite.
    granularity:
        ``"worker"`` (one accuracy per worker, Eq. 17 averaged over its
        tasks — default) or ``"task"`` (per-task posteriors).
    ordering:
        Greedy ordering rule of step 2, ``"dependent_first"`` (paper
        text) or ``"independent_first"`` (pseudocode variant).
    discount_mode:
        Dependence probability used in the Eq. 16 discount product:
        ``"directed"`` (the equation as written) or ``"total"`` (either
        copy direction — required when copier and source submit
        identical data and the direction is unidentifiable; see
        :func:`repro.core.independence.independence_probabilities`).
    discounted_posterior:
        When true (default), value posteriors weight each vote's
        log-odds by its independence probability (Dong et al. [15]),
        so detected copiers cannot corrupt the accuracy estimates; when
        false, use Alg. 1 line 23 exactly as written.  See
        :func:`repro.core.accuracy.discounted_value_posteriors`.
    false_values:
        False-value distribution model (uniform by default; Sec. IV-B).
    similarity / similarity_weight:
        Optional Sec. IV-A value-similarity adjustment (ρ).
    backend:
        Execution engine: ``"vectorized"`` (default) runs every kernel
        as numpy passes over the integer-coded claim arrays
        (:mod:`repro.core.engine`); ``"reference"`` runs the scalar
        per-element implementations the equations were transcribed
        into.  Both produce the same results (DESIGN.md §7; pinned by
        tests/property/test_property_backends.py) — keep the reference
        around for equivalence testing and line-by-line auditing.
    stable_dependence:
        Vectorized-backend fast path (DESIGN.md §12): maintain the
        pairwise dependence aggregates incrementally across fixed-point
        iterations (:class:`repro.core.engine.IncrementalDependence`),
        so a task whose truth code and claim accuracies did not move
        between iterations skips re-scoring entirely.  Bit-identical to
        the default full recompute — this is a cost knob, never a
        results knob (pinned by
        tests/property/test_property_incremental_dependence.py).
    intra_workers:
        Intra-campaign parallelism for the vectorized dependence and
        posterior kernels: flattened rows are cut into fixed contiguous
        blocks, partial segment sums run on a shared thread pool, and
        the partials reduce in fixed block order — deterministic
        run-to-run, within 1e-9 of serial (exact where fp order
        allows).  1 (default) keeps the bit-exact serial path.
    """

    copy_prob_r: float = 0.4
    initial_accuracy: float = 0.5
    prior_alpha: float = 0.2
    max_iterations: int = 100
    accuracy_clamp: tuple[float, float] = (0.01, 0.99)
    granularity: str = "worker"
    ordering: str = "dependent_first"
    discount_mode: str = "directed"
    discounted_posterior: bool = True
    false_values: FalseValueDistribution = field(default_factory=UniformFalseValues)
    similarity: SimilarityFn | None = None
    similarity_weight: float = 0.0
    backend: str = "vectorized"
    stable_dependence: bool = False
    intra_workers: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.copy_prob_r < 1.0:
            raise ConfigurationError(
                f"copy_prob_r must be in (0, 1), got {self.copy_prob_r}"
            )
        if not 0.0 < self.initial_accuracy < 1.0:
            raise ConfigurationError(
                f"initial_accuracy must be in (0, 1), got {self.initial_accuracy}"
            )
        if not 0.0 < self.prior_alpha < 1.0:
            raise ConfigurationError(
                f"prior_alpha must be in (0, 1), got {self.prior_alpha}"
            )
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        lo, hi = self.accuracy_clamp
        if not 0.0 < lo < hi < 1.0:
            raise ConfigurationError(
                f"accuracy_clamp must satisfy 0 < lo < hi < 1, got {self.accuracy_clamp}"
            )
        if self.granularity not in ("worker", "task"):
            raise ConfigurationError(
                f"granularity must be 'worker' or 'task', got {self.granularity!r}"
            )
        if self.ordering not in ("dependent_first", "independent_first"):
            raise ConfigurationError(
                "ordering must be 'dependent_first' or 'independent_first', "
                f"got {self.ordering!r}"
            )
        if self.discount_mode not in ("directed", "total"):
            raise ConfigurationError(
                f"discount_mode must be 'directed' or 'total', got "
                f"{self.discount_mode!r}"
            )
        if not isinstance(self.false_values, FalseValueDistribution):
            raise ConfigurationError(
                "false_values must be a FalseValueDistribution instance"
            )
        if not 0.0 <= self.similarity_weight <= 1.0:
            raise ConfigurationError(
                f"similarity_weight must be in [0, 1], got {self.similarity_weight}"
            )
        if self.similarity_weight > 0.0 and self.similarity is None:
            raise ConfigurationError(
                "similarity_weight > 0 requires a similarity function"
            )
        if self.backend not in ("vectorized", "reference"):
            raise ConfigurationError(
                f"backend must be 'vectorized' or 'reference', got {self.backend!r}"
            )
        if not isinstance(self.intra_workers, int) or self.intra_workers < 1:
            raise ConfigurationError(
                f"intra_workers must be an int >= 1, got {self.intra_workers!r}"
            )

    def evolve(self, **changes: Any) -> "DateConfig":
        """Return a copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)
