"""Step 3 of DATE (part 2): support counts and truth selection.

The support count of value ``v`` for task ``t_j`` (Alg. 1 line 28) is
the accuracy-weighted, dependence-discounted vote mass

    sc_j(v) = Σ_{i ∈ W_v^j} A_i^j · I_v^j(i)

and the estimated truth is the value with the largest support count.

Section IV-A (Eq. 21) adds cross-value support when different surface
strings mean the same thing (abbreviations, typos):

    sc'_j(v) = sc_j(v) + ρ · Σ_{v' ≠ v} sim(v, v') ·
               Σ_{i ∈ W_{v'} \\ W_v} A_i^j · I_{v'}^j(i)

with ``sim`` a similarity in [0, 1] and ``ρ`` the influence weight.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .indexing import DatasetIndex
from .independence import IndependenceTable

__all__ = ["support_counts", "select_truths"]

#: Similarity callback: (value, other_value) -> similarity in [0, 1].
SimilarityFn = Callable[[str, str], float]

#: Support tables: task index -> {value: support count}.
SupportTable = list[dict[str, float]]


def support_counts(
    index: DatasetIndex,
    accuracy: np.ndarray,
    independence: IndependenceTable,
    *,
    similarity: SimilarityFn | None = None,
    similarity_weight: float = 0.0,
) -> SupportTable:
    """Compute (optionally similarity-adjusted) support counts per task.

    ``similarity`` activates the Sec. IV-A adjustment with weight
    ``similarity_weight`` (the paper's ρ).  Passing a similarity with a
    zero weight is allowed and leaves the base counts unchanged.
    """
    if similarity is not None and not 0.0 <= similarity_weight <= 1.0:
        raise ValueError(
            f"similarity_weight must be in [0, 1], got {similarity_weight}"
        )
    table: SupportTable = []
    for j in range(index.n_tasks):
        groups = index.value_groups[j]
        base: dict[str, float] = {}
        for value, group in groups.items():
            scores = independence[j][value]
            base[value] = float(
                sum(accuracy[i, j] * scores[i] for i in group)
            )
        if similarity is None or similarity_weight == 0.0 or len(base) <= 1:
            table.append(base)
            continue
        adjusted: dict[str, float] = {}
        for value, group in groups.items():
            bonus = 0.0
            members = set(group)
            for other_value, other_group in groups.items():
                if other_value == value:
                    continue
                sim = similarity(value, other_value)
                if sim <= 0.0:
                    continue
                outside = [i for i in other_group if i not in members]
                if not outside:
                    continue
                other_scores = independence[j][other_value]
                mass = sum(accuracy[i, j] * other_scores[i] for i in outside)
                bonus += sim * mass
            adjusted[value] = base[value] + similarity_weight * bonus
        table.append(adjusted)
    return table


def select_truths(support: SupportTable) -> list[str | None]:
    """Pick the value with maximal support per task (lexicographic ties).

    Tasks with no claims yield ``None``.
    """
    truths: list[str | None] = []
    for counts in support:
        if not counts:
            truths.append(None)
            continue
        best_score = max(counts.values())
        candidates = [v for v, s in counts.items() if s == best_score]
        truths.append(min(candidates))
    return truths
