"""Step 1 of DATE: Bayesian pairwise dependence detection (Eqs. 7-15).

For every worker pair ``(a, b)`` that co-answered at least one task, we
compare three hypotheses about how their data came to be:

- ``a ⊥ b`` — both answered independently;
- ``a → b`` — ``a`` copies from ``b`` (each of ``a``'s values is copied
  with probability ``r``);
- ``b → a`` — the reverse direction.

The evidence is the partition of their shared tasks into ``T_s`` (same
value, equal to the current truth estimate), ``T_f`` (same value, not
the truth) and ``T_d`` (different values).  Sharing *false* values is
the smoking gun: it is rare under independence (Eq. 8) but likely under
copying (Eq. 12).  The three likelihoods (Eqs. 10, 14) combine with the
priors into directional posteriors via Bayes' rule (Eq. 15).

Priors: the paper writes ``P(i→i') = α`` and ``P(i⊥i') = 1 - α`` but
sweeps α to 0.9, which cannot be a three-hypothesis prior as written.
We use ``P(a→b) = P(b→a) = α/2`` and ``P(a⊥b) = 1 - α`` (valid for all
α in (0, 1)); see DESIGN.md §4.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .falsedist import FalseValueDistribution, UniformFalseValues
from .indexing import DatasetIndex

__all__ = ["DependencePosterior", "compute_pairwise_dependence"]

# Likelihood terms are clamped away from 0 so a single impossible-looking
# observation cannot produce -inf log likelihoods.
_MIN_PROB = 1e-12


@dataclass(frozen=True, slots=True)
class DependencePosterior:
    """Posterior over the three dependence hypotheses for a worker pair.

    ``p_a_to_b`` is ``P(a→b | D)`` — the probability that the pair's
    *first* worker copies from the second; ``p_b_to_a`` the reverse.
    The probabilities sum to 1 with ``p_independent``.
    """

    p_a_to_b: float
    p_b_to_a: float

    @property
    def p_independent(self) -> float:
        """``P(a ⊥ b | D)``."""
        return max(0.0, 1.0 - self.p_a_to_b - self.p_b_to_a)

    @property
    def p_dependent(self) -> float:
        """Total dependence probability, either direction."""
        return self.p_a_to_b + self.p_b_to_a

    def directed(self, copier_first: bool) -> float:
        """``P(x→y | D)`` with ``x`` the copier: pair order if ``copier_first``."""
        return self.p_a_to_b if copier_first else self.p_b_to_a


def _log(x: float) -> float:
    return math.log(max(x, _MIN_PROB))


def compute_pairwise_dependence(
    index: DatasetIndex,
    truths: Sequence[str | None],
    accuracy: np.ndarray,
    *,
    copy_prob_r: float,
    prior_alpha: float,
    false_values: FalseValueDistribution | None = None,
    accuracy_clamp: tuple[float, float] = (0.01, 0.99),
) -> dict[tuple[int, int], DependencePosterior]:
    """Compute dependence posteriors for all co-answering pairs.

    Parameters
    ----------
    index:
        Prebuilt dataset index.
    truths:
        Current per-task truth estimates (task-index order); used to
        split shared tasks into ``T_s`` and ``T_f``.
    accuracy:
        Dense ``n_workers x n_tasks`` accuracy matrix (current ``A``).
    copy_prob_r:
        The assumed probability ``r`` that a copied worker's value is
        copied rather than independently produced.
    prior_alpha:
        Total prior probability ``α`` of dependence for a pair.
    false_values:
        False-value distribution model; defaults to the paper's uniform
        assumption.
    accuracy_clamp:
        Accuracies are clamped into this open interval before use so
        the likelihoods stay finite.

    Returns
    -------
    dict
        ``(a, b) -> DependencePosterior`` with ``a < b``, covering
        exactly ``index.pairs``.
    """
    if not 0.0 < copy_prob_r < 1.0:
        raise ValueError(f"copy_prob_r must be in (0, 1), got {copy_prob_r}")
    if not 0.0 < prior_alpha < 1.0:
        raise ValueError(f"prior_alpha must be in (0, 1), got {prior_alpha}")
    false_values = false_values or UniformFalseValues()
    lo, hi = accuracy_clamp

    r = copy_prob_r
    log_prior_dep = math.log(prior_alpha / 2.0)
    log_prior_ind = math.log(1.0 - prior_alpha)

    # Collision probabilities are truth-independent per task; cache them.
    collision = [
        false_values.collision_probability(j, index) for j in range(index.n_tasks)
    ]

    posteriors: dict[tuple[int, int], DependencePosterior] = {}
    claims = index.claims_by_worker
    for (a, b), shared in index.shared_tasks.items():
        log_ind = 0.0  # log P(D | a ⊥ b)
        log_ab = 0.0  # log P(D | a → b)
        log_ba = 0.0  # log P(D | b → a)
        claims_a = claims[a]
        claims_b = claims[b]
        for j in shared:
            value_a = claims_a[j]
            value_b = claims_b[j]
            acc_a = min(max(accuracy[a, j], lo), hi)
            acc_b = min(max(accuracy[b, j], lo), hi)
            if value_a == value_b:
                if value_a == truths[j]:
                    # T_s: same true value (Eqs. 7, 11).
                    p_same = acc_a * acc_b
                    src_a = acc_a  # quality of the copied value under b→a
                    src_b = acc_b  # ... and under a→b
                else:
                    # T_f: same false value (Eqs. 8, 12, 22).
                    p_same = (1.0 - acc_a) * (1.0 - acc_b) * collision[j]
                    src_a = 1.0 - acc_a
                    src_b = 1.0 - acc_b
                log_ind += _log(p_same)
                log_ab += _log(src_b * r + p_same * (1.0 - r))
                log_ba += _log(src_a * r + p_same * (1.0 - r))
            else:
                # T_d: different values (Eqs. 9, 13): P_d = 1 - P_s - P_f.
                p_same_true = acc_a * acc_b
                p_same_false = (1.0 - acc_a) * (1.0 - acc_b) * collision[j]
                p_diff = max(1.0 - p_same_true - p_same_false, _MIN_PROB)
                log_ind += _log(p_diff)
                log_diff_dep = _log(p_diff * (1.0 - r))
                log_ab += log_diff_dep
                log_ba += log_diff_dep
        # Bayes over the three hypotheses, normalized in log space.
        score_ind = log_prior_ind + log_ind
        score_ab = log_prior_dep + log_ab
        score_ba = log_prior_dep + log_ba
        peak = max(score_ind, score_ab, score_ba)
        w_ind = math.exp(score_ind - peak)
        w_ab = math.exp(score_ab - peak)
        w_ba = math.exp(score_ba - peak)
        total = w_ind + w_ab + w_ba
        posteriors[(a, b)] = DependencePosterior(
            p_a_to_b=w_ab / total,
            p_b_to_a=w_ba / total,
        )
    return posteriors


def directed_probability(
    posteriors: dict[tuple[int, int], DependencePosterior],
    copier: int,
    source: int,
) -> float:
    """``P(copier → source | D)`` from a posterior table, 0 if the pair never met."""
    if copier == source:
        return 0.0
    if copier < source:
        entry = posteriors.get((copier, source))
        return entry.p_a_to_b if entry is not None else 0.0
    entry = posteriors.get((source, copier))
    return entry.p_b_to_a if entry is not None else 0.0


def total_dependence(
    posteriors: dict[tuple[int, int], DependencePosterior],
    a: int,
    b: int,
) -> float:
    """``P(a→b | D) + P(b→a | D)``, 0 if the pair never met."""
    key = (a, b) if a < b else (b, a)
    entry = posteriors.get(key)
    return entry.p_dependent if entry is not None else 0.0
