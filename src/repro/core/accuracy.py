"""Step 3 of DATE (part 1): value posteriors and worker accuracies.

For one task ``t_j`` with claim set ``D_j``, the likelihood of the data
given that candidate value ``v`` is true (Eq. 18, generalized by
Eq. 23) is

    P(D_j | v true) = Π_{i ∈ W_v} A_i · Π_{i ∉ W_v} (1 - A_i) · q_j(v_i | v)

where ``q_j(v_i | v)`` is the false-value model's probability of value
``v_i`` given that ``v`` is the truth (``1/num_j`` under the uniform
assumption, recovering Eq. 18 exactly).  With a uniform prior over
values (the paper's β), Bayes' rule gives the posterior of Eq. 20.

The worker accuracy (Eq. 17) is the average posterior probability of
the values the worker provided.  The matrix ``A`` is per (worker, task);
see DESIGN.md §4 for the two supported granularities:

- ``"worker"`` (default): one accuracy per worker — the mean posterior
  over its answered tasks, broadcast to those tasks;
- ``"task"``: the per-task posterior of the worker's claim.

Workers keep 0 accuracy on tasks they did not answer (no coverage in
the auction).
"""

from __future__ import annotations

import math

import numpy as np

from .falsedist import FalseValueDistribution, UniformFalseValues
from .indexing import DatasetIndex

__all__ = [
    "value_posteriors",
    "discounted_value_posteriors",
    "update_accuracy_matrix",
    "worker_mean_accuracy",
]

_MIN_PROB = 1e-12

#: Posterior tables: task index -> {value: P(v true | D_j)}.
PosteriorTable = list[dict[str, float]]

_GRANULARITIES = ("worker", "task")


def value_posteriors(
    index: DatasetIndex,
    accuracy: np.ndarray,
    *,
    false_values: FalseValueDistribution | None = None,
    accuracy_clamp: tuple[float, float] = (0.01, 0.99),
) -> PosteriorTable:
    """Compute ``P(v true | D_j)`` for every task and observed value.

    Probabilities within one task sum to 1 (there is exactly one true
    value among the observed candidates, Eq. 19).  Tasks without claims
    get an empty table.
    """
    false_values = false_values or UniformFalseValues()
    lo, hi = accuracy_clamp
    table: PosteriorTable = []
    for j in range(index.n_tasks):
        groups = index.value_groups[j]
        if not groups:
            table.append({})
            continue
        claims = index.claims_by_task[j]
        log_scores: dict[str, float] = {}
        for candidate in groups:
            log_score = 0.0
            for worker, value in claims.items():
                acc = min(max(accuracy[worker, j], lo), hi)
                if value == candidate:
                    log_score += math.log(acc)
                else:
                    q = false_values.value_probability(j, index, value, candidate)
                    log_score += math.log(max((1.0 - acc) * q, _MIN_PROB))
            log_scores[candidate] = log_score
        peak = max(log_scores.values())
        weights = {v: math.exp(s - peak) for v, s in log_scores.items()}
        total = sum(weights.values())
        table.append({v: w / total for v, w in weights.items()})
    return table


def discounted_value_posteriors(
    index: DatasetIndex,
    accuracy: np.ndarray,
    independence,
    *,
    false_values: FalseValueDistribution | None = None,
    accuracy_clamp: tuple[float, float] = (0.01, 0.99),
) -> PosteriorTable:
    """Value posteriors with each vote's log-odds weighted by ``I_v^j(i)``.

    Alg. 1 line 23 as literally written ignores the dependence discount
    when computing ``P(v)``, so copier-inflated majorities corrupt the
    accuracy estimates (Eq. 17) even when step 2 has already identified
    the copiers — the Table 1 example is then unrecoverable.  Following
    Dong et al. [15], whose vote count this generalizes, each supporting
    worker contributes

        I_v^j(i) · ln( A_i / ((1 - A_i) · q_j(v)) )

    to candidate ``v``'s log-score (``q_j`` the false-value probability,
    ``1/num_j`` under the uniform assumption), and the scores are
    softmax-normalized per task.  With all ``I = 1`` this equals Eq. 20
    exactly, so the undiscounted behaviour is the special case.

    ``independence`` is the step-2 table
    (:data:`~repro.core.independence.IndependenceTable`).
    """
    false_values = false_values or UniformFalseValues()
    lo, hi = accuracy_clamp
    table: PosteriorTable = []
    for j in range(index.n_tasks):
        groups = index.value_groups[j]
        if not groups:
            table.append({})
            continue
        log_scores: dict[str, float] = {}
        for candidate, group in groups.items():
            q = max(
                false_values.value_probability(j, index, candidate, None), _MIN_PROB
            )
            score = 0.0
            scores_by_worker = independence[j][candidate]
            for worker in group:
                acc = min(max(accuracy[worker, j], lo), hi)
                score += scores_by_worker[worker] * (
                    math.log(acc) - math.log(max((1.0 - acc) * q, _MIN_PROB))
                )
            log_scores[candidate] = score
        peak = max(log_scores.values())
        weights = {v: math.exp(s - peak) for v, s in log_scores.items()}
        total = sum(weights.values())
        table.append({v: w / total for v, w in weights.items()})
    return table


def update_accuracy_matrix(
    index: DatasetIndex,
    posteriors: PosteriorTable,
    *,
    granularity: str = "worker",
) -> np.ndarray:
    """Refine the accuracy matrix ``A`` from the value posteriors (Eq. 17).

    Returns a dense ``n_workers x n_tasks`` matrix with zeros for
    unanswered (worker, task) pairs.
    """
    if granularity not in _GRANULARITIES:
        raise ValueError(
            f"granularity must be one of {_GRANULARITIES}, got {granularity!r}"
        )
    matrix = np.zeros((index.n_workers, index.n_tasks), dtype=np.float64)
    if granularity == "task":
        for i, claims in enumerate(index.claims_by_worker):
            for j, value in claims.items():
                matrix[i, j] = posteriors[j].get(value, 0.0)
        return matrix

    for i, claims in enumerate(index.claims_by_worker):
        if not claims:
            continue
        mean = float(
            np.mean([posteriors[j].get(value, 0.0) for j, value in claims.items()])
        )
        for j in claims:
            matrix[i, j] = mean
    return matrix


def worker_mean_accuracy(index: DatasetIndex, accuracy: np.ndarray) -> np.ndarray:
    """Per-worker mean accuracy over answered tasks (0 for idle workers)."""
    means = np.zeros(index.n_workers, dtype=np.float64)
    for i, claims in enumerate(index.claims_by_worker):
        if claims:
            means[i] = float(np.mean([accuracy[i, j] for j in claims]))
    return means
