"""The paper's primary contribution: DATE truth discovery (Alg. 1).

Submodules map one-to-one onto the steps of the algorithm:

- :mod:`repro.core.indexing` — integer-indexed dataset views shared by
  every step;
- :mod:`repro.core.dependence` — step 1, pairwise copier detection
  (Eqs. 7-15);
- :mod:`repro.core.independence` — step 2, per-value independence
  probabilities via the greedy ordering (Eq. 16);
- :mod:`repro.core.accuracy` — step 3, value posteriors and worker
  accuracies (Eqs. 17-20);
- :mod:`repro.core.support` — dependence-discounted support counts and
  the similarity adjustment of Sec. IV-A (Eq. 21, Alg. 1 line 28);
- :mod:`repro.core.falsedist` — false-value distribution models,
  including the non-uniform generalization of Sec. IV-B (Eqs. 22-23);
- :mod:`repro.core.engine` — the vectorized backend: the same four
  steps as single numpy passes over the integer-coded claim arrays
  (:class:`~repro.core.indexing.ClaimArrays`), selected via
  ``DateConfig.backend`` (DESIGN.md §7);
- :mod:`repro.core.date` — the iterative driver (Alg. 1).
"""

from .config import DateConfig
from .date import DATE, TruthDiscoveryResult, discover_truth
from .dependence import DependencePosterior, compute_pairwise_dependence
from .engine import DependenceArrays
from .falsedist import (
    EmpiricalFalseValues,
    FalseValueDistribution,
    UniformFalseValues,
    ZipfFalseValues,
)
from .indexing import ClaimArrays, DatasetIndex

__all__ = [
    "DATE",
    "ClaimArrays",
    "DateConfig",
    "DatasetIndex",
    "DependenceArrays",
    "DependencePosterior",
    "EmpiricalFalseValues",
    "FalseValueDistribution",
    "TruthDiscoveryResult",
    "UniformFalseValues",
    "ZipfFalseValues",
    "compute_pairwise_dependence",
    "discover_truth",
]
