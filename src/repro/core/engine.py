"""Vectorized DATE kernels over :class:`~repro.core.indexing.ClaimArrays`.

This module is the array-native twin of the scalar step modules
(:mod:`~repro.core.dependence`, :mod:`~repro.core.independence`,
:mod:`~repro.core.accuracy`, :mod:`~repro.core.support`): every kernel
computes the same quantity from the same equations, but as flat numpy
passes over the integer-coded claim arrays instead of per-element
Python loops.  State lives in three flat arrays between iterations:

- ``claim_acc`` — one accuracy per claim (the non-zero entries of the
  dense ``A`` matrix, in claim order);
- ``indep`` — one independence probability ``I_v^j(i)`` per claim;
- ``truth_codes`` — one value code per task (-1 for unanswered tasks).

The dense matrix and the string-keyed tables of the public API are
materialized once at the end of a run (:func:`dense_accuracy`,
:func:`posterior_table`, :func:`support_table`,
:func:`dependence_table`).  DESIGN.md §7 documents the encoding and the
backend selection; tests/property/test_property_backends.py pins the
equivalence with the scalar reference backend.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from .dependence import DependencePosterior
from .indexing import ClaimArrays, _concat_ranges, segment_first_argmax_code

__all__ = [
    "DependenceArrays",
    "DirectedDependenceLookup",
    "IncrementalDependence",
    "IncrementalStats",
    "KernelScratch",
    "pairwise_dependence_arrays",
    "independence_flat",
    "plain_posterior_groups",
    "discounted_posterior_groups",
    "accuracy_flat",
    "support_flat",
    "select_truth_codes",
    "dense_accuracy",
    "posterior_table",
    "support_table",
    "dependence_table",
    "independence_table",
]

# Same likelihood clamp as the scalar kernels.
_MIN_PROB = 1e-12

# Below this many flat rows a kernel ignores ``intra_workers`` and runs
# serially: thread dispatch would dominate, and the serial path is
# bitwise identical anyway.  The cut depends only on the input size, so
# path selection — like everything else here — is deterministic.
_MIN_PARALLEL_ROWS = 4096


def _safe_log(x: np.ndarray) -> np.ndarray:
    return np.log(np.maximum(x, _MIN_PROB))


def _note_scratch_growth(nbytes: int) -> None:
    """Record one scratch slab (re)allocation when telemetry is on.

    Growth is rare by design (slabs persist across iterations), so this
    sits outside the hot path; the lazy import keeps the kernel module
    import-light.
    """
    from ..obs.metrics import get_registry

    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "date_scratch_growth_total",
            "KernelScratch slab allocations (growth or dtype change).",
        ).inc()
        registry.counter(
            "date_scratch_bytes_total",
            "Total bytes allocated into KernelScratch slabs.",
        ).inc(nbytes)


class KernelScratch:
    """Named, growable scratch slabs for the hot kernels' temporaries.

    The fixed-point loop used to allocate ~20 fresh temporaries per
    iteration in the dependence and posterior kernels; drawing them
    from named slabs that persist across iterations turns that into a
    one-time cost.  :meth:`array` hands out a view of the slab for
    ``name`` (grown when needed), so a caller must be done with the
    previous view of a name before requesting it again.  One scratch is
    not thread-safe — parallel blocks each use their worker thread's
    own instance (:func:`_thread_scratch`).
    """

    def __init__(self) -> None:
        self._slabs: dict[str, np.ndarray] = {}

    def array(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """A writable, uninitialized ``shape`` view of the ``name`` slab."""
        if isinstance(shape, int):
            shape = (shape,)
        size = 1
        for extent in shape:
            size *= int(extent)
        slab = self._slabs.get(name)
        if slab is None or slab.dtype != np.dtype(dtype) or slab.size < size:
            slab = np.empty(max(size, 1), dtype=dtype)
            self._slabs[name] = slab
            _note_scratch_growth(slab.nbytes)
        return slab[:size].reshape(shape)


_TLS = threading.local()


def _thread_scratch() -> KernelScratch:
    """The calling thread's own :class:`KernelScratch` (created once)."""
    scratch = getattr(_TLS, "scratch", None)
    if scratch is None:
        scratch = KernelScratch()
        _TLS.scratch = scratch
    return scratch


_POOL_LOCK = threading.Lock()
_POOLS: dict[int, ThreadPoolExecutor] = {}


def _intra_pool(n_workers: int) -> ThreadPoolExecutor:
    """Process-wide thread pool for intra-campaign blocks, per size.

    numpy releases the GIL inside its C loops, so plain threads give
    real concurrency for these kernels without any serialization of the
    claim arrays.  Pools are cached — campaigns are run far more often
    than pool sizes change.
    """
    with _POOL_LOCK:
        pool = _POOLS.get(n_workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=n_workers, thread_name_prefix="repro-intra"
            )
            _POOLS[n_workers] = pool
        return pool


def _block_slices(n: int, n_blocks: int) -> list[slice]:
    """Fixed contiguous partition of ``range(n)`` into ``<= n_blocks``.

    The partition depends only on ``(n, n_blocks)`` and partial results
    are always reduced in block order, which is what makes the parallel
    kernels deterministic run-to-run (DESIGN.md §12).
    """
    n_blocks = max(1, min(n_blocks, n))
    size = -(-n // n_blocks)
    return [slice(start, min(start + size, n)) for start in range(0, n, size)]


@dataclass(frozen=True)
class DependenceArrays:
    """Directional dependence posteriors for every co-answering pair.

    ``p_ab[k]`` is ``P(pair_a[k] -> pair_b[k] | D)`` (the first worker
    of pair ``k`` copies from the second), ``p_ba`` the reverse — the
    array form of :class:`~repro.core.dependence.DependencePosterior`
    over ``ClaimArrays.pair_a/pair_b``.
    """

    p_ab: np.ndarray
    p_ba: np.ndarray

    def directed_matrix(self, arrays: ClaimArrays) -> np.ndarray:
        """Dense ``D[i, k] = P(i -> k | D)`` lookup (0 where undefined).

        O(n_workers²) memory — only appropriate for deliberately small
        worlds (the exponential ED baseline).  Production paths use
        :class:`DirectedDependenceLookup`, which is O(pairs).
        """
        n = arrays.index.n_workers
        matrix = np.zeros((n, n), dtype=np.float64)
        matrix[arrays.pair_a, arrays.pair_b] = self.p_ab
        matrix[arrays.pair_b, arrays.pair_a] = self.p_ba
        return matrix


@dataclass(frozen=True)
class DirectedDependenceLookup:
    """O(pairs) lookup of ``P(i -> k | D)`` over sorted integer keys.

    The sparse replacement for :meth:`DependenceArrays.directed_matrix`:
    each directed pair is keyed as ``i * n_workers + k`` and stored
    sorted, so an arbitrary batch of ``(i, k)`` queries is one
    ``searchsorted`` — memory stays O(pairs) where the dense matrix is
    O(n_workers²).  Pairs that never co-answered (and the diagonal)
    resolve to 0, exactly as the dense matrix's unset entries.
    """

    keys: np.ndarray
    values: np.ndarray
    n_workers: int

    @classmethod
    def build(
        cls, arrays: ClaimArrays, dependence: DependenceArrays
    ) -> "DirectedDependenceLookup":
        n = arrays.index.n_workers
        a = arrays.pair_a.astype(np.int64)
        b = arrays.pair_b.astype(np.int64)
        keys = np.concatenate([a * n + b, b * n + a])
        values = np.concatenate([dependence.p_ab, dependence.p_ba])
        order = np.argsort(keys)
        return cls(keys=keys[order], values=values[order], n_workers=n)

    def gather(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """``D[src, dst]`` for broadcastable index arrays (0 where unset)."""
        query = src.astype(np.int64) * self.n_workers + dst
        if self.keys.size == 0:
            return np.zeros(query.shape, dtype=np.float64)
        position = np.searchsorted(self.keys, query)
        position = np.minimum(position, len(self.keys) - 1)
        return np.where(
            self.keys[position] == query, self.values[position], 0.0
        )


def _score_pair_rows(
    arrays: ClaimArrays,
    truth_codes: np.ndarray,
    claim_acc: np.ndarray,
    *,
    r: float,
    collision: np.ndarray,
    lo: float,
    hi: float,
    rows,
    out_ind: np.ndarray,
    out_ab: np.ndarray,
    out_ba: np.ndarray,
    scratch: KernelScratch,
) -> None:
    """Per-row hypothesis log-likelihood terms for ``rows`` (Eqs. 7-13).

    Every output element depends only on that row's own inputs, so
    scoring any subset — a contiguous block, or the scattered rows of a
    few touched tasks — reproduces bit for bit what a full pass writes
    at those positions.  That elementwise property is what both the
    blocked parallel path and :class:`IncrementalDependence` lean on.
    ``rows`` is a slice or an int index array; outputs and temporaries
    are caller-provided so the fixed-point loop allocates nothing here.
    """
    n = len(out_ind)
    ca = arrays.ps_claim_a[rows]
    cb = arrays.ps_claim_b[rows]
    tasks = arrays.ps_task[rows]

    acc_a = np.take(claim_acc, ca, out=scratch.array("sc_acc_a", n))
    np.clip(acc_a, lo, hi, out=acc_a)
    acc_b = np.take(claim_acc, cb, out=scratch.array("sc_acc_b", n))
    np.clip(acc_b, lo, hi, out=acc_b)
    code_a = np.take(arrays.claim_code, ca, out=scratch.array("sc_code_a", n, np.int64))
    code_b = np.take(arrays.claim_code, cb, out=scratch.array("sc_code_b", n, np.int64))
    col = np.take(collision, tasks, out=scratch.array("sc_col", n))

    same = np.equal(code_a, code_b, out=scratch.array("sc_same", n, bool))
    truth = np.take(truth_codes, tasks, out=scratch.array("sc_tcode", n, np.int64))
    is_truth = np.equal(code_a, truth, out=scratch.array("sc_is_truth", n, bool))
    np.logical_and(is_truth, same, out=is_truth)

    p_same_true = np.multiply(acc_a, acc_b, out=scratch.array("sc_pst", n))
    # src_a/src_b start as 1 - A; truth rows are patched to A below.
    src_a = np.subtract(1.0, acc_a, out=scratch.array("sc_src_a", n))
    src_b = np.subtract(1.0, acc_b, out=scratch.array("sc_src_b", n))
    p_same_false = np.multiply(src_a, src_b, out=scratch.array("sc_psf", n))
    np.multiply(p_same_false, col, out=p_same_false)
    # T_s rows use the true-agreement likelihood, T_f rows the
    # false-collision one (Eqs. 7, 8, 11, 12, 22).
    p_same = scratch.array("sc_ps", n)
    np.copyto(p_same, p_same_false)
    np.copyto(p_same, p_same_true, where=is_truth)
    np.copyto(src_a, acc_a, where=is_truth)
    np.copyto(src_b, acc_b, where=is_truth)
    # T_d rows: P_d = 1 - P_s - P_f (Eqs. 9, 13).
    p_diff = scratch.array("sc_pd", n)
    np.subtract(1.0, p_same_true, out=p_diff)
    np.subtract(p_diff, p_same_false, out=p_diff)
    np.maximum(p_diff, _MIN_PROB, out=p_diff)

    not_same = np.logical_not(same, out=scratch.array("sc_not_same", n, bool))
    log_diff_dep = scratch.array("sc_ldd", n)
    np.multiply(p_diff, 1.0 - r, out=log_diff_dep)
    np.maximum(log_diff_dep, _MIN_PROB, out=log_diff_dep)
    np.log(log_diff_dep, out=log_diff_dep)

    tmp = scratch.array("sc_tmp", n)
    np.maximum(p_diff, _MIN_PROB, out=out_ind)
    np.log(out_ind, out=out_ind)
    np.maximum(p_same, _MIN_PROB, out=tmp)
    np.log(tmp, out=tmp)
    np.copyto(out_ind, tmp, where=same)

    # Same-value rows: log(src · r + P_s · (1 - r)); differing rows
    # share log(P_d · (1 - r)) for both copy directions (Eqs. 12-14).
    np.multiply(p_same, 1.0 - r, out=tmp)
    np.multiply(src_b, r, out=out_ab)
    np.add(out_ab, tmp, out=out_ab)
    np.maximum(out_ab, _MIN_PROB, out=out_ab)
    np.log(out_ab, out=out_ab)
    np.copyto(out_ab, log_diff_dep, where=not_same)
    np.multiply(src_a, r, out=out_ba)
    np.add(out_ba, tmp, out=out_ba)
    np.maximum(out_ba, _MIN_PROB, out=out_ba)
    np.log(out_ba, out=out_ba)
    np.copyto(out_ba, log_diff_dep, where=not_same)


def _dependence_posteriors(
    sum_ind: np.ndarray,
    sum_ab: np.ndarray,
    sum_ba: np.ndarray,
    prior_alpha: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Bayes' rule with the α/2 prior split, normalized in log space.

    Elementwise over pairs — normalizing a subset of pairs produces the
    same bits as normalizing all of them and selecting the subset.
    """
    score_ind = math.log(1.0 - prior_alpha) + sum_ind
    log_prior_dep = math.log(prior_alpha / 2.0)
    score_ab = log_prior_dep + sum_ab
    score_ba = log_prior_dep + sum_ba
    peak = np.maximum(score_ind, np.maximum(score_ab, score_ba))
    w_ind = np.exp(score_ind - peak)
    w_ab = np.exp(score_ab - peak)
    w_ba = np.exp(score_ba - peak)
    total = w_ind + w_ab + w_ba
    return w_ab / total, w_ba / total


def _pair_sums_serial(
    arrays: ClaimArrays,
    truth_codes: np.ndarray,
    claim_acc: np.ndarray,
    *,
    r: float,
    collision: np.ndarray,
    lo: float,
    hi: float,
    scratch: KernelScratch,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full per-pair hypothesis sums, one serial pass (the baseline)."""
    n_rows = len(arrays.ps_pair)
    n_pairs = arrays.n_pairs
    out_ind = scratch.array("dep_ind", n_rows)
    out_ab = scratch.array("dep_ab", n_rows)
    out_ba = scratch.array("dep_ba", n_rows)
    _score_pair_rows(
        arrays,
        truth_codes,
        claim_acc,
        r=r,
        collision=collision,
        lo=lo,
        hi=hi,
        rows=slice(0, n_rows),
        out_ind=out_ind,
        out_ab=out_ab,
        out_ba=out_ba,
        scratch=scratch,
    )
    return (
        np.bincount(arrays.ps_pair, weights=out_ind, minlength=n_pairs),
        np.bincount(arrays.ps_pair, weights=out_ab, minlength=n_pairs),
        np.bincount(arrays.ps_pair, weights=out_ba, minlength=n_pairs),
    )


def _pair_sums_blocked(
    arrays: ClaimArrays,
    truth_codes: np.ndarray,
    claim_acc: np.ndarray,
    *,
    r: float,
    collision: np.ndarray,
    lo: float,
    hi: float,
    intra_workers: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-pair sums via fixed contiguous row blocks on a thread pool.

    Each block scores its rows (bitwise equal to the serial pass — the
    scoring is elementwise) and bincounts them into a partial per-pair
    sum; partials are reduced in block order, so the result is
    deterministic run-to-run and within fp-reassociation distance
    (≤1e-9 in practice) of the serial sums.
    """
    n_pairs = arrays.n_pairs
    ps_pair = arrays.ps_pair
    blocks = _block_slices(len(ps_pair), intra_workers)

    def score_block(block: slice):
        scratch = _thread_scratch()
        n = block.stop - block.start
        out_ind = scratch.array("blk_ind", n)
        out_ab = scratch.array("blk_ab", n)
        out_ba = scratch.array("blk_ba", n)
        _score_pair_rows(
            arrays,
            truth_codes,
            claim_acc,
            r=r,
            collision=collision,
            lo=lo,
            hi=hi,
            rows=block,
            out_ind=out_ind,
            out_ab=out_ab,
            out_ba=out_ba,
            scratch=scratch,
        )
        return (
            np.bincount(ps_pair[block], weights=out_ind, minlength=n_pairs),
            np.bincount(ps_pair[block], weights=out_ab, minlength=n_pairs),
            np.bincount(ps_pair[block], weights=out_ba, minlength=n_pairs),
        )

    partials = list(_intra_pool(intra_workers).map(score_block, blocks))
    sum_ind, sum_ab, sum_ba = partials[0]
    for part_ind, part_ab, part_ba in partials[1:]:
        sum_ind += part_ind
        sum_ab += part_ab
        sum_ba += part_ba
    return sum_ind, sum_ab, sum_ba


def pairwise_dependence_arrays(
    arrays: ClaimArrays,
    truth_codes: np.ndarray,
    claim_acc: np.ndarray,
    *,
    copy_prob_r: float,
    prior_alpha: float,
    collision: np.ndarray,
    accuracy_clamp: tuple[float, float] = (0.01, 0.99),
    intra_workers: int = 1,
    scratch: KernelScratch | None = None,
) -> DependenceArrays:
    """Step 1 (Eqs. 7-15) as one pass over the (pair, shared task) rows.

    Mirrors :func:`~repro.core.dependence.compute_pairwise_dependence`:
    each flattened row contributes its log-likelihood terms to the three
    hypotheses of its pair (segment sums by pair), then Bayes' rule with
    the α/2 prior split normalizes in log space.  ``collision`` is the
    per-task false-value collision probability (Eq. 22's integral),
    typically :meth:`FalseValueDistribution.collision_array`.

    ``intra_workers > 1`` computes the segment sums over fixed
    contiguous row blocks on a thread pool, reduced in block order —
    deterministic run-to-run, ≤1e-9 from serial.  ``scratch`` reuses
    the serial path's temporaries across calls (defaults to the calling
    thread's shared scratch).
    """
    if not 0.0 < copy_prob_r < 1.0:
        raise ValueError(f"copy_prob_r must be in (0, 1), got {copy_prob_r}")
    if not 0.0 < prior_alpha < 1.0:
        raise ValueError(f"prior_alpha must be in (0, 1), got {prior_alpha}")
    if intra_workers < 1:
        raise ValueError(f"intra_workers must be >= 1, got {intra_workers}")
    lo, hi = accuracy_clamp

    if intra_workers > 1 and len(arrays.ps_pair) >= _MIN_PARALLEL_ROWS:
        sums = _pair_sums_blocked(
            arrays,
            truth_codes,
            claim_acc,
            r=copy_prob_r,
            collision=collision,
            lo=lo,
            hi=hi,
            intra_workers=intra_workers,
        )
    else:
        sums = _pair_sums_serial(
            arrays,
            truth_codes,
            claim_acc,
            r=copy_prob_r,
            collision=collision,
            lo=lo,
            hi=hi,
            scratch=scratch if scratch is not None else _thread_scratch(),
        )
    p_ab, p_ba = _dependence_posteriors(*sums, prior_alpha)
    return DependenceArrays(p_ab=p_ab, p_ba=p_ba)


@dataclass
class IncrementalStats:
    """Cheap always-on counters of one :class:`IncrementalDependence`.

    Plain ints updated unconditionally (a few adds per refresh — far
    below measurement noise), so ``repro metrics`` and the engine's
    convergence telemetry can report refresh hit rates without the
    registry being enabled during the run.
    """

    refreshes: int = 0
    full_passes: int = 0
    rows_rescored: int = 0
    rows_total: int = 0

    @property
    def incremental_refreshes(self) -> int:
        return self.refreshes - self.full_passes

    @property
    def rescore_fraction(self) -> float:
        """Mean fraction of pair rows re-scored per refresh (1.0 = full)."""
        denominator = self.refreshes * self.rows_total
        return self.rows_rescored / denominator if denominator else 0.0


class IncrementalDependence:
    """Updatable per-pair dependence aggregates (ROADMAP item 4).

    Maintains, between refreshes, every (pair, shared task) row's
    hypothesis log-likelihood contributions together with their
    per-pair sums and normalized posteriors.  A refresh that touches
    ``k`` tasks re-scores only those tasks' rows and re-sums only the
    pairs owning one, O(k · pairs-touched) instead of O(all pair rows).

    **Exactness.**  The refreshed state is *bit-identical* to a full
    :func:`pairwise_dependence_arrays` pass over the same inputs:

    - row scoring is elementwise (:func:`_score_pair_rows`), so
      re-scoring a subset reproduces the full pass's bits at those
      rows, and rows whose inputs (truth code, the two claim
      accuracies, the task's collision probability) did not change
      keep their cached contributions unchanged;
    - per-pair sums use the same sequential-accumulation primitive as
      the full pass (``np.bincount``), re-summing each *affected* pair
      over its full contiguous row segment — same addends, same order,
      same bits (``np.add.reduceat`` would not qualify: its pairwise
      summation reassociates);
    - posterior normalization is elementwise over pairs
      (:func:`_dependence_posteriors`), so renormalizing only the
      affected pairs leaves the rest bit-frozen.

    tests/property/test_property_incremental_dependence.py pins this
    against randomized edit and ingest sequences; DESIGN.md §12 has the
    full argument, including why the streaming dirty-task path keeps
    untouched rows' inputs frozen.
    """

    def __init__(
        self,
        arrays: ClaimArrays,
        *,
        copy_prob_r: float,
        prior_alpha: float,
        collision: np.ndarray,
        accuracy_clamp: tuple[float, float] = (0.01, 0.99),
    ):
        if not 0.0 < copy_prob_r < 1.0:
            raise ValueError(f"copy_prob_r must be in (0, 1), got {copy_prob_r}")
        if not 0.0 < prior_alpha < 1.0:
            raise ValueError(f"prior_alpha must be in (0, 1), got {prior_alpha}")
        self._r = copy_prob_r
        self._alpha = prior_alpha
        self._lo, self._hi = accuracy_clamp
        self._scratch = KernelScratch()
        self._truth_codes: np.ndarray | None = None
        self._claim_acc: np.ndarray | None = None
        self.stats = IncrementalStats()
        self._bind(arrays, collision)

    def _bind(self, arrays: ClaimArrays, collision: np.ndarray) -> None:
        self._arrays = arrays
        self._collision = np.array(collision, dtype=np.float64, copy=True)
        n_rows = len(arrays.ps_pair)
        n_pairs = arrays.n_pairs
        self._row_ind = np.empty(n_rows)
        self._row_ab = np.empty(n_rows)
        self._row_ba = np.empty(n_rows)
        self._sum_ind = np.empty(n_pairs)
        self._sum_ab = np.empty(n_pairs)
        self._sum_ba = np.empty(n_pairs)
        self._p_ab = np.empty(n_pairs)
        self._p_ba = np.empty(n_pairs)
        self.stats.rows_total = n_rows

    @property
    def arrays(self) -> ClaimArrays:
        """The claim arrays the aggregates are currently bound to."""
        return self._arrays

    def posteriors(self) -> DependenceArrays:
        """The current posteriors (copies — refreshes mutate in place)."""
        return DependenceArrays(p_ab=self._p_ab.copy(), p_ba=self._p_ba.copy())

    def refresh(
        self,
        truth_codes: np.ndarray,
        claim_acc: np.ndarray,
        touched_tasks: np.ndarray | None = None,
    ) -> DependenceArrays:
        """Bring the aggregates up to date with the given inputs.

        ``touched_tasks`` lists the task positions whose truth code or
        claim accuracies may differ from the previous refresh; ``None``
        diffs against the stored inputs (one vector compare — this is
        what lets a converging fixed point skip whole iterations of
        re-scoring).  The first refresh is always a full pass.
        """
        truth_codes = np.asarray(truth_codes, dtype=np.int64)
        claim_acc = np.asarray(claim_acc, dtype=np.float64)
        self.stats.refreshes += 1
        if self._truth_codes is None:
            self._refresh_full(truth_codes, claim_acc)
        else:
            if touched_tasks is None:
                touched_tasks = self._diff_tasks(truth_codes, claim_acc)
            self._refresh_tasks(
                np.asarray(touched_tasks, dtype=np.int64), truth_codes, claim_acc
            )
        self._truth_codes = truth_codes.copy()
        self._claim_acc = claim_acc.copy()
        return self.posteriors()

    def rebind(
        self,
        arrays: ClaimArrays,
        *,
        collision: np.ndarray,
        dirty_tasks,
        truth_codes: np.ndarray,
        claim_acc: np.ndarray,
    ) -> DependenceArrays:
        """Carry the aggregates across an index extension and refresh.

        ``arrays`` must extend the bound arrays in the sense of
        :meth:`~repro.core.indexing.DatasetIndex.extended`: task
        positions stable, every old (pair, shared task) row surviving.
        Inputs may differ from the stored state only on ``dirty_tasks``
        (tasks whose collision probability changed under the new index
        are detected and re-scored here as well) — exactly the contract
        the streaming ingest path satisfies, because its merge step
        writes truths and claim accuracies for dirty tasks only.

        Surviving rows and pairs carry their cached contributions over
        through a sorted-key scatter; new rows (all on dirty tasks —
        a clean shared task would mean the pair row already existed)
        are scored by the dirty refresh.
        """
        old = self._arrays
        truth_codes = np.asarray(truth_codes, dtype=np.int64)
        claim_acc = np.asarray(claim_acc, dtype=np.float64)
        collision = np.asarray(collision, dtype=np.float64)
        if self._truth_codes is None:
            self._bind(arrays, collision)
            return self.refresh(truth_codes, claim_acc)

        n_workers = arrays.index.n_workers
        n_tasks = arrays.index.n_tasks
        # Row identity is (pair worker ids, shared task).  Both tables
        # sort rows by (pair_a, pair_b, task) — lexicographic order is
        # preserved under the key below for any worker-count multiplier
        # — so old keys form an ascending subsequence of the new ones.
        old_keys = (
            old.pair_a[old.ps_pair] * n_workers + old.pair_b[old.ps_pair]
        ) * n_tasks + old.ps_task
        new_keys = (
            arrays.pair_a[arrays.ps_pair] * n_workers + arrays.pair_b[arrays.ps_pair]
        ) * n_tasks + arrays.ps_task
        row_pos = np.searchsorted(new_keys, old_keys)
        old_pair_keys = old.pair_a * n_workers + old.pair_b
        new_pair_keys = arrays.pair_a * n_workers + arrays.pair_b
        pair_pos = np.searchsorted(new_pair_keys, old_pair_keys)
        if (
            len(old_keys) > 0
            and not (
                np.array_equal(new_keys[np.minimum(row_pos, len(new_keys) - 1)], old_keys)
                and np.array_equal(
                    new_pair_keys[np.minimum(pair_pos, len(new_pair_keys) - 1)],
                    old_pair_keys,
                )
            )
        ):
            raise ValueError(
                "rebind target does not extend the bound claim arrays: "
                "an existing (pair, shared task) row is missing"
            )

        def carry(values: np.ndarray, size: int, positions: np.ndarray) -> np.ndarray:
            fresh = np.empty(size)
            fresh[positions] = values
            return fresh

        n_rows = len(new_keys)
        self._row_ind = carry(self._row_ind, n_rows, row_pos)
        self._row_ab = carry(self._row_ab, n_rows, row_pos)
        self._row_ba = carry(self._row_ba, n_rows, row_pos)
        n_pairs = arrays.n_pairs
        self._sum_ind = carry(self._sum_ind, n_pairs, pair_pos)
        self._sum_ab = carry(self._sum_ab, n_pairs, pair_pos)
        self._sum_ba = carry(self._sum_ba, n_pairs, pair_pos)
        self._p_ab = carry(self._p_ab, n_pairs, pair_pos)
        self._p_ba = carry(self._p_ba, n_pairs, pair_pos)

        touched = np.zeros(n_tasks, dtype=bool)
        touched[np.asarray(dirty_tasks, dtype=np.int64)] = True
        old_n_tasks = old.index.n_tasks
        # A non-dirty task's collision probability can still move under
        # data-driven false-value models (the empirical ones re-fit on
        # the grown campaign) — its rows must be re-scored too.
        touched[:old_n_tasks] |= collision[:old_n_tasks] != self._collision
        self._arrays = arrays
        self._collision = collision.copy()
        self.stats.rows_total = n_rows
        self.stats.refreshes += 1
        self._refresh_tasks(np.flatnonzero(touched), truth_codes, claim_acc)
        self._truth_codes = truth_codes.copy()
        self._claim_acc = claim_acc.copy()
        return self.posteriors()

    # -- internals -------------------------------------------------------

    def _diff_tasks(
        self, truth_codes: np.ndarray, claim_acc: np.ndarray
    ) -> np.ndarray:
        """Task positions whose inputs changed since the last refresh."""
        arrays = self._arrays
        changed = self._truth_codes != truth_codes
        changed[arrays.claim_task[self._claim_acc != claim_acc]] = True
        return np.flatnonzero(changed)

    def _refresh_full(self, truth_codes: np.ndarray, claim_acc: np.ndarray) -> None:
        arrays = self._arrays
        self.stats.full_passes += 1
        self.stats.rows_rescored += len(arrays.ps_pair)
        _score_pair_rows(
            arrays,
            truth_codes,
            claim_acc,
            r=self._r,
            collision=self._collision,
            lo=self._lo,
            hi=self._hi,
            rows=slice(0, len(arrays.ps_pair)),
            out_ind=self._row_ind,
            out_ab=self._row_ab,
            out_ba=self._row_ba,
            scratch=self._scratch,
        )
        n_pairs = arrays.n_pairs
        self._sum_ind = np.bincount(
            arrays.ps_pair, weights=self._row_ind, minlength=n_pairs
        )
        self._sum_ab = np.bincount(
            arrays.ps_pair, weights=self._row_ab, minlength=n_pairs
        )
        self._sum_ba = np.bincount(
            arrays.ps_pair, weights=self._row_ba, minlength=n_pairs
        )
        self._p_ab, self._p_ba = _dependence_posteriors(
            self._sum_ind, self._sum_ab, self._sum_ba, self._alpha
        )

    def _refresh_tasks(
        self,
        touched: np.ndarray,
        truth_codes: np.ndarray,
        claim_acc: np.ndarray,
    ) -> None:
        if len(touched) == 0:
            return
        arrays = self._arrays
        scratch = self._scratch
        task_row_ptr, rows_by_task = arrays.pair_rows_by_task
        rows = rows_by_task[
            _concat_ranges(
                task_row_ptr[touched], task_row_ptr[touched + 1] - task_row_ptr[touched]
            )
        ]
        if len(rows) == 0:
            return
        n = len(rows)
        self.stats.rows_rescored += n
        out_ind = scratch.array("inc_ind", n)
        out_ab = scratch.array("inc_ab", n)
        out_ba = scratch.array("inc_ba", n)
        _score_pair_rows(
            arrays,
            truth_codes,
            claim_acc,
            r=self._r,
            collision=self._collision,
            lo=self._lo,
            hi=self._hi,
            rows=rows,
            out_ind=out_ind,
            out_ab=out_ab,
            out_ba=out_ba,
            scratch=scratch,
        )
        self._row_ind[rows] = out_ind
        self._row_ab[rows] = out_ab
        self._row_ba[rows] = out_ba

        # Affected pairs = pairs owning a re-scored row (a boolean
        # scatter — orders of magnitude cheaper than np.unique here).
        mask = scratch.array("inc_pair_mask", arrays.n_pairs, bool)
        mask[:] = False
        mask[arrays.ps_pair[rows]] = True
        affected = np.flatnonzero(mask)
        pair_ptr = arrays.pair_ptr
        lengths = pair_ptr[affected + 1] - pair_ptr[affected]
        gathered = _concat_ranges(pair_ptr[affected], lengths)
        segments = np.repeat(np.arange(len(affected)), lengths)
        # Re-sum each affected pair over its full contiguous row
        # segment with the full pass's own primitive — same addends in
        # the same sequential order, hence the same bits.
        self._sum_ind[affected] = np.bincount(
            segments, weights=self._row_ind[gathered], minlength=len(affected)
        )
        self._sum_ab[affected] = np.bincount(
            segments, weights=self._row_ab[gathered], minlength=len(affected)
        )
        self._sum_ba[affected] = np.bincount(
            segments, weights=self._row_ba[gathered], minlength=len(affected)
        )
        p_ab, p_ba = _dependence_posteriors(
            self._sum_ind[affected],
            self._sum_ab[affected],
            self._sum_ba[affected],
            self._alpha,
        )
        self._p_ab[affected] = p_ab
        self._p_ba[affected] = p_ba


def independence_flat(
    arrays: ClaimArrays,
    dependence: DependenceArrays,
    *,
    copy_prob_r: float,
    ordering: str = "dependent_first",
    discount_mode: str = "directed",
    scratch: KernelScratch | None = None,
) -> np.ndarray:
    """Step 2 (Eq. 16): one independence probability per claim.

    The greedy ordering inside each multi-provider value group is
    inherently sequential in the group *size*, but not across groups:
    all groups of one size run batched (``(G, m, m)`` tensors gathered
    through the O(pairs) :class:`DirectedDependenceLookup`), so the
    Python loop is one step per distinct group size — not per group.  Single-provider groups
    keep the definitional ``I = 1`` without being visited at all.

    Ordering and tie-break rules replicate
    :func:`~repro.core.independence.order_value_group` exactly: groups
    store workers ascending, and ``argmax``/``argmin`` pick the first
    (smallest-index) element on ties.
    """
    if not 0.0 < copy_prob_r < 1.0:
        raise ValueError(f"copy_prob_r must be in (0, 1), got {copy_prob_r}")
    if ordering not in ("dependent_first", "independent_first"):
        raise ValueError(
            "ordering must be 'dependent_first' or 'independent_first', "
            f"got {ordering!r}"
        )
    if discount_mode not in ("directed", "total"):
        raise ValueError(
            f"discount_mode must be 'directed' or 'total', got {discount_mode!r}"
        )
    r = copy_prob_r
    scratch = scratch if scratch is not None else _thread_scratch()
    indep = np.ones(arrays.n_claims, dtype=np.float64)
    buckets = arrays.multi_group_buckets
    if not buckets:
        return indep

    # O(pairs) sorted-key lookup — the dense n_workers² matrix is never
    # materialized, so dependence memory scales with co-answering pairs.
    directed = DirectedDependenceLookup.build(arrays, dependence)
    for m, claim_idx in buckets:
        members = arrays.claim_worker[claim_idx]  # (G, m)
        sub = directed.gather(members[:, :, None], members[:, None, :])  # (G, m, m)
        n_groups = len(members)
        total_sub = np.add(
            sub, sub.transpose(0, 2, 1), out=scratch.array("if_total", (n_groups, m, m))
        )
        totals = np.sum(total_sub, axis=2, out=scratch.array("if_totals", (n_groups, m)))
        if ordering == "dependent_first":
            first = np.argmax(totals, axis=1)
        else:
            first = np.argmin(totals, axis=1)

        rows = np.arange(n_groups)
        order = scratch.array("if_order", (n_groups, m), np.int64)
        order[:, 0] = first
        selected = scratch.array("if_selected", (n_groups, m), bool)
        selected[:] = False
        selected[rows, first] = True
        # Best directed attachment to any already-selected member
        # (Alg. 1 line 19), grown one selection at a time for every
        # group of this size simultaneously.
        attachment = scratch.array("if_attach", (n_groups, m))
        attachment[:] = sub[rows, :, first]
        masked = scratch.array("if_masked", (n_groups, m))
        for position in range(1, m):
            np.copyto(masked, attachment)
            masked[selected] = -np.inf
            nxt = np.argmax(masked, axis=1)
            order[:, position] = nxt
            selected[rows, nxt] = True
            np.maximum(attachment, sub[rows, :, nxt], out=attachment)

        discount_source = sub if discount_mode == "directed" else total_sub
        ordered = discount_source[
            rows[:, None, None], order[:, :, None], order[:, None, :]
        ]
        # score[k] = prod over predecessors l < k of (1 - r * dep[k, l]);
        # non-predecessor entries contribute a factor of exactly 1.
        factors = np.multiply(ordered, -r, out=scratch.array("if_factors", (n_groups, m, m)))
        np.add(factors, 1.0, out=factors)
        factors[:, ~np.tri(m, k=-1, dtype=bool)] = 1.0
        flat_positions = np.take_along_axis(claim_idx, order, axis=1)
        indep[flat_positions] = np.prod(factors, axis=2)
    return indep


def _segment_softmax(scores: np.ndarray, seg_ids: np.ndarray, ptr: np.ndarray) -> np.ndarray:
    """Softmax within each segment of a flat score array.

    ``seg_ids`` assigns each element to a segment; ``ptr`` is the CSR
    pointer of the (contiguous) segments.  Matches the scalar kernels'
    peak-shifted exponentiation.
    """
    n_seg = len(ptr) - 1
    if len(scores) == 0:
        return scores.copy()
    starts = ptr[:-1]
    nonempty = ptr[1:] > starts
    peak = np.full(n_seg, -np.inf)
    peak[nonempty] = np.maximum.reduceat(scores, starts[nonempty])
    weights = np.exp(scores - peak[seg_ids])
    totals = np.bincount(seg_ids, weights=weights, minlength=n_seg)
    return weights / totals[seg_ids]


def _plain_terms(
    arrays: ClaimArrays,
    claim_acc: np.ndarray,
    value_q: np.ndarray,
    *,
    lo: float,
    hi: float,
    block: slice,
    scratch: KernelScratch,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-claim ``(ln A, ln((1-A) q))`` for one contiguous claim block."""
    n = block.stop - block.start
    acc = np.clip(claim_acc[block], lo, hi, out=scratch.array("pp_acc", n))
    log_acc = np.log(acc, out=scratch.array("pp_log_acc", n))
    log_false = np.subtract(1.0, acc, out=scratch.array("pp_log_false", n))
    q = np.take(value_q, arrays.claim_group[block], out=scratch.array("pp_q", n))
    np.multiply(log_false, q, out=log_false)
    np.maximum(log_false, _MIN_PROB, out=log_false)
    np.log(log_false, out=log_false)
    return log_acc, log_false


def plain_posterior_groups(
    arrays: ClaimArrays,
    claim_acc: np.ndarray,
    *,
    false_values,
    accuracy_clamp: tuple[float, float] = (0.01, 0.99),
    intra_workers: int = 1,
    scratch: KernelScratch | None = None,
) -> np.ndarray:
    """Eq. 20 posteriors (undiscounted), one probability per value group.

    Mirrors :func:`~repro.core.accuracy.value_posteriors`.  When the
    false-value model is candidate-free (the uniform default: ``q``
    depends only on the task), the whole computation is three segment
    sums — optionally blocked over ``intra_workers`` threads with the
    partials reduced in block order; otherwise each task builds its
    small ``K x K`` false-value matrix through the scalar model API.
    """
    lo, hi = accuracy_clamp
    index = arrays.index
    scratch = scratch if scratch is not None else _thread_scratch()

    if getattr(false_values, "candidate_free", False):
        value_q = false_values.value_probability_array(index)
        n_claims = arrays.n_claims
        # Score of group g = Σ_{claims in g} log A + Σ_{other claims of
        # the task} log((1-A) q): per-task totals minus the group's own.
        if intra_workers > 1 and n_claims >= _MIN_PARALLEL_ROWS:

            def sum_block(block: slice):
                log_acc, log_false = _plain_terms(
                    arrays,
                    claim_acc,
                    value_q,
                    lo=lo,
                    hi=hi,
                    block=block,
                    scratch=_thread_scratch(),
                )
                return (
                    np.bincount(
                        arrays.claim_task[block],
                        weights=log_false,
                        minlength=index.n_tasks,
                    ),
                    np.bincount(
                        arrays.claim_group[block],
                        weights=log_acc,
                        minlength=arrays.n_groups,
                    ),
                    np.bincount(
                        arrays.claim_group[block],
                        weights=log_false,
                        minlength=arrays.n_groups,
                    ),
                )

            partials = list(
                _intra_pool(intra_workers).map(
                    sum_block, _block_slices(n_claims, intra_workers)
                )
            )
            task_false, own_acc, own_false = partials[0]
            for part_task, part_acc, part_false in partials[1:]:
                task_false += part_task
                own_acc += part_acc
                own_false += part_false
        else:
            log_acc, log_false = _plain_terms(
                arrays,
                claim_acc,
                value_q,
                lo=lo,
                hi=hi,
                block=slice(0, n_claims),
                scratch=scratch,
            )
            task_false = np.bincount(
                arrays.claim_task, weights=log_false, minlength=index.n_tasks
            )
            own_acc = np.bincount(
                arrays.claim_group, weights=log_acc, minlength=arrays.n_groups
            )
            own_false = np.bincount(
                arrays.claim_group, weights=log_false, minlength=arrays.n_groups
            )
        scores = own_acc + task_false[arrays.group_task] - own_false
        return _segment_softmax(scores, arrays.group_task, arrays.task_group_ptr)

    # General model: per-task K x K false-value matrices, computed once
    # per index (they are iteration-invariant) and cached on the model.
    acc = np.clip(claim_acc, lo, hi)
    log_acc = np.log(acc)
    q_matrices = false_values.value_probability_matrices(index)
    scores = np.empty(arrays.n_groups, dtype=np.float64)
    for j in range(index.n_tasks):
        g0, g1 = int(arrays.task_group_ptr[j]), int(arrays.task_group_ptr[j + 1])
        if g0 == g1:
            continue
        c0, c1 = int(arrays.task_ptr[j]), int(arrays.task_ptr[j + 1])
        q = q_matrices[j]
        codes = arrays.claim_code[c0:c1]
        acc_j = acc[c0:c1]
        contrib = _safe_log((1.0 - acc_j)[:, None] * q[codes, :])
        own = codes[:, None] == np.arange(g1 - g0)[None, :]
        contrib = np.where(own, log_acc[c0:c1, None], contrib)
        scores[g0:g1] = contrib.sum(axis=0)
    return _segment_softmax(scores, arrays.group_task, arrays.task_group_ptr)


def _discount_terms(
    arrays: ClaimArrays,
    claim_acc: np.ndarray,
    indep: np.ndarray,
    group_q: np.ndarray,
    *,
    lo: float,
    hi: float,
    block: slice,
    scratch: KernelScratch,
) -> np.ndarray:
    """Per-claim ``I · (ln A - ln((1-A) q))`` for one contiguous block."""
    n = block.stop - block.start
    acc = np.clip(claim_acc[block], lo, hi, out=scratch.array("dq_acc", n))
    term = np.log(acc, out=scratch.array("dq_term", n))
    false_part = np.subtract(1.0, acc, out=scratch.array("dq_false", n))
    q = np.take(group_q, arrays.claim_group[block], out=scratch.array("dq_q", n))
    np.multiply(false_part, q, out=false_part)
    np.maximum(false_part, _MIN_PROB, out=false_part)
    np.log(false_part, out=false_part)
    np.subtract(term, false_part, out=term)
    np.multiply(term, indep[block], out=term)
    return term


def discounted_posterior_groups(
    arrays: ClaimArrays,
    claim_acc: np.ndarray,
    indep: np.ndarray,
    *,
    group_q: np.ndarray,
    accuracy_clamp: tuple[float, float] = (0.01, 0.99),
    intra_workers: int = 1,
    scratch: KernelScratch | None = None,
) -> np.ndarray:
    """Independence-weighted posteriors, one per value group.

    Mirrors :func:`~repro.core.accuracy.discounted_value_posteriors`:
    each claim contributes ``I · (ln A - ln((1-A) q))`` to its group's
    log score; scores are softmax-normalized per task.  ``group_q`` is
    the per-group false-value probability (already floored at the
    likelihood clamp), typically
    :meth:`FalseValueDistribution.value_probability_array`.

    ``intra_workers > 1`` sums fixed contiguous claim blocks on the
    shared thread pool, reducing partials in block order (deterministic
    run-to-run, ≤1e-9 from serial).
    """
    lo, hi = accuracy_clamp
    n_claims = arrays.n_claims
    if intra_workers > 1 and n_claims >= _MIN_PARALLEL_ROWS:

        def sum_block(block: slice):
            term = _discount_terms(
                arrays,
                claim_acc,
                indep,
                group_q,
                lo=lo,
                hi=hi,
                block=block,
                scratch=_thread_scratch(),
            )
            return np.bincount(
                arrays.claim_group[block], weights=term, minlength=arrays.n_groups
            )

        partials = list(
            _intra_pool(intra_workers).map(
                sum_block, _block_slices(n_claims, intra_workers)
            )
        )
        scores = partials[0]
        for part in partials[1:]:
            scores += part
    else:
        term = _discount_terms(
            arrays,
            claim_acc,
            indep,
            group_q,
            lo=lo,
            hi=hi,
            block=slice(0, n_claims),
            scratch=scratch if scratch is not None else _thread_scratch(),
        )
        scores = np.bincount(
            arrays.claim_group, weights=term, minlength=arrays.n_groups
        )
    return _segment_softmax(scores, arrays.group_task, arrays.task_group_ptr)


def accuracy_flat(
    arrays: ClaimArrays,
    group_post: np.ndarray,
    *,
    granularity: str = "worker",
) -> np.ndarray:
    """Eq. 17: refresh the per-claim accuracies from the posteriors.

    ``"worker"`` granularity averages each worker's claim posteriors and
    broadcasts the mean back to its claims; ``"task"`` keeps the
    per-claim posterior.  The flat twin of
    :func:`~repro.core.accuracy.update_accuracy_matrix`.
    """
    if granularity not in ("worker", "task"):
        raise ValueError(
            f"granularity must be one of ('worker', 'task'), got {granularity!r}"
        )
    posterior = group_post[arrays.claim_group]
    if granularity == "task":
        return posterior
    n_workers = arrays.index.n_workers
    sums = np.bincount(arrays.claim_worker, weights=posterior, minlength=n_workers)
    counts = np.bincount(arrays.claim_worker, minlength=n_workers)
    means = np.divide(
        sums, counts, out=np.zeros(n_workers), where=counts > 0
    )
    return means[arrays.claim_worker]


def support_flat(
    arrays: ClaimArrays,
    claim_acc: np.ndarray,
    indep: np.ndarray,
    *,
    similarity=None,
    similarity_weight: float = 0.0,
) -> np.ndarray:
    """Alg. 1 line 28: support count per value group, one segment sum.

    The optional Sec. IV-A adjustment (Eq. 21) runs per task over the
    group totals: a worker submits one value per task, so the "providers
    of v' outside W_v" in the formula are simply all of W_v', and the
    bonus is ``ρ · Σ sim(v, v') · sc_j(v')`` over the base counts.
    """
    if similarity is not None and not 0.0 <= similarity_weight <= 1.0:
        raise ValueError(
            f"similarity_weight must be in [0, 1], got {similarity_weight}"
        )
    base = np.bincount(
        arrays.claim_group, weights=claim_acc * indep, minlength=arrays.n_groups
    )
    if similarity is None or similarity_weight == 0.0:
        return base
    adjusted = base.copy()
    for j in range(arrays.index.n_tasks):
        g0, g1 = int(arrays.task_group_ptr[j]), int(arrays.task_group_ptr[j + 1])
        if g1 - g0 <= 1:
            continue
        values = arrays.group_values[g0:g1]
        for gi in range(g0, g1):
            bonus = 0.0
            for gk in range(g0, g1):
                if gk == gi:
                    continue
                sim = similarity(values[gi - g0], values[gk - g0])
                if sim > 0.0:
                    bonus += sim * base[gk]
            adjusted[gi] = base[gi] + similarity_weight * bonus
    return adjusted


def select_truth_codes(arrays: ClaimArrays, group_support: np.ndarray) -> np.ndarray:
    """Line 28's argmax: per-task winning value code (ties to smallest)."""
    return segment_first_argmax_code(
        group_support, arrays.group_task, arrays.group_code, arrays.task_group_ptr
    )


# -- conversions back to the string-keyed public structures --------------


def dense_accuracy(arrays: ClaimArrays, claim_acc: np.ndarray) -> np.ndarray:
    """Scatter the flat per-claim accuracies into the dense ``A`` matrix."""
    index = arrays.index
    matrix = np.zeros((index.n_workers, index.n_tasks), dtype=np.float64)
    matrix[arrays.claim_worker, arrays.claim_task] = claim_acc
    return matrix


def posterior_table(
    arrays: ClaimArrays, group_post: np.ndarray
) -> list[dict[str, float]]:
    """Per-group posteriors -> the scalar ``PosteriorTable`` shape."""
    return _group_table(arrays, group_post)


def support_table(
    arrays: ClaimArrays, group_support: np.ndarray
) -> list[dict[str, float]]:
    """Per-group support -> the scalar ``SupportTable`` shape."""
    return _group_table(arrays, group_support)


def _group_table(arrays: ClaimArrays, values: np.ndarray) -> list[dict[str, float]]:
    table: list[dict[str, float]] = []
    ptr = arrays.task_group_ptr
    for j in range(arrays.index.n_tasks):
        g0, g1 = int(ptr[j]), int(ptr[j + 1])
        table.append(
            {arrays.group_values[g]: float(values[g]) for g in range(g0, g1)}
        )
    return table


def dependence_table(
    arrays: ClaimArrays, dependence: DependenceArrays
) -> dict[tuple[int, int], DependencePosterior]:
    """Pair arrays -> the scalar ``(a, b) -> DependencePosterior`` dict."""
    return {
        (int(a), int(b)): DependencePosterior(p_a_to_b=float(ab), p_b_to_a=float(ba))
        for a, b, ab, ba in zip(
            arrays.pair_a, arrays.pair_b, dependence.p_ab, dependence.p_ba
        )
    }


def independence_table(
    arrays: ClaimArrays, indep: np.ndarray
) -> list[dict[str, dict[int, float]]]:
    """Flat per-claim independence -> the scalar ``IndependenceTable``."""
    table: list[dict[str, dict[int, float]]] = []
    for j in range(arrays.index.n_tasks):
        g0, g1 = int(arrays.task_group_ptr[j]), int(arrays.task_group_ptr[j + 1])
        per_value: dict[str, dict[int, float]] = {}
        for g in range(g0, g1):
            c0, c1 = int(arrays.group_ptr[g]), int(arrays.group_ptr[g + 1])
            per_value[arrays.group_values[g]] = {
                int(arrays.claim_worker[c]): float(indep[c]) for c in range(c0, c1)
            }
        table.append(per_value)
    return table
