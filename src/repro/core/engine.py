"""Vectorized DATE kernels over :class:`~repro.core.indexing.ClaimArrays`.

This module is the array-native twin of the scalar step modules
(:mod:`~repro.core.dependence`, :mod:`~repro.core.independence`,
:mod:`~repro.core.accuracy`, :mod:`~repro.core.support`): every kernel
computes the same quantity from the same equations, but as flat numpy
passes over the integer-coded claim arrays instead of per-element
Python loops.  State lives in three flat arrays between iterations:

- ``claim_acc`` — one accuracy per claim (the non-zero entries of the
  dense ``A`` matrix, in claim order);
- ``indep`` — one independence probability ``I_v^j(i)`` per claim;
- ``truth_codes`` — one value code per task (-1 for unanswered tasks).

The dense matrix and the string-keyed tables of the public API are
materialized once at the end of a run (:func:`dense_accuracy`,
:func:`posterior_table`, :func:`support_table`,
:func:`dependence_table`).  DESIGN.md §7 documents the encoding and the
backend selection; tests/property/test_property_backends.py pins the
equivalence with the scalar reference backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .dependence import DependencePosterior
from .indexing import ClaimArrays, segment_first_argmax_code

__all__ = [
    "DependenceArrays",
    "DirectedDependenceLookup",
    "pairwise_dependence_arrays",
    "independence_flat",
    "plain_posterior_groups",
    "discounted_posterior_groups",
    "accuracy_flat",
    "support_flat",
    "select_truth_codes",
    "dense_accuracy",
    "posterior_table",
    "support_table",
    "dependence_table",
    "independence_table",
]

# Same likelihood clamp as the scalar kernels.
_MIN_PROB = 1e-12


def _safe_log(x: np.ndarray) -> np.ndarray:
    return np.log(np.maximum(x, _MIN_PROB))


@dataclass(frozen=True)
class DependenceArrays:
    """Directional dependence posteriors for every co-answering pair.

    ``p_ab[k]`` is ``P(pair_a[k] -> pair_b[k] | D)`` (the first worker
    of pair ``k`` copies from the second), ``p_ba`` the reverse — the
    array form of :class:`~repro.core.dependence.DependencePosterior`
    over ``ClaimArrays.pair_a/pair_b``.
    """

    p_ab: np.ndarray
    p_ba: np.ndarray

    def directed_matrix(self, arrays: ClaimArrays) -> np.ndarray:
        """Dense ``D[i, k] = P(i -> k | D)`` lookup (0 where undefined).

        O(n_workers²) memory — only appropriate for deliberately small
        worlds (the exponential ED baseline).  Production paths use
        :class:`DirectedDependenceLookup`, which is O(pairs).
        """
        n = arrays.index.n_workers
        matrix = np.zeros((n, n), dtype=np.float64)
        matrix[arrays.pair_a, arrays.pair_b] = self.p_ab
        matrix[arrays.pair_b, arrays.pair_a] = self.p_ba
        return matrix


@dataclass(frozen=True)
class DirectedDependenceLookup:
    """O(pairs) lookup of ``P(i -> k | D)`` over sorted integer keys.

    The sparse replacement for :meth:`DependenceArrays.directed_matrix`:
    each directed pair is keyed as ``i * n_workers + k`` and stored
    sorted, so an arbitrary batch of ``(i, k)`` queries is one
    ``searchsorted`` — memory stays O(pairs) where the dense matrix is
    O(n_workers²).  Pairs that never co-answered (and the diagonal)
    resolve to 0, exactly as the dense matrix's unset entries.
    """

    keys: np.ndarray
    values: np.ndarray
    n_workers: int

    @classmethod
    def build(
        cls, arrays: ClaimArrays, dependence: DependenceArrays
    ) -> "DirectedDependenceLookup":
        n = arrays.index.n_workers
        a = arrays.pair_a.astype(np.int64)
        b = arrays.pair_b.astype(np.int64)
        keys = np.concatenate([a * n + b, b * n + a])
        values = np.concatenate([dependence.p_ab, dependence.p_ba])
        order = np.argsort(keys)
        return cls(keys=keys[order], values=values[order], n_workers=n)

    def gather(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """``D[src, dst]`` for broadcastable index arrays (0 where unset)."""
        query = src.astype(np.int64) * self.n_workers + dst
        if self.keys.size == 0:
            return np.zeros(query.shape, dtype=np.float64)
        position = np.searchsorted(self.keys, query)
        position = np.minimum(position, len(self.keys) - 1)
        return np.where(
            self.keys[position] == query, self.values[position], 0.0
        )


def pairwise_dependence_arrays(
    arrays: ClaimArrays,
    truth_codes: np.ndarray,
    claim_acc: np.ndarray,
    *,
    copy_prob_r: float,
    prior_alpha: float,
    collision: np.ndarray,
    accuracy_clamp: tuple[float, float] = (0.01, 0.99),
) -> DependenceArrays:
    """Step 1 (Eqs. 7-15) as one pass over the (pair, shared task) rows.

    Mirrors :func:`~repro.core.dependence.compute_pairwise_dependence`:
    each flattened row contributes its log-likelihood terms to the three
    hypotheses of its pair (segment sums by pair), then Bayes' rule with
    the α/2 prior split normalizes in log space.  ``collision`` is the
    per-task false-value collision probability (Eq. 22's integral),
    typically :meth:`FalseValueDistribution.collision_array`.
    """
    if not 0.0 < copy_prob_r < 1.0:
        raise ValueError(f"copy_prob_r must be in (0, 1), got {copy_prob_r}")
    if not 0.0 < prior_alpha < 1.0:
        raise ValueError(f"prior_alpha must be in (0, 1), got {prior_alpha}")
    lo, hi = accuracy_clamp
    r = copy_prob_r

    acc_a = np.clip(claim_acc[arrays.ps_claim_a], lo, hi)
    acc_b = np.clip(claim_acc[arrays.ps_claim_b], lo, hi)
    code_a = arrays.claim_code[arrays.ps_claim_a]
    code_b = arrays.claim_code[arrays.ps_claim_b]
    col = collision[arrays.ps_task]

    same = code_a == code_b
    is_truth = same & (code_a == truth_codes[arrays.ps_task])

    p_same_true = acc_a * acc_b
    p_same_false = (1.0 - acc_a) * (1.0 - acc_b) * col
    # T_s rows use the true-agreement likelihood, T_f rows the
    # false-collision one (Eqs. 7, 8, 11, 12, 22).
    p_same = np.where(is_truth, p_same_true, p_same_false)
    src_a = np.where(is_truth, acc_a, 1.0 - acc_a)
    src_b = np.where(is_truth, acc_b, 1.0 - acc_b)
    # T_d rows: P_d = 1 - P_s - P_f (Eqs. 9, 13).
    p_diff = np.maximum(1.0 - p_same_true - p_same_false, _MIN_PROB)

    log_diff_dep = _safe_log(p_diff * (1.0 - r))
    log_ind = np.where(same, _safe_log(p_same), _safe_log(p_diff))
    log_ab = np.where(same, _safe_log(src_b * r + p_same * (1.0 - r)), log_diff_dep)
    log_ba = np.where(same, _safe_log(src_a * r + p_same * (1.0 - r)), log_diff_dep)

    n_pairs = arrays.n_pairs
    score_ind = math.log(1.0 - prior_alpha) + np.bincount(
        arrays.ps_pair, weights=log_ind, minlength=n_pairs
    )
    log_prior_dep = math.log(prior_alpha / 2.0)
    score_ab = log_prior_dep + np.bincount(
        arrays.ps_pair, weights=log_ab, minlength=n_pairs
    )
    score_ba = log_prior_dep + np.bincount(
        arrays.ps_pair, weights=log_ba, minlength=n_pairs
    )

    peak = np.maximum(score_ind, np.maximum(score_ab, score_ba))
    w_ind = np.exp(score_ind - peak)
    w_ab = np.exp(score_ab - peak)
    w_ba = np.exp(score_ba - peak)
    total = w_ind + w_ab + w_ba
    return DependenceArrays(p_ab=w_ab / total, p_ba=w_ba / total)


def independence_flat(
    arrays: ClaimArrays,
    dependence: DependenceArrays,
    *,
    copy_prob_r: float,
    ordering: str = "dependent_first",
    discount_mode: str = "directed",
) -> np.ndarray:
    """Step 2 (Eq. 16): one independence probability per claim.

    The greedy ordering inside each multi-provider value group is
    inherently sequential in the group *size*, but not across groups:
    all groups of one size run batched (``(G, m, m)`` tensors gathered
    through the O(pairs) :class:`DirectedDependenceLookup`), so the
    Python loop is one step per distinct group size — not per group.  Single-provider groups
    keep the definitional ``I = 1`` without being visited at all.

    Ordering and tie-break rules replicate
    :func:`~repro.core.independence.order_value_group` exactly: groups
    store workers ascending, and ``argmax``/``argmin`` pick the first
    (smallest-index) element on ties.
    """
    if not 0.0 < copy_prob_r < 1.0:
        raise ValueError(f"copy_prob_r must be in (0, 1), got {copy_prob_r}")
    if ordering not in ("dependent_first", "independent_first"):
        raise ValueError(
            "ordering must be 'dependent_first' or 'independent_first', "
            f"got {ordering!r}"
        )
    if discount_mode not in ("directed", "total"):
        raise ValueError(
            f"discount_mode must be 'directed' or 'total', got {discount_mode!r}"
        )
    r = copy_prob_r
    indep = np.ones(arrays.n_claims, dtype=np.float64)
    buckets = arrays.multi_group_buckets
    if not buckets:
        return indep

    # O(pairs) sorted-key lookup — the dense n_workers² matrix is never
    # materialized, so dependence memory scales with co-answering pairs.
    directed = DirectedDependenceLookup.build(arrays, dependence)
    for m, claim_idx in buckets:
        members = arrays.claim_worker[claim_idx]  # (G, m)
        sub = directed.gather(members[:, :, None], members[:, None, :])  # (G, m, m)
        total_sub = sub + sub.transpose(0, 2, 1)
        totals = total_sub.sum(axis=2)
        if ordering == "dependent_first":
            first = np.argmax(totals, axis=1)
        else:
            first = np.argmin(totals, axis=1)

        n_groups = len(members)
        rows = np.arange(n_groups)
        order = np.empty((n_groups, m), dtype=np.int64)
        order[:, 0] = first
        selected = np.zeros((n_groups, m), dtype=bool)
        selected[rows, first] = True
        # Best directed attachment to any already-selected member
        # (Alg. 1 line 19), grown one selection at a time for every
        # group of this size simultaneously.
        attachment = sub[rows, :, first].copy()
        for position in range(1, m):
            masked = np.where(selected, -np.inf, attachment)
            nxt = np.argmax(masked, axis=1)
            order[:, position] = nxt
            selected[rows, nxt] = True
            np.maximum(attachment, sub[rows, :, nxt], out=attachment)

        discount_source = sub if discount_mode == "directed" else total_sub
        ordered = discount_source[
            rows[:, None, None], order[:, :, None], order[:, None, :]
        ]
        # score[k] = prod over predecessors l < k of (1 - r * dep[k, l]);
        # tril zeroes the non-predecessor entries, whose factor is 1.
        factors = 1.0 - r * np.tril(ordered, k=-1)
        flat_positions = np.take_along_axis(claim_idx, order, axis=1)
        indep[flat_positions] = np.prod(factors, axis=2)
    return indep


def _segment_softmax(scores: np.ndarray, seg_ids: np.ndarray, ptr: np.ndarray) -> np.ndarray:
    """Softmax within each segment of a flat score array.

    ``seg_ids`` assigns each element to a segment; ``ptr`` is the CSR
    pointer of the (contiguous) segments.  Matches the scalar kernels'
    peak-shifted exponentiation.
    """
    n_seg = len(ptr) - 1
    if len(scores) == 0:
        return scores.copy()
    starts = ptr[:-1]
    nonempty = ptr[1:] > starts
    peak = np.full(n_seg, -np.inf)
    peak[nonempty] = np.maximum.reduceat(scores, starts[nonempty])
    weights = np.exp(scores - peak[seg_ids])
    totals = np.bincount(seg_ids, weights=weights, minlength=n_seg)
    return weights / totals[seg_ids]


def plain_posterior_groups(
    arrays: ClaimArrays,
    claim_acc: np.ndarray,
    *,
    false_values,
    accuracy_clamp: tuple[float, float] = (0.01, 0.99),
) -> np.ndarray:
    """Eq. 20 posteriors (undiscounted), one probability per value group.

    Mirrors :func:`~repro.core.accuracy.value_posteriors`.  When the
    false-value model is candidate-free (the uniform default: ``q``
    depends only on the task), the whole computation is three segment
    sums; otherwise each task builds its small ``K x K`` false-value
    matrix through the scalar model API.
    """
    lo, hi = accuracy_clamp
    acc = np.clip(claim_acc, lo, hi)
    log_acc = np.log(acc)
    index = arrays.index

    if getattr(false_values, "candidate_free", False):
        q = false_values.value_probability_array(index)[arrays.claim_group]
        log_false = _safe_log((1.0 - acc) * q)
        # Score of group g = Σ_{claims in g} log A + Σ_{other claims of
        # the task} log((1-A) q): per-task totals minus the group's own.
        task_false = np.bincount(
            arrays.claim_task, weights=log_false, minlength=index.n_tasks
        )
        own_acc = np.bincount(
            arrays.claim_group, weights=log_acc, minlength=arrays.n_groups
        )
        own_false = np.bincount(
            arrays.claim_group, weights=log_false, minlength=arrays.n_groups
        )
        scores = own_acc + task_false[arrays.group_task] - own_false
        return _segment_softmax(scores, arrays.group_task, arrays.task_group_ptr)

    # General model: per-task K x K false-value matrices, computed once
    # per index (they are iteration-invariant) and cached on the model.
    q_matrices = false_values.value_probability_matrices(index)
    scores = np.empty(arrays.n_groups, dtype=np.float64)
    for j in range(index.n_tasks):
        g0, g1 = int(arrays.task_group_ptr[j]), int(arrays.task_group_ptr[j + 1])
        if g0 == g1:
            continue
        c0, c1 = int(arrays.task_ptr[j]), int(arrays.task_ptr[j + 1])
        q = q_matrices[j]
        codes = arrays.claim_code[c0:c1]
        acc_j = acc[c0:c1]
        contrib = _safe_log((1.0 - acc_j)[:, None] * q[codes, :])
        own = codes[:, None] == np.arange(g1 - g0)[None, :]
        contrib = np.where(own, log_acc[c0:c1, None], contrib)
        scores[g0:g1] = contrib.sum(axis=0)
    return _segment_softmax(scores, arrays.group_task, arrays.task_group_ptr)


def discounted_posterior_groups(
    arrays: ClaimArrays,
    claim_acc: np.ndarray,
    indep: np.ndarray,
    *,
    group_q: np.ndarray,
    accuracy_clamp: tuple[float, float] = (0.01, 0.99),
) -> np.ndarray:
    """Independence-weighted posteriors, one per value group.

    Mirrors :func:`~repro.core.accuracy.discounted_value_posteriors`:
    each claim contributes ``I · (ln A - ln((1-A) q))`` to its group's
    log score; scores are softmax-normalized per task.  ``group_q`` is
    the per-group false-value probability (already floored at the
    likelihood clamp), typically
    :meth:`FalseValueDistribution.value_probability_array`.
    """
    lo, hi = accuracy_clamp
    acc = np.clip(claim_acc, lo, hi)
    q = group_q[arrays.claim_group]
    term = indep * (np.log(acc) - _safe_log((1.0 - acc) * q))
    scores = np.bincount(arrays.claim_group, weights=term, minlength=arrays.n_groups)
    return _segment_softmax(scores, arrays.group_task, arrays.task_group_ptr)


def accuracy_flat(
    arrays: ClaimArrays,
    group_post: np.ndarray,
    *,
    granularity: str = "worker",
) -> np.ndarray:
    """Eq. 17: refresh the per-claim accuracies from the posteriors.

    ``"worker"`` granularity averages each worker's claim posteriors and
    broadcasts the mean back to its claims; ``"task"`` keeps the
    per-claim posterior.  The flat twin of
    :func:`~repro.core.accuracy.update_accuracy_matrix`.
    """
    if granularity not in ("worker", "task"):
        raise ValueError(
            f"granularity must be one of ('worker', 'task'), got {granularity!r}"
        )
    posterior = group_post[arrays.claim_group]
    if granularity == "task":
        return posterior
    n_workers = arrays.index.n_workers
    sums = np.bincount(arrays.claim_worker, weights=posterior, minlength=n_workers)
    counts = np.bincount(arrays.claim_worker, minlength=n_workers)
    means = np.divide(
        sums, counts, out=np.zeros(n_workers), where=counts > 0
    )
    return means[arrays.claim_worker]


def support_flat(
    arrays: ClaimArrays,
    claim_acc: np.ndarray,
    indep: np.ndarray,
    *,
    similarity=None,
    similarity_weight: float = 0.0,
) -> np.ndarray:
    """Alg. 1 line 28: support count per value group, one segment sum.

    The optional Sec. IV-A adjustment (Eq. 21) runs per task over the
    group totals: a worker submits one value per task, so the "providers
    of v' outside W_v" in the formula are simply all of W_v', and the
    bonus is ``ρ · Σ sim(v, v') · sc_j(v')`` over the base counts.
    """
    if similarity is not None and not 0.0 <= similarity_weight <= 1.0:
        raise ValueError(
            f"similarity_weight must be in [0, 1], got {similarity_weight}"
        )
    base = np.bincount(
        arrays.claim_group, weights=claim_acc * indep, minlength=arrays.n_groups
    )
    if similarity is None or similarity_weight == 0.0:
        return base
    adjusted = base.copy()
    for j in range(arrays.index.n_tasks):
        g0, g1 = int(arrays.task_group_ptr[j]), int(arrays.task_group_ptr[j + 1])
        if g1 - g0 <= 1:
            continue
        values = arrays.group_values[g0:g1]
        for gi in range(g0, g1):
            bonus = 0.0
            for gk in range(g0, g1):
                if gk == gi:
                    continue
                sim = similarity(values[gi - g0], values[gk - g0])
                if sim > 0.0:
                    bonus += sim * base[gk]
            adjusted[gi] = base[gi] + similarity_weight * bonus
    return adjusted


def select_truth_codes(arrays: ClaimArrays, group_support: np.ndarray) -> np.ndarray:
    """Line 28's argmax: per-task winning value code (ties to smallest)."""
    return segment_first_argmax_code(
        group_support, arrays.group_task, arrays.group_code, arrays.task_group_ptr
    )


# -- conversions back to the string-keyed public structures --------------


def dense_accuracy(arrays: ClaimArrays, claim_acc: np.ndarray) -> np.ndarray:
    """Scatter the flat per-claim accuracies into the dense ``A`` matrix."""
    index = arrays.index
    matrix = np.zeros((index.n_workers, index.n_tasks), dtype=np.float64)
    matrix[arrays.claim_worker, arrays.claim_task] = claim_acc
    return matrix


def posterior_table(
    arrays: ClaimArrays, group_post: np.ndarray
) -> list[dict[str, float]]:
    """Per-group posteriors -> the scalar ``PosteriorTable`` shape."""
    return _group_table(arrays, group_post)


def support_table(
    arrays: ClaimArrays, group_support: np.ndarray
) -> list[dict[str, float]]:
    """Per-group support -> the scalar ``SupportTable`` shape."""
    return _group_table(arrays, group_support)


def _group_table(arrays: ClaimArrays, values: np.ndarray) -> list[dict[str, float]]:
    table: list[dict[str, float]] = []
    ptr = arrays.task_group_ptr
    for j in range(arrays.index.n_tasks):
        g0, g1 = int(ptr[j]), int(ptr[j + 1])
        table.append(
            {arrays.group_values[g]: float(values[g]) for g in range(g0, g1)}
        )
    return table


def dependence_table(
    arrays: ClaimArrays, dependence: DependenceArrays
) -> dict[tuple[int, int], DependencePosterior]:
    """Pair arrays -> the scalar ``(a, b) -> DependencePosterior`` dict."""
    return {
        (int(a), int(b)): DependencePosterior(p_a_to_b=float(ab), p_b_to_a=float(ba))
        for a, b, ab, ba in zip(
            arrays.pair_a, arrays.pair_b, dependence.p_ab, dependence.p_ba
        )
    }


def independence_table(
    arrays: ClaimArrays, indep: np.ndarray
) -> list[dict[str, dict[int, float]]]:
    """Flat per-claim independence -> the scalar ``IndependenceTable``."""
    table: list[dict[str, dict[int, float]]] = []
    for j in range(arrays.index.n_tasks):
        g0, g1 = int(arrays.task_group_ptr[j]), int(arrays.task_group_ptr[j + 1])
        per_value: dict[str, dict[int, float]] = {}
        for g in range(g0, g1):
            c0, c1 = int(arrays.group_ptr[g]), int(arrays.group_ptr[g + 1])
            per_value[arrays.group_values[g]] = {
                int(arrays.claim_worker[c]): float(indep[c]) for c in range(c0, c1)
            }
        table.append(per_value)
    return table
