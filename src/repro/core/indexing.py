"""Integer-indexed views of a :class:`~repro.types.Dataset`.

DATE's inner loops touch the same derived structures every iteration:
claims by task, value groups ``W_v^j``, the co-answering worker pairs,
and each pair's shared tasks.  :class:`DatasetIndex` computes them once,
mapping string ids to dense integer indexes so the hot paths work on
ints and numpy arrays.

:class:`ClaimArrays` (reachable as :attr:`DatasetIndex.arrays`) goes one
step further: every claim value is replaced by a small per-task integer
code and all per-claim, per-value-group and per-worker-pair structures
are flattened into contiguous numpy arrays (CSR style).  The vectorized
DATE backend (:mod:`repro.core.engine`) runs entirely on these arrays;
see DESIGN.md §7 for the encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..types import Dataset

__all__ = ["ClaimArrays", "DatasetIndex"]


class DatasetIndex:
    """Precomputed integer-indexed structures for one dataset.

    The index is read-only; all algorithms in :mod:`repro.core` and
    :mod:`repro.baselines` accept either a dataset (and build an index
    internally) or a prebuilt index (to share the cost across
    algorithms, as the benchmark harness does).
    """

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        #: Task ids in dataset order; positions are the task indexes used below.
        self.task_ids: list[str] = [t.task_id for t in dataset.tasks]
        #: Worker ids in dataset order; positions are the worker indexes.
        self.worker_ids: list[str] = [w.worker_id for w in dataset.workers]
        self.task_pos: dict[str, int] = {t: j for j, t in enumerate(self.task_ids)}
        self.worker_pos: dict[str, int] = {w: i for i, w in enumerate(self.worker_ids)}

        n_tasks = len(self.task_ids)
        n_workers = len(self.worker_ids)
        #: ``claims_by_task[j]`` is ``{worker_index: value}``.
        self.claims_by_task: list[dict[int, str]] = [{} for _ in range(n_tasks)]
        #: ``claims_by_worker[i]`` is ``{task_index: value}``.
        self.claims_by_worker: list[dict[int, str]] = [{} for _ in range(n_workers)]
        for (worker_id, task_id), value in dataset.claims.items():
            i = self.worker_pos[worker_id]
            j = self.task_pos[task_id]
            self.claims_by_task[j][i] = value
            self.claims_by_worker[i][j] = value

        #: ``value_groups[j]`` is ``{value: sorted tuple of worker indexes}``
        #: (the paper's ``W_v^j``), with values in sorted order for
        #: deterministic iteration.
        self.value_groups: list[dict[str, tuple[int, ...]]] = []
        for j in range(n_tasks):
            groups: dict[str, list[int]] = {}
            for i, value in self.claims_by_task[j].items():
                groups.setdefault(value, []).append(i)
            self.value_groups.append(
                {v: tuple(sorted(ws)) for v, ws in sorted(groups.items())}
            )

        #: Effective ``num_j`` (count of false values) per task: the
        #: declared closed-domain size minus one, or the observed number
        #: of distinct values minus one for open domains; at least 1 so
        #: the false-value probability ``(1 - A)/num`` stays finite.
        self.num_false = np.empty(n_tasks, dtype=np.int64)
        for j, task in enumerate(dataset.tasks):
            if task.domain:
                num = task.num_false
            else:
                num = len(self.value_groups[j]) - 1
            self.num_false[j] = max(num, 1)

    @property
    def n_tasks(self) -> int:
        return len(self.task_ids)

    @property
    def n_workers(self) -> int:
        return len(self.worker_ids)

    @cached_property
    def worker_task_sets(self) -> list[frozenset[int]]:
        """Task-index set answered by each worker."""
        return [frozenset(claims) for claims in self.claims_by_worker]

    @cached_property
    def pairs(self) -> list[tuple[int, int]]:
        """All worker pairs ``(a, b)`` with ``a < b`` sharing at least one task.

        Dependence is only defined (and only informative) for pairs that
        co-answered something, so step 1 iterates exactly this list.
        """
        seen: set[tuple[int, int]] = set()
        for claims in self.claims_by_task:
            members = sorted(claims)
            for x in range(len(members)):
                for y in range(x + 1, len(members)):
                    seen.add((members[x], members[y]))
        return sorted(seen)

    @cached_property
    def shared_tasks(self) -> dict[tuple[int, int], tuple[int, ...]]:
        """``(a, b) -> task indexes answered by both`` for every pair."""
        shared: dict[tuple[int, int], list[int]] = {p: [] for p in self.pairs}
        for j, claims in enumerate(self.claims_by_task):
            members = sorted(claims)
            for x in range(len(members)):
                for y in range(x + 1, len(members)):
                    shared[(members[x], members[y])].append(j)
        return {p: tuple(ts) for p, ts in shared.items()}

    def initial_accuracy_matrix(self, epsilon: float) -> np.ndarray:
        """Dense ``n_workers x n_tasks`` accuracy matrix initialized to ε.

        Entries for (worker, task) pairs without a claim are 0: a worker
        that did not answer a task contributes no accuracy to it (and no
        coverage in the auction stage).
        """
        matrix = np.zeros((self.n_workers, self.n_tasks), dtype=np.float64)
        for i, claims in enumerate(self.claims_by_worker):
            for j in claims:
                matrix[i, j] = epsilon
        return matrix

    def majority_vote(self) -> list[str | None]:
        """Per-task majority value (``None`` for unanswered tasks).

        Ties break lexicographically on the value so results are
        deterministic.  This is both the MV baseline's core and DATE's
        initial truth estimate (Sec. III-A: "the true value can be
        obtained through the voting mechanism ... initially").
        """
        winners: list[str | None] = []
        for j in range(self.n_tasks):
            groups = self.value_groups[j]
            if not groups:
                winners.append(None)
                continue
            # One pass: largest count wins, count ties go to the
            # lexicographically smallest value.
            best = min(groups.items(), key=lambda item: (-len(item[1]), item[0]))
            winners.append(best[0])
        return winners

    @cached_property
    def arrays(self) -> "ClaimArrays":
        """The integer-coded, flattened claim arrays for this dataset."""
        return ClaimArrays(self)


@dataclass(frozen=True, eq=False)
class ClaimArrays:
    """Integer-coded, CSR-flattened view of one dataset's claims.

    Values are replaced by per-task integer *codes*: the distinct values
    observed on task ``j`` are sorted lexicographically and numbered
    ``0..K_j-1``, so the lexicographic tie-breaks used throughout the
    scalar code become "smallest code" on the array side.

    Claims are stored once, sorted by ``(task, code, worker)``.  That
    single ordering makes three structures contiguous at the same time:

    - tasks (``task_ptr`` slices claims per task),
    - value groups ``W_v^j`` (``group_ptr`` slices claims per
      (task, value) group; groups of one task are adjacent and ordered
      by code),
    - and, within a group, workers ascending (matching the sorted
      tuples of :attr:`DatasetIndex.value_groups`).

    The co-answering worker pairs are flattened the same way: one row
    per (pair, shared task), grouped by pair via ``pair_ptr``, with
    ``ps_claim_a``/``ps_claim_b`` pointing back into the claim arrays so
    per-claim state (accuracy, codes) is a single gather away.
    """

    index: "DatasetIndex"

    # -- claims, sorted by (task, code, worker) --------------------------
    claim_task: np.ndarray = field(init=False)
    claim_worker: np.ndarray = field(init=False)
    claim_code: np.ndarray = field(init=False)
    claim_group: np.ndarray = field(init=False)
    task_ptr: np.ndarray = field(init=False)

    # -- value groups, in (task, code) order -----------------------------
    group_ptr: np.ndarray = field(init=False)
    group_task: np.ndarray = field(init=False)
    group_code: np.ndarray = field(init=False)
    group_size: np.ndarray = field(init=False)
    group_values: tuple[str, ...] = field(init=False)
    task_group_ptr: np.ndarray = field(init=False)

    # -- worker -> claim CSR ---------------------------------------------
    worker_ptr: np.ndarray = field(init=False)
    worker_claims: np.ndarray = field(init=False)

    # The co-answering pair tables (pair_a, pair_b, pair_ptr, ps_*) are
    # lazy cached properties: only the dependence kernels read them, and
    # their O(Σ m_j²) size should not tax algorithms that never look
    # (majority voting, NC).

    def __post_init__(self) -> None:
        index = self.index
        n_tasks, n_workers = index.n_tasks, index.n_workers

        claim_task: list[int] = []
        claim_worker: list[int] = []
        claim_code: list[int] = []
        claim_group: list[int] = []
        group_task: list[int] = []
        group_code: list[int] = []
        group_size: list[int] = []
        group_values: list[str] = []
        task_ptr = np.zeros(n_tasks + 1, dtype=np.int64)
        task_group_ptr = np.zeros(n_tasks + 1, dtype=np.int64)
        for j in range(n_tasks):
            # value_groups[j] iterates values in sorted order; workers in
            # each group are already sorted ascending.
            for code, (value, workers) in enumerate(index.value_groups[j].items()):
                group = len(group_task)
                group_task.append(j)
                group_code.append(code)
                group_size.append(len(workers))
                group_values.append(value)
                for worker in workers:
                    claim_task.append(j)
                    claim_worker.append(worker)
                    claim_code.append(code)
                    claim_group.append(group)
            task_ptr[j + 1] = len(claim_task)
            task_group_ptr[j + 1] = len(group_task)

        set_ = object.__setattr__
        set_(self, "claim_task", np.asarray(claim_task, dtype=np.int64))
        set_(self, "claim_worker", np.asarray(claim_worker, dtype=np.int64))
        set_(self, "claim_code", np.asarray(claim_code, dtype=np.int64))
        set_(self, "claim_group", np.asarray(claim_group, dtype=np.int64))
        set_(self, "task_ptr", task_ptr)
        set_(self, "group_task", np.asarray(group_task, dtype=np.int64))
        set_(self, "group_code", np.asarray(group_code, dtype=np.int64))
        set_(self, "group_size", np.asarray(group_size, dtype=np.int64))
        set_(self, "group_values", tuple(group_values))
        set_(self, "task_group_ptr", task_group_ptr)
        group_ptr = np.zeros(len(group_task) + 1, dtype=np.int64)
        np.cumsum(self.group_size, out=group_ptr[1:])
        set_(self, "group_ptr", group_ptr)

        # Worker -> claim CSR: claim indexes sorted by (worker, task).
        order = np.lexsort((self.claim_task, self.claim_worker))
        worker_ptr = np.zeros(n_workers + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self.claim_worker, minlength=n_workers), out=worker_ptr[1:]
        )
        set_(self, "worker_ptr", worker_ptr)
        set_(self, "worker_claims", order)

    @cached_property
    def _pair_tables(self) -> tuple[np.ndarray, ...]:
        """Pair tables: every unordered co-answering pair, one row per
        shared task, grouped by pair and ordered by task within a pair
        (mirroring :attr:`DatasetIndex.shared_tasks`).  Built on first
        access — only the dependence kernels need them.
        """
        n_tasks = self.index.n_tasks
        n_workers = self.index.n_workers
        task_ptr = self.task_ptr
        ca_parts: list[np.ndarray] = []
        cb_parts: list[np.ndarray] = []
        for j in range(n_tasks):
            start, end = task_ptr[j], task_ptr[j + 1]
            m = int(end - start)
            if m < 2:
                continue
            local_a, local_b = np.triu_indices(m, k=1)
            ca_parts.append(start + local_a)
            cb_parts.append(start + local_b)
        if not ca_parts:
            empty = np.empty(0, dtype=np.int64)
            return (
                empty,
                empty,
                np.zeros(1, dtype=np.int64),
                empty,
                empty,
                empty,
                empty,
            )
        ca = np.concatenate(ca_parts)
        cb = np.concatenate(cb_parts)
        wa = self.claim_worker[ca]
        wb = self.claim_worker[cb]
        swap = wa > wb
        ca2 = np.where(swap, cb, ca)
        cb2 = np.where(swap, ca, cb)
        wa2 = self.claim_worker[ca2]
        wb2 = self.claim_worker[cb2]
        tasks = self.claim_task[ca2]
        order = np.lexsort((tasks, wb2, wa2))
        wa2, wb2 = wa2[order], wb2[order]
        key = wa2 * n_workers + wb2
        uniq, first, counts = np.unique(key, return_index=True, return_counts=True)
        pair_ptr = np.zeros(len(uniq) + 1, dtype=np.int64)
        np.cumsum(counts, out=pair_ptr[1:])
        return (
            wa2[first],
            wb2[first],
            pair_ptr,
            np.repeat(np.arange(len(uniq)), counts),
            tasks[order],
            ca2[order],
            cb2[order],
        )

    @property
    def pair_a(self) -> np.ndarray:
        """First (smaller) worker of each co-answering pair."""
        return self._pair_tables[0]

    @property
    def pair_b(self) -> np.ndarray:
        """Second worker of each co-answering pair."""
        return self._pair_tables[1]

    @property
    def pair_ptr(self) -> np.ndarray:
        """CSR pointer slicing the ``ps_*`` rows per pair."""
        return self._pair_tables[2]

    @property
    def ps_pair(self) -> np.ndarray:
        """Pair index of each (pair, shared task) row."""
        return self._pair_tables[3]

    @property
    def ps_task(self) -> np.ndarray:
        """Task index of each (pair, shared task) row."""
        return self._pair_tables[4]

    @property
    def ps_claim_a(self) -> np.ndarray:
        """Claim position of ``pair_a``'s claim on the row's task."""
        return self._pair_tables[5]

    @property
    def ps_claim_b(self) -> np.ndarray:
        """Claim position of ``pair_b``'s claim on the row's task."""
        return self._pair_tables[6]

    # -- derived sizes ---------------------------------------------------

    @property
    def n_claims(self) -> int:
        return len(self.claim_task)

    @property
    def n_groups(self) -> int:
        return len(self.group_task)

    @property
    def n_pairs(self) -> int:
        return len(self.pair_a)

    @cached_property
    def multi_groups(self) -> np.ndarray:
        """Indexes of value groups with at least two providers.

        Only these need the greedy dependence-discount ordering; groups
        of one worker have independence probability 1 by definition.
        """
        return np.flatnonzero(self.group_size >= 2)

    @cached_property
    def multi_group_buckets(self) -> list[tuple[int, np.ndarray]]:
        """Multi-provider groups bucketed by size: ``(m, claim_indexes)``.

        ``claim_indexes`` is a ``(n_groups_of_size_m, m)`` matrix of
        claim positions, so the greedy independence ordering can run
        batched over every group of one size at once instead of looping
        per group (the sequential part of Eq. 16 then costs one small
        Python loop per *distinct group size*, not per group).
        """
        buckets: list[tuple[int, np.ndarray]] = []
        multi = self.multi_groups
        if len(multi) == 0:
            return buckets
        sizes = self.group_size[multi]
        for m in np.unique(sizes):
            groups = multi[sizes == m]
            starts = self.group_ptr[groups]
            buckets.append((int(m), starts[:, None] + np.arange(int(m))[None, :]))
        return buckets

    @cached_property
    def code_lookup(self) -> list[dict[str, int]]:
        """Per-task ``value -> code`` maps (for warm starts and tests)."""
        lookup: list[dict[str, int]] = [dict() for _ in range(self.index.n_tasks)]
        for g in range(self.n_groups):
            lookup[int(self.group_task[g])][self.group_values[g]] = int(
                self.group_code[g]
            )
        return lookup

    # -- conversions between codes and values ----------------------------

    def truth_values(self, truth_codes: np.ndarray) -> list[str | None]:
        """Decode per-task truth codes (-1 = no claims) back to strings."""
        out: list[str | None] = []
        for j in range(self.index.n_tasks):
            code = int(truth_codes[j])
            if code < 0:
                out.append(None)
            else:
                out.append(self.group_values[int(self.task_group_ptr[j]) + code])
        return out

    def truth_codes(self, truths: list[str | None]) -> np.ndarray:
        """Encode per-task truth strings to codes (-1 for None/unknown)."""
        codes = np.full(self.index.n_tasks, -1, dtype=np.int64)
        lookup = self.code_lookup
        for j, value in enumerate(truths):
            if value is not None:
                codes[j] = lookup[j].get(value, -1)
        return codes

    def majority_codes(self) -> np.ndarray:
        """Per-task majority value code (ties to the smallest code).

        The array twin of :meth:`DatasetIndex.majority_vote`: codes are
        assigned in sorted value order, so "smallest code" is exactly
        the documented lexicographic tie-break.
        """
        return segment_first_argmax_code(
            self.group_size.astype(np.float64),
            self.group_task,
            self.group_code,
            self.task_group_ptr,
        )


def segment_first_argmax_code(
    values: np.ndarray,
    group_task: np.ndarray,
    group_code: np.ndarray,
    task_group_ptr: np.ndarray,
) -> np.ndarray:
    """Per task, the code of the first group achieving the segment max.

    ``values`` is one score per value group; groups of a task are
    contiguous and ordered by code, so the first maximal group is the
    lexicographically smallest winning value.  Tasks with no groups get
    ``-1``.
    """
    n_tasks = len(task_group_ptr) - 1
    out = np.full(n_tasks, -1, dtype=np.int64)
    if len(values) == 0:
        return out
    starts = task_group_ptr[:-1]
    nonempty = task_group_ptr[1:] > starts
    # Groups tile the array, so reduceat over the starts of non-empty
    # tasks reduces exactly one task's segment each.
    seg_max = np.maximum.reduceat(values, starts[nonempty])
    max_of_task = np.full(n_tasks, -np.inf)
    max_of_task[nonempty] = seg_max
    hit = np.flatnonzero(values == max_of_task[group_task])
    tasks_hit, first = np.unique(group_task[hit], return_index=True)
    out[tasks_hit] = group_code[hit[first]]
    return out
