"""Integer-indexed views of a :class:`~repro.types.Dataset`.

DATE's inner loops touch the same derived structures every iteration:
claims by task, value groups ``W_v^j``, the co-answering worker pairs,
and each pair's shared tasks.  :class:`DatasetIndex` computes them once,
mapping string ids to dense integer indexes so the hot paths work on
ints and numpy arrays.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from ..types import Dataset

__all__ = ["DatasetIndex"]


class DatasetIndex:
    """Precomputed integer-indexed structures for one dataset.

    The index is read-only; all algorithms in :mod:`repro.core` and
    :mod:`repro.baselines` accept either a dataset (and build an index
    internally) or a prebuilt index (to share the cost across
    algorithms, as the benchmark harness does).
    """

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        #: Task ids in dataset order; positions are the task indexes used below.
        self.task_ids: list[str] = [t.task_id for t in dataset.tasks]
        #: Worker ids in dataset order; positions are the worker indexes.
        self.worker_ids: list[str] = [w.worker_id for w in dataset.workers]
        self.task_pos: dict[str, int] = {t: j for j, t in enumerate(self.task_ids)}
        self.worker_pos: dict[str, int] = {w: i for i, w in enumerate(self.worker_ids)}

        n_tasks = len(self.task_ids)
        n_workers = len(self.worker_ids)
        #: ``claims_by_task[j]`` is ``{worker_index: value}``.
        self.claims_by_task: list[dict[int, str]] = [{} for _ in range(n_tasks)]
        #: ``claims_by_worker[i]`` is ``{task_index: value}``.
        self.claims_by_worker: list[dict[int, str]] = [{} for _ in range(n_workers)]
        for (worker_id, task_id), value in dataset.claims.items():
            i = self.worker_pos[worker_id]
            j = self.task_pos[task_id]
            self.claims_by_task[j][i] = value
            self.claims_by_worker[i][j] = value

        #: ``value_groups[j]`` is ``{value: sorted tuple of worker indexes}``
        #: (the paper's ``W_v^j``), with values in sorted order for
        #: deterministic iteration.
        self.value_groups: list[dict[str, tuple[int, ...]]] = []
        for j in range(n_tasks):
            groups: dict[str, list[int]] = {}
            for i, value in self.claims_by_task[j].items():
                groups.setdefault(value, []).append(i)
            self.value_groups.append(
                {v: tuple(sorted(ws)) for v, ws in sorted(groups.items())}
            )

        #: Effective ``num_j`` (count of false values) per task: the
        #: declared closed-domain size minus one, or the observed number
        #: of distinct values minus one for open domains; at least 1 so
        #: the false-value probability ``(1 - A)/num`` stays finite.
        self.num_false = np.empty(n_tasks, dtype=np.int64)
        for j, task in enumerate(dataset.tasks):
            if task.domain:
                num = task.num_false
            else:
                num = len(self.value_groups[j]) - 1
            self.num_false[j] = max(num, 1)

    @property
    def n_tasks(self) -> int:
        return len(self.task_ids)

    @property
    def n_workers(self) -> int:
        return len(self.worker_ids)

    @cached_property
    def worker_task_sets(self) -> list[frozenset[int]]:
        """Task-index set answered by each worker."""
        return [frozenset(claims) for claims in self.claims_by_worker]

    @cached_property
    def pairs(self) -> list[tuple[int, int]]:
        """All worker pairs ``(a, b)`` with ``a < b`` sharing at least one task.

        Dependence is only defined (and only informative) for pairs that
        co-answered something, so step 1 iterates exactly this list.
        """
        seen: set[tuple[int, int]] = set()
        for claims in self.claims_by_task:
            members = sorted(claims)
            for x in range(len(members)):
                for y in range(x + 1, len(members)):
                    seen.add((members[x], members[y]))
        return sorted(seen)

    @cached_property
    def shared_tasks(self) -> dict[tuple[int, int], tuple[int, ...]]:
        """``(a, b) -> task indexes answered by both`` for every pair."""
        shared: dict[tuple[int, int], list[int]] = {p: [] for p in self.pairs}
        for j, claims in enumerate(self.claims_by_task):
            members = sorted(claims)
            for x in range(len(members)):
                for y in range(x + 1, len(members)):
                    shared[(members[x], members[y])].append(j)
        return {p: tuple(ts) for p, ts in shared.items()}

    def initial_accuracy_matrix(self, epsilon: float) -> np.ndarray:
        """Dense ``n_workers x n_tasks`` accuracy matrix initialized to ε.

        Entries for (worker, task) pairs without a claim are 0: a worker
        that did not answer a task contributes no accuracy to it (and no
        coverage in the auction stage).
        """
        matrix = np.zeros((self.n_workers, self.n_tasks), dtype=np.float64)
        for i, claims in enumerate(self.claims_by_worker):
            for j in claims:
                matrix[i, j] = epsilon
        return matrix

    def majority_vote(self) -> list[str | None]:
        """Per-task majority value (``None`` for unanswered tasks).

        Ties break lexicographically on the value so results are
        deterministic.  This is both the MV baseline's core and DATE's
        initial truth estimate (Sec. III-A: "the true value can be
        obtained through the voting mechanism ... initially").
        """
        winners: list[str | None] = []
        for j in range(self.n_tasks):
            groups = self.value_groups[j]
            if not groups:
                winners.append(None)
                continue
            best = max(groups.items(), key=lambda item: (len(item[1]), item[0]))
            # max() with (count, value) prefers the lexicographically
            # *largest* value on count ties; flip to smallest for a
            # stable, documented rule.
            best_count = len(best[1])
            candidates = [v for v, ws in groups.items() if len(ws) == best_count]
            winners.append(min(candidates))
        return winners
