"""Integer-indexed views of a :class:`~repro.types.Dataset`.

DATE's inner loops touch the same derived structures every iteration:
claims by task, value groups ``W_v^j``, the co-answering worker pairs,
and each pair's shared tasks.  :class:`DatasetIndex` computes them once,
mapping string ids to dense integer indexes so the hot paths work on
ints and numpy arrays.

:class:`ClaimArrays` (reachable as :attr:`DatasetIndex.arrays`) goes one
step further: every claim value is replaced by a small per-task integer
code and all per-claim, per-value-group and per-worker-pair structures
are flattened into contiguous numpy arrays (CSR style).  The vectorized
DATE backend (:mod:`repro.core.engine`) runs entirely on these arrays;
see DESIGN.md §7 for the encoding.

Streaming campaigns (:mod:`repro.streaming`) grow an existing index one
claim batch at a time through :meth:`DatasetIndex.extended`: only the
*dirty* tasks — those receiving new claims, plus appended tasks — are
re-encoded, every clean CSR segment is spliced across with bulk numpy
copies, and the old index stays valid (shared sub-structures are never
mutated).  DESIGN.md §8 documents the dirty-task invariants.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..errors import DataFormatError
from ..types import Dataset, Task, WorkerProfile

__all__ = ["ClaimArrays", "DatasetIndex", "IndexExtension"]


class DatasetIndex:
    """Precomputed integer-indexed structures for one dataset.

    The index is read-only; all algorithms in :mod:`repro.core` and
    :mod:`repro.baselines` accept either a dataset (and build an index
    internally) or a prebuilt index (to share the cost across
    algorithms, as the benchmark harness does).
    """

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        #: Task ids in dataset order; positions are the task indexes used below.
        self.task_ids: list[str] = [t.task_id for t in dataset.tasks]
        #: Worker ids in dataset order; positions are the worker indexes.
        self.worker_ids: list[str] = [w.worker_id for w in dataset.workers]
        self.task_pos: dict[str, int] = {t: j for j, t in enumerate(self.task_ids)}
        self.worker_pos: dict[str, int] = {w: i for i, w in enumerate(self.worker_ids)}

        n_tasks = len(self.task_ids)
        n_workers = len(self.worker_ids)
        #: ``claims_by_task[j]`` is ``{worker_index: value}``.
        self.claims_by_task: list[dict[int, str]] = [{} for _ in range(n_tasks)]
        #: ``claims_by_worker[i]`` is ``{task_index: value}``.
        self.claims_by_worker: list[dict[int, str]] = [{} for _ in range(n_workers)]
        for (worker_id, task_id), value in dataset.claims.items():
            i = self.worker_pos[worker_id]
            j = self.task_pos[task_id]
            self.claims_by_task[j][i] = value
            self.claims_by_worker[i][j] = value

        #: ``value_groups[j]`` is ``{value: sorted tuple of worker indexes}``
        #: (the paper's ``W_v^j``), with values in sorted order for
        #: deterministic iteration.
        self.value_groups: list[dict[str, tuple[int, ...]]] = []
        for j in range(n_tasks):
            groups: dict[str, list[int]] = {}
            for i, value in self.claims_by_task[j].items():
                groups.setdefault(value, []).append(i)
            self.value_groups.append(
                {v: tuple(sorted(ws)) for v, ws in sorted(groups.items())}
            )

        #: Effective ``num_j`` (count of false values) per task: the
        #: declared closed-domain size minus one, or the observed number
        #: of distinct values minus one for open domains; at least 1 so
        #: the false-value probability ``(1 - A)/num`` stays finite.
        self.num_false = np.empty(n_tasks, dtype=np.int64)
        for j, task in enumerate(dataset.tasks):
            if task.domain:
                num = task.num_false
            else:
                num = len(self.value_groups[j]) - 1
            self.num_false[j] = max(num, 1)

    @property
    def n_tasks(self) -> int:
        return len(self.task_ids)

    @property
    def n_workers(self) -> int:
        return len(self.worker_ids)

    @cached_property
    def worker_task_sets(self) -> list[frozenset[int]]:
        """Task-index set answered by each worker."""
        return [frozenset(claims) for claims in self.claims_by_worker]

    @cached_property
    def pairs(self) -> list[tuple[int, int]]:
        """All worker pairs ``(a, b)`` with ``a < b`` sharing at least one task.

        Dependence is only defined (and only informative) for pairs that
        co-answered something, so step 1 iterates exactly this list.
        """
        seen: set[tuple[int, int]] = set()
        for claims in self.claims_by_task:
            members = sorted(claims)
            for x in range(len(members)):
                for y in range(x + 1, len(members)):
                    seen.add((members[x], members[y]))
        return sorted(seen)

    @cached_property
    def shared_tasks(self) -> dict[tuple[int, int], tuple[int, ...]]:
        """``(a, b) -> task indexes answered by both`` for every pair."""
        shared: dict[tuple[int, int], list[int]] = {p: [] for p in self.pairs}
        for j, claims in enumerate(self.claims_by_task):
            members = sorted(claims)
            for x in range(len(members)):
                for y in range(x + 1, len(members)):
                    shared[(members[x], members[y])].append(j)
        return {p: tuple(ts) for p, ts in shared.items()}

    def initial_accuracy_matrix(self, epsilon: float) -> np.ndarray:
        """Dense ``n_workers x n_tasks`` accuracy matrix initialized to ε.

        Entries for (worker, task) pairs without a claim are 0: a worker
        that did not answer a task contributes no accuracy to it (and no
        coverage in the auction stage).
        """
        matrix = np.zeros((self.n_workers, self.n_tasks), dtype=np.float64)
        for i, claims in enumerate(self.claims_by_worker):
            for j in claims:
                matrix[i, j] = epsilon
        return matrix

    def majority_vote(self) -> list[str | None]:
        """Per-task majority value (``None`` for unanswered tasks).

        Ties break lexicographically on the value so results are
        deterministic.  This is both the MV baseline's core and DATE's
        initial truth estimate (Sec. III-A: "the true value can be
        obtained through the voting mechanism ... initially").
        """
        winners: list[str | None] = []
        for j in range(self.n_tasks):
            groups = self.value_groups[j]
            if not groups:
                winners.append(None)
                continue
            # One pass: largest count wins, count ties go to the
            # lexicographically smallest value.
            best = min(groups.items(), key=lambda item: (-len(item[1]), item[0]))
            winners.append(best[0])
        return winners

    @cached_property
    def arrays(self) -> "ClaimArrays":
        """The integer-coded, flattened claim arrays for this dataset."""
        return ClaimArrays(self)

    # ------------------------------------------------------------------
    # Incremental extension (streaming append path)
    # ------------------------------------------------------------------

    def extended(
        self,
        *,
        tasks: Iterable[Task] = (),
        workers: Iterable[WorkerProfile] = (),
        claims: Mapping[tuple[str, str], str] | None = None,
    ) -> "IndexExtension":
        """Return a new index with ``tasks``/``workers``/``claims`` appended.

        Only the *delta* is validated and re-encoded: tasks receiving
        new claims (plus appended tasks) are marked dirty and rebuilt;
        every other per-task structure — claim dicts, value groups, CSR
        segments of :attr:`arrays` — is shared or bulk-copied from this
        index, so the cost is O(affected segments + memcpy), not a full
        re-encode.  ``self`` is left untouched and remains valid.

        Raises :class:`~repro.errors.DataFormatError` for ids that
        collide with existing ones, claims referencing unknown tasks or
        workers, out-of-domain values, and duplicate ``(worker, task)``
        claims — the invariants streaming replay depends on.
        """
        tasks = tuple(tasks)
        workers = tuple(workers)
        claims = dict(claims or {})
        self._validate_extension(tasks, workers, claims)

        old_n_tasks, old_n_workers = self.n_tasks, self.n_workers
        merged = dict(self.dataset.claims)
        merged.update(claims)
        dataset = _dataset_append(self.dataset, tasks, workers, merged)

        new = object.__new__(DatasetIndex)
        new.dataset = dataset
        new.task_ids = self.task_ids + [t.task_id for t in tasks]
        new.worker_ids = self.worker_ids + [w.worker_id for w in workers]
        new.task_pos = dict(self.task_pos)
        for offset, task in enumerate(tasks):
            new.task_pos[task.task_id] = old_n_tasks + offset
        new.worker_pos = dict(self.worker_pos)
        for offset, worker in enumerate(workers):
            new.worker_pos[worker.worker_id] = old_n_workers + offset

        dirty_set = {new.task_pos[task_id] for (_, task_id) in claims}
        dirty_set.update(range(old_n_tasks, len(new.task_ids)))
        dirty = np.asarray(sorted(dirty_set), dtype=np.int64)

        # Copy-on-write: dirty tasks (and touched workers) get fresh
        # dicts; clean ones are shared with the old, read-only index.
        by_task = list(self.claims_by_task) + [{} for _ in tasks]
        for j in dirty_set:
            if j < old_n_tasks:
                by_task[j] = dict(by_task[j])
        by_worker = list(self.claims_by_worker) + [{} for _ in workers]
        for i in {new.worker_pos[worker_id] for (worker_id, _) in claims}:
            if i < old_n_workers:
                by_worker[i] = dict(by_worker[i])
        for (worker_id, task_id), value in claims.items():
            i, j = new.worker_pos[worker_id], new.task_pos[task_id]
            by_task[j][i] = value
            by_worker[i][j] = value
        new.claims_by_task = by_task
        new.claims_by_worker = by_worker

        value_groups = list(self.value_groups) + [{} for _ in tasks]
        for j in dirty:
            groups: dict[str, list[int]] = {}
            for i, value in by_task[int(j)].items():
                groups.setdefault(value, []).append(i)
            value_groups[int(j)] = {
                v: tuple(sorted(ws)) for v, ws in sorted(groups.items())
            }
        new.value_groups = value_groups

        num_false = np.empty(len(new.task_ids), dtype=np.int64)
        num_false[:old_n_tasks] = self.num_false
        for j in dirty:
            task = dataset.tasks[int(j)]
            num = task.num_false if task.domain else len(value_groups[int(j)]) - 1
            num_false[int(j)] = max(num, 1)
        new.num_false = num_false

        claim_map = None
        if "arrays" in self.__dict__:
            arrays, claim_map = _extend_claim_arrays(
                self.arrays, new, dirty, old_n_tasks
            )
            new.__dict__["arrays"] = arrays
        return IndexExtension(
            index=new,
            dirty_tasks=dirty,
            new_task_positions=np.arange(old_n_tasks, new.n_tasks, dtype=np.int64),
            new_worker_positions=np.arange(
                old_n_workers, new.n_workers, dtype=np.int64
            ),
            claim_map=claim_map,
        )

    def validate_extension(
        self,
        *,
        tasks: Iterable[Task] = (),
        workers: Iterable[WorkerProfile] = (),
        claims: Mapping[tuple[str, str], str] | None = None,
    ) -> None:
        """Validate a delta without building the extension.

        Runs exactly the checks :meth:`extended` performs — colliding
        ids, claims on unknown tasks or workers, duplicate ``(worker,
        task)`` claims, out-of-domain values — and raises
        :class:`~repro.errors.DataFormatError` on the first violation,
        touching nothing.  The durable streaming store calls this
        *before* a batch reaches the write-ahead journal, so a rejected
        batch never persists as an unreplayable record.
        """
        self._validate_extension(tuple(tasks), tuple(workers), dict(claims or {}))

    def _validate_extension(
        self,
        tasks: tuple[Task, ...],
        workers: tuple[WorkerProfile, ...],
        claims: dict[tuple[str, str], str],
    ) -> None:
        """Check the delta against this index (old rows are known-valid)."""
        new_task_by_id: dict[str, Task] = {}
        for task in tasks:
            if task.task_id in self.task_pos or task.task_id in new_task_by_id:
                raise DataFormatError(
                    f"extension re-adds existing task {task.task_id!r}"
                )
            new_task_by_id[task.task_id] = task
        new_worker_ids: set[str] = set()
        for worker in workers:
            if worker.worker_id in self.worker_pos or worker.worker_id in new_worker_ids:
                raise DataFormatError(
                    f"extension re-adds existing worker {worker.worker_id!r}"
                )
            new_worker_ids.add(worker.worker_id)
        for worker in workers:
            for source in worker.sources:
                if source not in self.worker_pos and source not in new_worker_ids:
                    raise DataFormatError(
                        f"worker {worker.worker_id} copies from unknown "
                        f"worker {source!r}"
                    )
        for (worker_id, task_id), value in claims.items():
            if worker_id not in self.worker_pos and worker_id not in new_worker_ids:
                raise DataFormatError(
                    f"claim references unknown worker {worker_id!r}"
                )
            task = new_task_by_id.get(task_id)
            if task is None:
                j = self.task_pos.get(task_id)
                if j is None:
                    raise DataFormatError(
                        f"claim references unknown task {task_id!r}"
                    )
                task = self.dataset.tasks[j]
                i = self.worker_pos.get(worker_id)
                if i is not None and i in self.claims_by_task[j]:
                    raise DataFormatError(
                        f"duplicate claim: worker {worker_id!r} already "
                        f"answered task {task_id!r}"
                    )
            if not isinstance(value, str) or not value:
                raise DataFormatError(
                    f"claim ({worker_id}, {task_id}): value must be a "
                    "non-empty string"
                )
            if task.domain and value not in task.domain:
                raise DataFormatError(
                    f"claim ({worker_id}, {task_id}): value {value!r} "
                    "not in the task's closed domain"
                )


@dataclass(frozen=True)
class IndexExtension:
    """Result of :meth:`DatasetIndex.extended`.

    Attributes
    ----------
    index:
        The extended index (the source index is untouched).
    dirty_tasks:
        Sorted task positions (in the *new* index) whose encodings were
        rebuilt: tasks that received new claims plus appended tasks.
        Task positions of pre-existing tasks are stable across
        extensions, so these double as "affected segment" ids.
    new_task_positions / new_worker_positions:
        Positions of the appended tasks / workers in the new index.
    claim_map:
        ``old claim position -> new claim position`` into the extended
        :class:`ClaimArrays`, for carrying per-claim state (for example
        accuracies) across the extension.  ``None`` when the source
        index never materialized its ``arrays`` (the new index then
        encodes lazily from scratch on first use).
    """

    index: DatasetIndex
    dirty_tasks: np.ndarray
    new_task_positions: np.ndarray
    new_worker_positions: np.ndarray
    claim_map: np.ndarray | None


def _dataset_append(
    old: Dataset,
    tasks: tuple[Task, ...],
    workers: tuple[WorkerProfile, ...],
    merged_claims: dict[tuple[str, str], str],
) -> Dataset:
    """Assemble the extended :class:`Dataset` without re-validation.

    ``Dataset.__post_init__`` walks every claim; the caller has already
    validated the delta against a known-valid dataset, so the extended
    snapshot is assembled field-by-field to keep the append path
    O(affected).
    """
    dataset = object.__new__(Dataset)
    object.__setattr__(dataset, "tasks", old.tasks + tasks)
    object.__setattr__(dataset, "workers", old.workers + workers)
    object.__setattr__(dataset, "claims", merged_claims)
    return dataset


@dataclass(frozen=True, eq=False)
class ClaimArrays:
    """Integer-coded, CSR-flattened view of one dataset's claims.

    Values are replaced by per-task integer *codes*: the distinct values
    observed on task ``j`` are sorted lexicographically and numbered
    ``0..K_j-1``, so the lexicographic tie-breaks used throughout the
    scalar code become "smallest code" on the array side.

    Claims are stored once, sorted by ``(task, code, worker)``.  That
    single ordering makes three structures contiguous at the same time:

    - tasks (``task_ptr`` slices claims per task),
    - value groups ``W_v^j`` (``group_ptr`` slices claims per
      (task, value) group; groups of one task are adjacent and ordered
      by code),
    - and, within a group, workers ascending (matching the sorted
      tuples of :attr:`DatasetIndex.value_groups`).

    The co-answering worker pairs are flattened the same way: one row
    per (pair, shared task), grouped by pair via ``pair_ptr``, with
    ``ps_claim_a``/``ps_claim_b`` pointing back into the claim arrays so
    per-claim state (accuracy, codes) is a single gather away.
    """

    index: "DatasetIndex"

    # -- claims, sorted by (task, code, worker) --------------------------
    claim_task: np.ndarray = field(init=False)
    claim_worker: np.ndarray = field(init=False)
    claim_code: np.ndarray = field(init=False)
    claim_group: np.ndarray = field(init=False)
    task_ptr: np.ndarray = field(init=False)

    # -- value groups, in (task, code) order -----------------------------
    group_ptr: np.ndarray = field(init=False)
    group_task: np.ndarray = field(init=False)
    group_code: np.ndarray = field(init=False)
    group_size: np.ndarray = field(init=False)
    group_values: tuple[str, ...] = field(init=False)
    task_group_ptr: np.ndarray = field(init=False)

    # -- worker -> claim CSR ---------------------------------------------
    worker_ptr: np.ndarray = field(init=False)
    worker_claims: np.ndarray = field(init=False)

    # The co-answering pair tables (pair_a, pair_b, pair_ptr, ps_*) are
    # lazy cached properties: only the dependence kernels read them, and
    # their O(Σ m_j²) size should not tax algorithms that never look
    # (majority voting, NC).

    def __post_init__(self) -> None:
        index = self.index
        n_tasks, n_workers = index.n_tasks, index.n_workers

        claim_task: list[int] = []
        claim_worker: list[int] = []
        claim_code: list[int] = []
        claim_group: list[int] = []
        group_task: list[int] = []
        group_code: list[int] = []
        group_size: list[int] = []
        group_values: list[str] = []
        task_ptr = np.zeros(n_tasks + 1, dtype=np.int64)
        task_group_ptr = np.zeros(n_tasks + 1, dtype=np.int64)
        for j in range(n_tasks):
            # value_groups[j] iterates values in sorted order; workers in
            # each group are already sorted ascending.
            for code, (value, workers) in enumerate(index.value_groups[j].items()):
                group = len(group_task)
                group_task.append(j)
                group_code.append(code)
                group_size.append(len(workers))
                group_values.append(value)
                for worker in workers:
                    claim_task.append(j)
                    claim_worker.append(worker)
                    claim_code.append(code)
                    claim_group.append(group)
            task_ptr[j + 1] = len(claim_task)
            task_group_ptr[j + 1] = len(group_task)

        set_ = object.__setattr__
        set_(self, "claim_task", np.asarray(claim_task, dtype=np.int64))
        set_(self, "claim_worker", np.asarray(claim_worker, dtype=np.int64))
        set_(self, "claim_code", np.asarray(claim_code, dtype=np.int64))
        set_(self, "claim_group", np.asarray(claim_group, dtype=np.int64))
        set_(self, "task_ptr", task_ptr)
        set_(self, "group_task", np.asarray(group_task, dtype=np.int64))
        set_(self, "group_code", np.asarray(group_code, dtype=np.int64))
        set_(self, "group_size", np.asarray(group_size, dtype=np.int64))
        set_(self, "group_values", tuple(group_values))
        set_(self, "task_group_ptr", task_group_ptr)
        group_ptr = np.zeros(len(group_task) + 1, dtype=np.int64)
        np.cumsum(self.group_size, out=group_ptr[1:])
        set_(self, "group_ptr", group_ptr)

        # Worker -> claim CSR: claim indexes sorted by (worker, task).
        order = np.lexsort((self.claim_task, self.claim_worker))
        worker_ptr = np.zeros(n_workers + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self.claim_worker, minlength=n_workers), out=worker_ptr[1:]
        )
        set_(self, "worker_ptr", worker_ptr)
        set_(self, "worker_claims", order)

    @cached_property
    def _pair_tables(self) -> tuple[np.ndarray, ...]:
        """Pair tables: every unordered co-answering pair, one row per
        shared task, grouped by pair and ordered by task within a pair
        (mirroring :attr:`DatasetIndex.shared_tasks`).  Built on first
        access — only the dependence kernels need them.
        """
        n_tasks = self.index.n_tasks
        n_workers = self.index.n_workers
        task_ptr = self.task_ptr
        ca_parts: list[np.ndarray] = []
        cb_parts: list[np.ndarray] = []
        for j in range(n_tasks):
            start, end = task_ptr[j], task_ptr[j + 1]
            m = int(end - start)
            if m < 2:
                continue
            local_a, local_b = np.triu_indices(m, k=1)
            ca_parts.append(start + local_a)
            cb_parts.append(start + local_b)
        if not ca_parts:
            empty = np.empty(0, dtype=np.int64)
            return (
                empty,
                empty,
                np.zeros(1, dtype=np.int64),
                empty,
                empty,
                empty,
                empty,
            )
        ca = np.concatenate(ca_parts)
        cb = np.concatenate(cb_parts)
        wa = self.claim_worker[ca]
        wb = self.claim_worker[cb]
        swap = wa > wb
        ca2 = np.where(swap, cb, ca)
        cb2 = np.where(swap, ca, cb)
        wa2 = self.claim_worker[ca2]
        wb2 = self.claim_worker[cb2]
        tasks = self.claim_task[ca2]
        order = np.lexsort((tasks, wb2, wa2))
        wa2, wb2 = wa2[order], wb2[order]
        key = wa2 * n_workers + wb2
        uniq, first, counts = np.unique(key, return_index=True, return_counts=True)
        pair_ptr = np.zeros(len(uniq) + 1, dtype=np.int64)
        np.cumsum(counts, out=pair_ptr[1:])
        return (
            wa2[first],
            wb2[first],
            pair_ptr,
            np.repeat(np.arange(len(uniq)), counts),
            tasks[order],
            ca2[order],
            cb2[order],
        )

    @property
    def pair_a(self) -> np.ndarray:
        """First (smaller) worker of each co-answering pair."""
        return self._pair_tables[0]

    @property
    def pair_b(self) -> np.ndarray:
        """Second worker of each co-answering pair."""
        return self._pair_tables[1]

    @property
    def pair_ptr(self) -> np.ndarray:
        """CSR pointer slicing the ``ps_*`` rows per pair."""
        return self._pair_tables[2]

    @property
    def ps_pair(self) -> np.ndarray:
        """Pair index of each (pair, shared task) row."""
        return self._pair_tables[3]

    @property
    def ps_task(self) -> np.ndarray:
        """Task index of each (pair, shared task) row."""
        return self._pair_tables[4]

    @property
    def ps_claim_a(self) -> np.ndarray:
        """Claim position of ``pair_a``'s claim on the row's task."""
        return self._pair_tables[5]

    @property
    def ps_claim_b(self) -> np.ndarray:
        """Claim position of ``pair_b``'s claim on the row's task."""
        return self._pair_tables[6]

    @cached_property
    def pair_rows_by_task(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR over tasks of the (pair, shared task) row positions.

        ``ptr, rows = pair_rows_by_task`` slices, per task ``j``, the
        positions ``rows[ptr[j]:ptr[j + 1]]`` of every pair-table row
        whose shared task is ``j`` (in ascending row order — the argsort
        is stable).  This is the lookup the incremental dependence
        engine uses to find the rows invalidated by a change to task
        ``j`` without scanning all of ``ps_task``.
        """
        n_tasks = self.index.n_tasks
        ps_task = self.ps_task
        rows = np.argsort(ps_task, kind="stable")
        ptr = np.zeros(n_tasks + 1, dtype=np.int64)
        np.cumsum(np.bincount(ps_task, minlength=n_tasks), out=ptr[1:])
        return ptr, rows

    # -- derived sizes ---------------------------------------------------

    @property
    def n_claims(self) -> int:
        return len(self.claim_task)

    @property
    def n_groups(self) -> int:
        return len(self.group_task)

    @property
    def n_pairs(self) -> int:
        return len(self.pair_a)

    @cached_property
    def multi_groups(self) -> np.ndarray:
        """Indexes of value groups with at least two providers.

        Only these need the greedy dependence-discount ordering; groups
        of one worker have independence probability 1 by definition.
        """
        return np.flatnonzero(self.group_size >= 2)

    @cached_property
    def multi_group_buckets(self) -> list[tuple[int, np.ndarray]]:
        """Multi-provider groups bucketed by size: ``(m, claim_indexes)``.

        ``claim_indexes`` is a ``(n_groups_of_size_m, m)`` matrix of
        claim positions, so the greedy independence ordering can run
        batched over every group of one size at once instead of looping
        per group (the sequential part of Eq. 16 then costs one small
        Python loop per *distinct group size*, not per group).
        """
        buckets: list[tuple[int, np.ndarray]] = []
        multi = self.multi_groups
        if len(multi) == 0:
            return buckets
        sizes = self.group_size[multi]
        for m in np.unique(sizes):
            groups = multi[sizes == m]
            starts = self.group_ptr[groups]
            buckets.append((int(m), starts[:, None] + np.arange(int(m))[None, :]))
        return buckets

    @cached_property
    def code_lookup(self) -> list[dict[str, int]]:
        """Per-task ``value -> code`` maps (for warm starts and tests)."""
        lookup: list[dict[str, int]] = [dict() for _ in range(self.index.n_tasks)]
        for g in range(self.n_groups):
            lookup[int(self.group_task[g])][self.group_values[g]] = int(
                self.group_code[g]
            )
        return lookup

    # -- conversions between codes and values ----------------------------

    def truth_values(self, truth_codes: np.ndarray) -> list[str | None]:
        """Decode per-task truth codes (-1 = no claims) back to strings."""
        out: list[str | None] = []
        for j in range(self.index.n_tasks):
            code = int(truth_codes[j])
            if code < 0:
                out.append(None)
            else:
                out.append(self.group_values[int(self.task_group_ptr[j]) + code])
        return out

    def truth_codes(self, truths: list[str | None]) -> np.ndarray:
        """Encode per-task truth strings to codes (-1 for None/unknown)."""
        codes = np.full(self.index.n_tasks, -1, dtype=np.int64)
        lookup = self.code_lookup
        for j, value in enumerate(truths):
            if value is not None:
                codes[j] = lookup[j].get(value, -1)
        return codes

    def majority_codes(self) -> np.ndarray:
        """Per-task majority value code (ties to the smallest code).

        The array twin of :meth:`DatasetIndex.majority_vote`: codes are
        assigned in sorted value order, so "smallest code" is exactly
        the documented lexicographic tie-break.
        """
        return segment_first_argmax_code(
            self.group_size.astype(np.float64),
            self.group_task,
            self.group_code,
            self.task_group_ptr,
        )


def segment_first_argmax_code(
    values: np.ndarray,
    group_task: np.ndarray,
    group_code: np.ndarray,
    task_group_ptr: np.ndarray,
) -> np.ndarray:
    """Per task, the code of the first group achieving the segment max.

    ``values`` is one score per value group; groups of a task are
    contiguous and ordered by code, so the first maximal group is the
    lexicographically smallest winning value.  Tasks with no groups get
    ``-1``.
    """
    n_tasks = len(task_group_ptr) - 1
    out = np.full(n_tasks, -1, dtype=np.int64)
    if len(values) == 0:
        return out
    starts = task_group_ptr[:-1]
    nonempty = task_group_ptr[1:] > starts
    # Groups tile the array, so reduceat over the starts of non-empty
    # tasks reduces exactly one task's segment each.
    seg_max = np.maximum.reduceat(values, starts[nonempty])
    max_of_task = np.full(n_tasks, -np.inf)
    max_of_task[nonempty] = seg_max
    hit = np.flatnonzero(values == max_of_task[group_task])
    tasks_hit, first = np.unique(group_task[hit], return_index=True)
    out[tasks_hit] = group_code[hit[first]]
    return out


# ----------------------------------------------------------------------
# Incremental ClaimArrays extension
# ----------------------------------------------------------------------


def _concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``[arange(s, s + l) for s, l in zip(starts, lengths)]``.

    The standard cumsum trick: one pass, no Python loop — this is what
    keeps splicing the clean CSR segments a bulk copy.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    nonempty = lengths > 0
    starts = np.asarray(starts, dtype=np.int64)[nonempty]
    lengths = lengths[nonempty]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(lengths)
    out[0] = starts[0]
    out[ends[:-1]] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(out)


def _extend_claim_arrays(
    old: ClaimArrays,
    index: DatasetIndex,
    dirty: np.ndarray,
    old_n_tasks: int,
) -> tuple[ClaimArrays, np.ndarray]:
    """Splice ``old`` into arrays for the extended ``index``.

    Dirty tasks are re-encoded from ``index.value_groups`` (the only
    Python loop proportional to the batch); clean task segments move as
    bulk gathers.  Task positions of pre-existing tasks are stable, so
    a clean task's claims keep their ``(worker, code)`` rows and only
    their global positions shift.  Returns the new arrays and the
    ``old claim position -> new claim position`` map.
    """
    n_tasks, n_workers = index.n_tasks, index.n_workers
    dirty_mask = np.zeros(n_tasks, dtype=bool)
    dirty_mask[dirty] = True
    clean = np.flatnonzero(~dirty_mask[:old_n_tasks])

    old_claim_counts = old.task_ptr[1:] - old.task_ptr[:-1]
    old_group_counts = old.task_group_ptr[1:] - old.task_group_ptr[:-1]
    claim_counts = np.zeros(n_tasks, dtype=np.int64)
    group_counts = np.zeros(n_tasks, dtype=np.int64)
    claim_counts[:old_n_tasks] = old_claim_counts
    group_counts[:old_n_tasks] = old_group_counts

    # Fresh encodings for the dirty tasks only.
    d_workers: dict[int, np.ndarray] = {}
    d_codes: dict[int, np.ndarray] = {}
    d_sizes: dict[int, list[int]] = {}
    d_values: dict[int, list[str]] = {}
    for j in map(int, dirty):
        workers_flat: list[int] = []
        codes_flat: list[int] = []
        sizes: list[int] = []
        values: list[str] = []
        for code, (value, members) in enumerate(index.value_groups[j].items()):
            sizes.append(len(members))
            values.append(value)
            workers_flat.extend(members)
            codes_flat.extend([code] * len(members))
        d_workers[j] = np.asarray(workers_flat, dtype=np.int64)
        d_codes[j] = np.asarray(codes_flat, dtype=np.int64)
        d_sizes[j] = sizes
        d_values[j] = values
        claim_counts[j] = len(workers_flat)
        group_counts[j] = len(sizes)

    task_ptr = np.zeros(n_tasks + 1, dtype=np.int64)
    np.cumsum(claim_counts, out=task_ptr[1:])
    task_group_ptr = np.zeros(n_tasks + 1, dtype=np.int64)
    np.cumsum(group_counts, out=task_group_ptr[1:])
    n_claims = int(task_ptr[-1])
    n_groups = int(task_group_ptr[-1])

    claim_task = np.repeat(np.arange(n_tasks, dtype=np.int64), claim_counts)
    claim_worker = np.empty(n_claims, dtype=np.int64)
    claim_code = np.empty(n_claims, dtype=np.int64)
    group_size = np.empty(n_groups, dtype=np.int64)
    group_values = np.empty(n_groups, dtype=object)

    # Clean segments: bulk gather from the old arrays.
    src = _concat_ranges(old.task_ptr[clean], old_claim_counts[clean])
    dst = _concat_ranges(task_ptr[clean], old_claim_counts[clean])
    claim_worker[dst] = old.claim_worker[src]
    claim_code[dst] = old.claim_code[src]
    gsrc = _concat_ranges(old.task_group_ptr[clean], old_group_counts[clean])
    gdst = _concat_ranges(task_group_ptr[clean], old_group_counts[clean])
    group_size[gdst] = old.group_size[gsrc]
    group_values[gdst] = np.asarray(old.group_values, dtype=object)[gsrc]

    # Dirty segments, and the old->new claim position map.
    claim_map = np.empty(old.n_claims, dtype=np.int64)
    claim_map[src] = dst
    for j in map(int, dirty):
        c0 = int(task_ptr[j])
        claim_worker[c0 : c0 + len(d_workers[j])] = d_workers[j]
        claim_code[c0 : c0 + len(d_codes[j])] = d_codes[j]
        g0 = int(task_group_ptr[j])
        group_size[g0 : g0 + len(d_sizes[j])] = d_sizes[j]
        group_values[g0 : g0 + len(d_values[j])] = d_values[j]
        if j < old_n_tasks:
            position = {int(w): c0 + k for k, w in enumerate(d_workers[j])}
            for c in range(int(old.task_ptr[j]), int(old.task_ptr[j + 1])):
                claim_map[c] = position[int(old.claim_worker[c])]

    # In (task, code, worker) order, group index = task group start +
    # code (codes are consecutive 0..K_j-1), so the remaining structures
    # are pure arithmetic on what's already spliced.
    claim_group = task_group_ptr[claim_task] + claim_code
    group_task = np.repeat(np.arange(n_tasks, dtype=np.int64), group_counts)
    group_code = np.arange(n_groups, dtype=np.int64) - task_group_ptr[group_task]
    group_ptr = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(group_size, out=group_ptr[1:])

    order = np.lexsort((claim_task, claim_worker))
    worker_ptr = np.zeros(n_workers + 1, dtype=np.int64)
    np.cumsum(np.bincount(claim_worker, minlength=n_workers), out=worker_ptr[1:])

    arrays = object.__new__(ClaimArrays)
    set_ = object.__setattr__
    set_(arrays, "index", index)
    set_(arrays, "claim_task", claim_task)
    set_(arrays, "claim_worker", claim_worker)
    set_(arrays, "claim_code", claim_code)
    set_(arrays, "claim_group", claim_group)
    set_(arrays, "task_ptr", task_ptr)
    set_(arrays, "group_ptr", group_ptr)
    set_(arrays, "group_task", group_task)
    set_(arrays, "group_code", group_code)
    set_(arrays, "group_size", group_size)
    set_(arrays, "group_values", tuple(group_values))
    set_(arrays, "task_group_ptr", task_group_ptr)
    set_(arrays, "worker_ptr", worker_ptr)
    set_(arrays, "worker_claims", order)

    if "_pair_tables" in old.__dict__:
        arrays.__dict__["_pair_tables"] = _extend_pair_tables(
            old, arrays, dirty, dirty_mask, claim_map
        )
    return arrays, claim_map


def _extend_pair_tables(
    old: ClaimArrays,
    arrays: ClaimArrays,
    dirty: np.ndarray,
    dirty_mask: np.ndarray,
    claim_map: np.ndarray,
) -> tuple[np.ndarray, ...]:
    """Extend materialized pair tables: keep clean-task rows, regenerate
    dirty-task rows, merge by one lexsort.

    Rows of clean tasks keep their worker pair and task; only their
    claim back-pointers shift (via ``claim_map``).  Rows of dirty tasks
    are re-enumerated from the new segments — the O(Σ m_j²) triangle
    work runs over affected tasks only.
    """
    _, _, _, old_ps_pair, old_ps_task, old_ps_ca, old_ps_cb = old._pair_tables
    keep = ~dirty_mask[old_ps_task]
    wa_parts = [old.claim_worker[old_ps_ca[keep]]]
    wb_parts = [old.claim_worker[old_ps_cb[keep]]]
    task_parts = [old_ps_task[keep]]
    ca_parts = [claim_map[old_ps_ca[keep]]]
    cb_parts = [claim_map[old_ps_cb[keep]]]

    task_ptr = arrays.task_ptr
    for j in map(int, dirty):
        start, end = int(task_ptr[j]), int(task_ptr[j + 1])
        m = end - start
        if m < 2:
            continue
        local_a, local_b = np.triu_indices(m, k=1)
        ca = start + local_a
        cb = start + local_b
        wa = arrays.claim_worker[ca]
        wb = arrays.claim_worker[cb]
        swap = wa > wb
        ca2 = np.where(swap, cb, ca)
        cb2 = np.where(swap, ca, cb)
        wa_parts.append(arrays.claim_worker[ca2])
        wb_parts.append(arrays.claim_worker[cb2])
        task_parts.append(np.full(len(ca2), j, dtype=np.int64))
        ca_parts.append(ca2)
        cb_parts.append(cb2)

    wa = np.concatenate(wa_parts)
    if len(wa) == 0:
        empty = np.empty(0, dtype=np.int64)
        return (empty, empty, np.zeros(1, dtype=np.int64), empty, empty, empty, empty)
    wb = np.concatenate(wb_parts)
    tasks = np.concatenate(task_parts)
    ca = np.concatenate(ca_parts)
    cb = np.concatenate(cb_parts)
    order = np.lexsort((tasks, wb, wa))
    wa, wb = wa[order], wb[order]
    key = wa * arrays.index.n_workers + wb
    uniq, first, counts = np.unique(key, return_index=True, return_counts=True)
    pair_ptr = np.zeros(len(uniq) + 1, dtype=np.int64)
    np.cumsum(counts, out=pair_ptr[1:])
    return (
        wa[first],
        wb[first],
        pair_ptr,
        np.repeat(np.arange(len(uniq)), counts),
        tasks[order],
        ca[order],
        cb[order],
    )
