"""False-value distribution models (Sec. II-B and Sec. IV-B).

The base algorithm assumes a *uniform* false-value distribution: an
independent worker that errs picks each of the ``num_j`` false values
with probability ``1/num_j``.  Section IV-B generalizes this with a
density ``f(h)`` over false-value probabilities, replacing

- the pairwise collision probability ``1/num_j`` in Eq. 8 with
  ``∫ h² f(h) dh`` (Eq. 22), and
- the per-false-value factor of Eq. 18 with the value's own
  probability (Eq. 23).

Instead of carrying ``f(h)`` symbolically, each model here exposes the
two quantities the formulas actually consume:

- :meth:`FalseValueDistribution.collision_probability` — the chance two
  independent erring workers pick the *same* false value
  (``Σ_v p_v²``); and
- :meth:`FalseValueDistribution.value_probability` — the chance an
  independent erring worker picks one *given* false value.

With :class:`UniformFalseValues` both reduce exactly to the paper's
original formulas, so the base algorithm is the special case.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from weakref import WeakKeyDictionary

import numpy as np

from ..errors import ConfigurationError
from .indexing import DatasetIndex

__all__ = [
    "FalseValueDistribution",
    "UniformFalseValues",
    "ZipfFalseValues",
    "EmpiricalFalseValues",
]


class FalseValueDistribution(ABC):
    """Model of how independent workers distribute their errors.

    Implementations may use the dataset index (for example to rank
    values by observed popularity) but must not use task ground truths.

    The vectorized backend consumes the two batch views
    :meth:`collision_array` and :meth:`value_probability_array`; their
    defaults loop over the scalar methods and cache per dataset index,
    so custom models work unmodified (and fast models override them
    with closed forms).  Set :attr:`candidate_free` to ``True`` when
    ``value_probability`` ignores both the value and the assumed truth
    (as the uniform model does) to unlock the fully flat posterior
    kernel.
    """

    #: True when ``value_probability`` depends only on the task — i.e.
    #: q(v | truth) is one number per task.
    candidate_free = False

    def __fingerprint__(self) -> dict:
        """Identifying parameters for the run ledger's canonical
        fingerprint (:mod:`repro.artifacts.fingerprint`).

        The base model is parameter-free; parameterized subclasses
        (Zipf, empirical) override this with their constructor state —
        never the per-dataset caches, which derive from the data.
        """
        return {}

    def prepare(self, index: DatasetIndex) -> None:
        """Hook called once per DATE run before any queries.

        Models that derive their shape from the data (Zipf ranking,
        empirical fitting) compute their per-task tables here.
        """

    def _array_cache(self, index: DatasetIndex) -> dict:
        """Per-(model, index) cache for the batch views below.

        Lives on the index's array view inside a ``WeakKeyDictionary``
        keyed by the model, so a long-lived shared index does not pin
        every model a sweep ever instantiated (each grid point's model
        and its arrays are released when the model goes away).
        """
        caches = index.arrays.__dict__.setdefault(
            "_falsedist_cache", WeakKeyDictionary()
        )
        return caches.setdefault(self, {})

    def collision_array(self, index: DatasetIndex) -> np.ndarray:
        """Per-task collision probabilities as one array (Eq. 22).

        Collision probabilities are truth-independent, so the array is a
        pure function of the dataset; it is computed once per index and
        cached (the scalar kernels recompute the same values per call).
        """
        cache = self._array_cache(index)
        if "collision" not in cache:
            cache["collision"] = np.array(
                [
                    self.collision_probability(j, index)
                    for j in range(index.n_tasks)
                ],
                dtype=np.float64,
            )
        return cache["collision"]

    def value_probability_array(self, index: DatasetIndex) -> np.ndarray:
        """Per-value-group false probabilities ``q_j(v)``, truth-free.

        One entry per group of ``index.arrays`` (``assumed_truth=None``,
        the query the discounted posterior makes), floored at the
        likelihood clamp like the scalar kernel.  Cached per index.
        """
        cache = self._array_cache(index)
        if "group_q" not in cache:
            arrays = index.arrays
            cache["group_q"] = np.maximum(
                np.array(
                    [
                        self.value_probability(
                            int(arrays.group_task[g]),
                            index,
                            arrays.group_values[g],
                            None,
                        )
                        for g in range(arrays.n_groups)
                    ],
                    dtype=np.float64,
                ),
                1e-12,
            )
        return cache["group_q"]

    def value_probability_matrices(self, index: DatasetIndex) -> list[np.ndarray]:
        """Per-task ``K_j x K_j`` matrices ``Q[v, c] = q_j(v | c true)``.

        Rows follow the task's value codes (observed values in sorted
        order), columns the candidate truths in the same order.  These
        are iteration-invariant, so the general (non candidate-free)
        posterior kernel computes them once per index and reuses them
        every iteration.
        """
        cache = self._array_cache(index)
        if "q_matrices" not in cache:
            arrays = index.arrays
            matrices: list[np.ndarray] = []
            for j in range(index.n_tasks):
                g0 = int(arrays.task_group_ptr[j])
                g1 = int(arrays.task_group_ptr[j + 1])
                values = arrays.group_values[g0:g1]
                matrices.append(
                    np.array(
                        [
                            [
                                self.value_probability(j, index, value, candidate)
                                for candidate in values
                            ]
                            for value in values
                        ],
                        dtype=np.float64,
                    )
                )
            cache["q_matrices"] = matrices
        return cache["q_matrices"]

    @abstractmethod
    def collision_probability(self, task_index: int, index: DatasetIndex) -> float:
        """``Σ_v p_v²`` over the false values of one task (Eq. 22's integral)."""

    @abstractmethod
    def value_probability(
        self,
        task_index: int,
        index: DatasetIndex,
        value: str,
        assumed_truth: str | None,
    ) -> float:
        """Probability an independent erring worker picks ``value``.

        ``assumed_truth`` is the candidate truth currently being scored;
        the distribution is over the remaining (false) values.  ``None``
        asks for the typical false-value probability without committing
        to a truth (used by the discounted posterior mode).
        """


class UniformFalseValues(FalseValueDistribution):
    """The paper's base assumption (Sec. II-B): all false values equally likely."""

    candidate_free = True

    def collision_array(self, index: DatasetIndex) -> np.ndarray:
        return 1.0 / index.num_false.astype(np.float64)

    def value_probability_array(self, index: DatasetIndex) -> np.ndarray:
        arrays = index.arrays
        return 1.0 / index.num_false.astype(np.float64)[arrays.group_task]

    def collision_probability(self, task_index: int, index: DatasetIndex) -> float:
        return 1.0 / float(index.num_false[task_index])

    def value_probability(
        self,
        task_index: int,
        index: DatasetIndex,
        value: str,
        assumed_truth: str | None,
    ) -> float:
        return 1.0 / float(index.num_false[task_index])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UniformFalseValues()"


def _normalized_zipf(count: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


class ZipfFalseValues(FalseValueDistribution):
    """Zipf-shaped false values: a few popular wrong answers dominate.

    This captures the paper's motivating example ("most people believe
    Australia's capital is Sydney"): rank 1 gets the bulk of the error
    mass.  Ranks are assigned per task by *observed* support (the most
    claimed non-truth-candidate value is rank 1), falling back to
    lexicographic order for unobserved domain values; ground truth is
    never consulted.
    """

    def __init__(self, exponent: float = 1.0):
        if exponent < 0:
            raise ConfigurationError("Zipf exponent must be >= 0")
        self.exponent = float(exponent)
        self._ranking: list[list[str]] = []

    def __fingerprint__(self) -> dict:
        return {"exponent": self.exponent}

    def prepare(self, index: DatasetIndex) -> None:
        self._ranking = []
        for j in range(index.n_tasks):
            counts = Counter(
                {v: len(ws) for v, ws in index.value_groups[j].items()}
            )
            task = index.dataset.tasks[j]
            for domain_value in task.domain:
                counts.setdefault(domain_value, 0)
            ordered = sorted(counts, key=lambda v: (-counts[v], v))
            self._ranking.append(ordered)

    def _probabilities(
        self, task_index: int, index: DatasetIndex, assumed_truth: str | None
    ) -> dict[str, float]:
        if not self._ranking:
            self.prepare(index)
        ordered = [v for v in self._ranking[task_index] if v != assumed_truth]
        count = max(len(ordered), int(index.num_false[task_index]))
        probs = _normalized_zipf(count, self.exponent)
        return {v: float(probs[rank]) for rank, v in enumerate(ordered)}

    def collision_probability(self, task_index: int, index: DatasetIndex) -> float:
        # The collision probability is (nearly) truth-independent; use
        # the full ranking so dependence scoring needs no truth guess.
        probs = self._probabilities(task_index, index, assumed_truth=None)
        count = max(len(probs), int(index.num_false[task_index]))
        vector = _normalized_zipf(count, self.exponent)
        return float(np.sum(vector**2))

    def value_probability(
        self,
        task_index: int,
        index: DatasetIndex,
        value: str,
        assumed_truth: str | None,
    ) -> float:
        probs = self._probabilities(task_index, index, assumed_truth)
        if value in probs:
            return probs[value]
        # Unseen, undeclared value: give it the tail probability.
        count = max(len(probs) + 1, int(index.num_false[task_index]))
        return float(_normalized_zipf(count, self.exponent)[-1])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ZipfFalseValues(exponent={self.exponent})"


class EmpiricalFalseValues(FalseValueDistribution):
    """False-value shape estimated from the observed claim frequencies.

    For each task the distribution over values *other than the candidate
    truth* is proportional to their observed claim counts (plus
    Laplace smoothing ``smoothing`` so unobserved domain values keep
    non-zero mass).  This is the data-driven instantiation of Sec. IV-B.
    """

    def __init__(self, smoothing: float = 1.0):
        if smoothing <= 0:
            raise ConfigurationError("smoothing must be > 0")
        self.smoothing = float(smoothing)
        self._counts: list[dict[str, int]] = []

    def __fingerprint__(self) -> dict:
        return {"smoothing": self.smoothing}

    def prepare(self, index: DatasetIndex) -> None:
        self._counts = []
        for j in range(index.n_tasks):
            counts = {v: len(ws) for v, ws in index.value_groups[j].items()}
            for domain_value in index.dataset.tasks[j].domain:
                counts.setdefault(domain_value, 0)
            self._counts.append(counts)

    def _smoothed(
        self, task_index: int, index: DatasetIndex, assumed_truth: str | None
    ) -> dict[str, float]:
        if not self._counts:
            self.prepare(index)
        counts = self._counts[task_index]
        items = {
            v: c + self.smoothing for v, c in counts.items() if v != assumed_truth
        }
        if not items:
            return {}
        total = sum(items.values())
        return {v: c / total for v, c in items.items()}

    def collision_probability(self, task_index: int, index: DatasetIndex) -> float:
        probs = self._smoothed(task_index, index, assumed_truth=None)
        if not probs:
            return 1.0 / float(index.num_false[task_index])
        return float(sum(p * p for p in probs.values()))

    def value_probability(
        self,
        task_index: int,
        index: DatasetIndex,
        value: str,
        assumed_truth: str | None,
    ) -> float:
        probs = self._smoothed(task_index, index, assumed_truth)
        if value in probs:
            return probs[value]
        # Unseen value: pretend it had a zero count, i.e. smoothing mass.
        total = sum(self._counts[task_index].values()) + self.smoothing * (
            len(probs) + 1
        )
        return self.smoothing / total if total > 0 else 1.0 / float(
            index.num_false[task_index]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EmpiricalFalseValues(smoothing={self.smoothing})"
