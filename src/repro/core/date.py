"""DATE — Dependence and Accuracy based Truth Estimation (Alg. 1).

The driver wires the three steps together and iterates until the truth
estimate stabilizes or the iteration cap ``φ`` is reached:

1. :func:`~repro.core.dependence.compute_pairwise_dependence` — copier
   posteriors from the current truths and accuracies (Eqs. 7-15);
2. :func:`~repro.core.independence.independence_probabilities` —
   per-value independence scores via the greedy ordering (Eq. 16);
3. :func:`~repro.core.accuracy.value_posteriors` /
   :func:`~repro.core.accuracy.update_accuracy_matrix` — Bayesian value
   posteriors and refreshed accuracies (Eqs. 17-20), then
   :func:`~repro.core.support.support_counts` — truth selection by the
   largest dependence-discounted support (line 28, optionally
   similarity-adjusted per Eq. 21).

The initial truth estimate is majority voting and the initial accuracy
matrix is the constant ε (Sec. III-A).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConvergenceWarning
from ..types import Dataset
from .accuracy import (
    discounted_value_posteriors,
    update_accuracy_matrix,
    value_posteriors,
    worker_mean_accuracy,
)
from .config import DateConfig
from .dependence import DependencePosterior, compute_pairwise_dependence
from .engine import (
    DependenceArrays,
    IncrementalDependence,
    accuracy_flat,
    dense_accuracy,
    dependence_table,
    discounted_posterior_groups,
    independence_flat,
    pairwise_dependence_arrays,
    plain_posterior_groups,
    posterior_table,
    select_truth_codes,
    support_flat,
    support_table,
)
from .independence import independence_probabilities
from .indexing import ClaimArrays, DatasetIndex
from .support import select_truths, support_counts

__all__ = ["DATE", "TruthDiscoveryResult", "discover_truth", "iterate_truths"]


#: Histogram bounds for iterations-to-convergence (Fibonacci-ish).
_ITERATION_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0)

#: Kernel phases of one vectorized DATE iteration, in execution order.
_PHASES = ("dependence", "independence", "posterior", "support")


class _RunTelemetry:
    """Per-run convergence recorder for DATE (DESIGN.md §13).

    Constructed by :func:`_run_telemetry` only when telemetry is live,
    so the disabled hot loop pays a single ``is None`` check per phase.
    Instruments are bound once here — never looked up inside the
    iteration — and everything recorded is *read* from loop state after
    the kernels have produced it: observation cannot perturb the fixed
    point, which is what keeps instrumented runs bit-identical.
    """

    def __init__(self, registry, writer, backend: str):
        self._writer = writer
        self._iteration = 0
        labels = {"backend": backend}
        self.run_seconds = registry.timer(
            "date_run_seconds", "Wall time of one DATE run.", labels=labels
        )
        self.runs_total = registry.counter(
            "date_runs_total", "DATE runs executed.", labels=labels
        )
        self.converged_total = registry.counter(
            "date_converged_runs_total",
            "DATE runs whose truth estimate stabilized before the cap.",
            labels=labels,
        )
        self.iterations_hist = registry.histogram(
            "date_iterations",
            "Iterations to convergence per DATE run.",
            labels=labels,
            buckets=_ITERATION_BUCKETS,
        )
        self.iteration_seconds = registry.timer(
            "date_iteration_seconds",
            "Wall time of one DATE fixed-point iteration.",
            labels=labels,
        )
        self.phase_seconds = {
            name: registry.timer(
                "date_phase_seconds",
                "Wall time per kernel phase of a DATE iteration.",
                labels={**labels, "phase": name},
            )
            for name in _PHASES
        }
        self.flips_total = registry.counter(
            "date_truth_flips_total",
            "Per-task truth estimate changes across iterations.",
            labels=labels,
        )
        self.delta_hist = registry.histogram(
            "date_posterior_delta",
            "Max |change| of per-claim accuracy per iteration.",
            labels=labels,
        )
        self.dirty_rows_hist = registry.histogram(
            "date_dirty_pair_rows",
            "Pair rows re-scored per incremental dependence refresh.",
            labels=labels,
            buckets=(0.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7),
        )
        self._registry = registry
        self._labels = labels

    def iteration(
        self,
        *,
        seconds: float,
        phases: dict[str, float] | None,
        flips: int,
        delta: float,
        rows_rescored: int | None,
    ) -> None:
        self._iteration += 1
        self.iteration_seconds.observe(seconds)
        if phases:
            for name, elapsed in phases.items():
                self.phase_seconds[name].observe(elapsed)
        self.flips_total.inc(flips)
        self.delta_hist.observe(delta)
        if rows_rescored is not None:
            self.dirty_rows_hist.observe(rows_rescored)
        if self._writer is not None:
            fields = {
                "iteration": self._iteration,
                "seconds": round(seconds, 9),
                "flips": flips,
                "posterior_delta": delta,
            }
            if phases:
                fields["phases"] = {k: round(v, 9) for k, v in phases.items()}
            if rows_rescored is not None:
                fields["rows_rescored"] = rows_rescored
            self._writer.emit("date_iteration", **fields)

    def finish(
        self,
        *,
        iterations: int,
        converged: bool,
        seconds: float,
        engine_stats=None,
    ) -> None:
        self.runs_total.inc()
        if converged:
            self.converged_total.inc()
        self.iterations_hist.observe(iterations)
        self.run_seconds.observe(seconds)
        fields = {
            "backend": self._labels["backend"],
            "iterations": iterations,
            "converged": converged,
            "seconds": round(seconds, 9),
        }
        if engine_stats is not None:
            registry, labels = self._registry, self._labels
            registry.counter(
                "date_dependence_refreshes_total",
                "IncrementalDependence refreshes (full + incremental).",
                labels=labels,
            ).inc(engine_stats.refreshes)
            registry.counter(
                "date_dependence_full_passes_total",
                "IncrementalDependence refreshes that re-scored every row.",
                labels=labels,
            ).inc(engine_stats.full_passes)
            registry.counter(
                "date_dependence_rows_rescored_total",
                "Pair rows re-scored across all dependence refreshes.",
                labels=labels,
            ).inc(engine_stats.rows_rescored)
            fields["dependence"] = {
                "refreshes": engine_stats.refreshes,
                "full_passes": engine_stats.full_passes,
                "rows_rescored": engine_stats.rows_rescored,
                "rows_total": engine_stats.rows_total,
                "rescore_fraction": round(engine_stats.rescore_fraction, 6),
            }
        if self._writer is not None:
            self._writer.emit("date_run", **fields)


def _run_telemetry(backend: str) -> _RunTelemetry | None:
    """A bound recorder when telemetry is live, else ``None``.

    Lazy imports keep the core import-light and cycle-free; the ``None``
    return is the entire disabled-mode cost signature of the loop.
    """
    from ..obs import trace as obs_trace
    from ..obs.metrics import get_registry

    registry = get_registry()
    writer = obs_trace.active()
    if not registry.enabled and writer is None:
        return None
    return _RunTelemetry(registry, writer, backend)


def iterate_truths(initial, step, *, max_iterations, state_key, label):
    """Alg. 1's outer loop, shared by DATE and NC on both backends.

    Calls ``step(truths) -> new_truths`` until the estimate stabilizes,
    enters a cycle (period >= 2 — keep the current member
    deterministically), or hits the iteration cap ``max_iterations``
    (then warn).  ``state_key`` maps a truth estimate to a hashable
    snapshot (``tuple`` for string lists, ``ndarray.tobytes`` for code
    arrays).  Returns ``(truths, iterations, converged)``.
    """
    truths = initial
    key = state_key(initial)
    seen_states = {key}
    iterations = 0
    converged = False
    cycled = False
    while iterations < max_iterations:
        iterations += 1
        truths = step(truths)
        new_key = state_key(truths)
        if new_key == key:
            converged = True
            break
        key = new_key
        if key in seen_states:
            cycled = True
            break
        seen_states.add(key)
    if not converged and not cycled:
        warnings.warn(
            f"{label} stopped at the iteration cap ({max_iterations}) "
            "without the truth estimate stabilizing",
            ConvergenceWarning,
            # Attribute the warning to the caller of run(), four frames
            # up: iterate_truths -> _run_* -> run -> caller.
            stacklevel=4,
        )
    return truths, iterations, converged


@dataclass(frozen=True, eq=False)
class TruthDiscoveryResult:
    """Output of a truth-discovery run.

    Attributes
    ----------
    truths:
        ``task_id -> estimated truth`` (tasks with no claims omitted).
    accuracy_matrix:
        Dense ``n_workers x n_tasks`` matrix ``A`` (Eq. 17); rows/columns
        follow ``worker_ids`` / ``task_ids``.  This is the matrix the
        reverse auction consumes.
    worker_accuracy:
        ``worker_id -> mean accuracy`` over the worker's answered tasks.
    confidence:
        ``task_id -> posterior probability`` of the selected truth.
    support:
        ``task_id -> {value: support count}`` from the final iteration.
    dependence:
        ``(worker_id, worker_id') -> DependencePosterior`` for every
        co-answering pair (ids in dataset order, first < second
        positionally).  Empty for dependence-unaware methods.
    iterations:
        Number of refinement iterations executed.
    converged:
        Whether the truth estimate stabilized before the cap.
    method:
        Human-readable algorithm name ("DATE", "MV", "NC", "ED").
    """

    truths: dict[str, str]
    accuracy_matrix: np.ndarray
    worker_accuracy: dict[str, float]
    confidence: dict[str, float]
    support: dict[str, dict[str, float]]
    dependence: dict[tuple[str, str], DependencePosterior]
    iterations: int
    converged: bool
    method: str = "DATE"
    worker_ids: tuple[str, ...] = field(default=())
    task_ids: tuple[str, ...] = field(default=())

    def precision(self, truths: dict[str, str] | None = None) -> float:
        """Fraction of tasks whose estimate matches the reference truth.

        Uses the dataset ground truths captured at run time unless an
        explicit reference is given.  Matches the paper's precision
        metric ``Σ g(et_j = et*_j) / |T|`` over tasks with a known
        reference.
        """
        reference = truths if truths is not None else self._ground_truths
        if not reference:
            raise ValueError("no reference truths available for precision")
        hits = sum(
            1 for task_id, truth in reference.items() if self.truths.get(task_id) == truth
        )
        return hits / len(reference)

    # Populated by the runner; excluded from equality on purpose.
    _ground_truths: dict[str, str] = field(default_factory=dict, compare=False)


class DATE:
    """The paper's truth-discovery algorithm, ready to run on a dataset.

    >>> from repro.datasets import generate_qatar_living_like
    >>> dataset = generate_qatar_living_like(seed=1)
    >>> result = DATE().run(dataset)
    >>> 0.0 <= result.precision() <= 1.0
    True
    """

    method_name = "DATE"

    def __init__(self, config: DateConfig | None = None):
        self.config = config or DateConfig()

    def _independence(
        self,
        index: DatasetIndex,
        dependence: dict[tuple[int, int], DependencePosterior],
    ):
        """Step 2 hook; the ED baseline overrides this with enumeration."""
        return independence_probabilities(
            index,
            dependence,
            copy_prob_r=self.config.copy_prob_r,
            ordering=self.config.ordering,
            discount_mode=self.config.discount_mode,
        )

    def _independence_flat(
        self,
        index: DatasetIndex,
        arrays: ClaimArrays,
        dependence: DependenceArrays,
    ):
        """Array-side step 2 hook (vectorized backend); ED overrides it."""
        return independence_flat(
            arrays,
            dependence,
            copy_prob_r=self.config.copy_prob_r,
            ordering=self.config.ordering,
            discount_mode=self.config.discount_mode,
        )

    def run(
        self,
        dataset: Dataset,
        *,
        index: DatasetIndex | None = None,
        warm_start: TruthDiscoveryResult | None = None,
        lean: bool = False,
    ) -> TruthDiscoveryResult:
        """Execute Alg. 1 and return the full result bundle.

        ``warm_start`` seeds the worker accuracies (and, for tasks
        present in both datasets, the initial truth estimates) from a
        previous run instead of the constant ε / majority vote.  This
        supports streaming campaigns — re-estimating after a new batch
        of claims converges in fewer iterations because worker
        reputations carry over.  Workers or tasks unknown to the warm
        start fall back to the cold-start defaults.

        ``lean=True`` is an optimization hint for callers that only
        consume truths, accuracies and confidence (the streaming
        per-batch path): the vectorized backend then skips
        materializing the string-keyed support, posterior and
        dependence tables, leaving those result fields empty.  The
        estimation itself is unchanged.

        ``config.backend`` selects the execution engine — the
        array-native vectorized kernels (default) or the scalar
        reference transcription; both produce the same result.
        """
        index = index or DatasetIndex(dataset)
        if self.config.backend == "vectorized":
            return self._run_vectorized(index, warm_start, lean=lean)
        return self._run_reference(index, warm_start)

    def _run_reference(
        self,
        index: DatasetIndex,
        warm_start: TruthDiscoveryResult | None,
    ) -> TruthDiscoveryResult:
        """Alg. 1 over the scalar per-element kernels."""
        cfg = self.config
        telemetry = _run_telemetry("reference")
        run_start = time.perf_counter() if telemetry is not None else 0.0
        cfg.false_values.prepare(index)

        truths = index.majority_vote()
        accuracy = index.initial_accuracy_matrix(cfg.initial_accuracy)
        if warm_start is not None:
            for j, task_id in enumerate(index.task_ids):
                carried = warm_start.truths.get(task_id)
                if carried is not None and carried in index.value_groups[j]:
                    truths[j] = carried
            for i, worker_id in enumerate(index.worker_ids):
                carried_accuracy = warm_start.worker_accuracy.get(worker_id)
                if carried_accuracy is None or carried_accuracy <= 0.0:
                    continue
                for j in index.claims_by_worker[i]:
                    accuracy[i, j] = carried_accuracy

        dependence: dict[tuple[int, int], DependencePosterior] = {}
        independence = None
        posteriors = None
        support = None

        def step(truths):
            nonlocal dependence, independence, posteriors, support, accuracy
            dependence = compute_pairwise_dependence(
                index,
                truths,
                accuracy,
                copy_prob_r=cfg.copy_prob_r,
                prior_alpha=cfg.prior_alpha,
                false_values=cfg.false_values,
                accuracy_clamp=cfg.accuracy_clamp,
            )
            independence = self._independence(index, dependence)
            if cfg.discounted_posterior:
                posteriors = discounted_value_posteriors(
                    index,
                    accuracy,
                    independence,
                    false_values=cfg.false_values,
                    accuracy_clamp=cfg.accuracy_clamp,
                )
            else:
                posteriors = value_posteriors(
                    index,
                    accuracy,
                    false_values=cfg.false_values,
                    accuracy_clamp=cfg.accuracy_clamp,
                )
            accuracy = update_accuracy_matrix(
                index, posteriors, granularity=cfg.granularity
            )
            support = support_counts(
                index,
                accuracy,
                independence,
                similarity=cfg.similarity,
                similarity_weight=cfg.similarity_weight,
            )
            return select_truths(support)

        truths, iterations, converged = iterate_truths(
            truths,
            step,
            max_iterations=cfg.max_iterations,
            state_key=tuple,
            label="DATE",
        )
        if telemetry is not None:
            telemetry.finish(
                iterations=iterations,
                converged=converged,
                seconds=time.perf_counter() - run_start,
            )
        return build_result(
            index,
            truths,
            accuracy,
            posteriors if posteriors is not None else [],
            support if support is not None else [],
            dependence,
            iterations=iterations,
            converged=converged,
            method=self.method_name,
        )

    def _run_vectorized(
        self,
        index: DatasetIndex,
        warm_start: TruthDiscoveryResult | None,
        lean: bool = False,
    ) -> TruthDiscoveryResult:
        """Alg. 1 over the array kernels of :mod:`repro.core.engine`.

        Inner-loop state is three flat arrays (per-claim accuracy,
        per-claim independence, per-task truth codes); the string-keyed
        result structures are materialized once after convergence.
        """
        cfg = self.config
        arrays = index.arrays
        telemetry = _run_telemetry("vectorized")
        run_start = time.perf_counter() if telemetry is not None else 0.0
        cfg.false_values.prepare(index)
        collision = cfg.false_values.collision_array(index)
        group_q = (
            cfg.false_values.value_probability_array(index)
            if cfg.discounted_posterior
            else None
        )

        truth_codes = arrays.majority_codes()
        claim_acc = np.full(arrays.n_claims, cfg.initial_accuracy, dtype=np.float64)
        if warm_start is not None:
            lookup = arrays.code_lookup
            for j, task_id in enumerate(index.task_ids):
                carried = warm_start.truths.get(task_id)
                if carried is not None:
                    code = lookup[j].get(carried)
                    if code is not None:
                        truth_codes[j] = code
            for i, worker_id in enumerate(index.worker_ids):
                carried_accuracy = warm_start.worker_accuracy.get(worker_id)
                if carried_accuracy is None or carried_accuracy <= 0.0:
                    continue
                start, end = arrays.worker_ptr[i], arrays.worker_ptr[i + 1]
                claim_acc[arrays.worker_claims[start:end]] = carried_accuracy

        dependence = DependenceArrays(p_ab=np.empty(0), p_ba=np.empty(0))
        indep = None
        group_post = None
        group_support = None
        # stable_dependence maintains the pairwise aggregates between
        # iterations: a task whose truth code and claim accuracies did
        # not move is never re-scored, bit-identically to the full pass
        # (DESIGN.md §12).  The engine's first refresh is a full pass.
        engine = (
            IncrementalDependence(
                arrays,
                copy_prob_r=cfg.copy_prob_r,
                prior_alpha=cfg.prior_alpha,
                collision=collision,
                accuracy_clamp=cfg.accuracy_clamp,
            )
            if cfg.stable_dependence
            else None
        )

        def step(truth_codes):
            nonlocal dependence, indep, group_post, group_support, claim_acc
            # Telemetry reads loop state after each kernel; the branches
            # below are the loop's entire disabled-mode cost.
            if telemetry is not None:
                iter_start = mark = time.perf_counter()
                rows_before = engine.stats.rows_rescored if engine is not None else None
                prev_acc = claim_acc
            if engine is not None:
                dependence = engine.refresh(truth_codes, claim_acc)
            else:
                dependence = pairwise_dependence_arrays(
                    arrays,
                    truth_codes,
                    claim_acc,
                    copy_prob_r=cfg.copy_prob_r,
                    prior_alpha=cfg.prior_alpha,
                    collision=collision,
                    accuracy_clamp=cfg.accuracy_clamp,
                    intra_workers=cfg.intra_workers,
                )
            if telemetry is not None:
                now = time.perf_counter()
                t_dependence, mark = now - mark, now
            indep = self._independence_flat(index, arrays, dependence)
            if telemetry is not None:
                now = time.perf_counter()
                t_independence, mark = now - mark, now
            if cfg.discounted_posterior:
                group_post = discounted_posterior_groups(
                    arrays,
                    claim_acc,
                    indep,
                    group_q=group_q,
                    accuracy_clamp=cfg.accuracy_clamp,
                    intra_workers=cfg.intra_workers,
                )
            else:
                group_post = plain_posterior_groups(
                    arrays,
                    claim_acc,
                    false_values=cfg.false_values,
                    accuracy_clamp=cfg.accuracy_clamp,
                    intra_workers=cfg.intra_workers,
                )
            claim_acc = accuracy_flat(
                arrays, group_post, granularity=cfg.granularity
            )
            if telemetry is not None:
                now = time.perf_counter()
                t_posterior, mark = now - mark, now
            group_support = support_flat(
                arrays,
                claim_acc,
                indep,
                similarity=cfg.similarity,
                similarity_weight=cfg.similarity_weight,
            )
            new_codes = select_truth_codes(arrays, group_support)
            if telemetry is not None:
                now = time.perf_counter()
                telemetry.iteration(
                    seconds=now - iter_start,
                    phases={
                        "dependence": t_dependence,
                        "independence": t_independence,
                        "posterior": t_posterior,
                        "support": now - mark,
                    },
                    flips=int(np.count_nonzero(new_codes != truth_codes)),
                    delta=float(np.max(np.abs(claim_acc - prev_acc)))
                    if len(claim_acc)
                    else 0.0,
                    rows_rescored=(
                        engine.stats.rows_rescored - rows_before
                        if rows_before is not None
                        else None
                    ),
                )
            return new_codes

        truth_codes, iterations, converged = iterate_truths(
            truth_codes,
            step,
            max_iterations=cfg.max_iterations,
            state_key=lambda codes: codes.tobytes(),
            label="DATE",
        )
        if telemetry is not None:
            telemetry.finish(
                iterations=iterations,
                converged=converged,
                seconds=time.perf_counter() - run_start,
                engine_stats=engine.stats if engine is not None else None,
            )
        truths = arrays.truth_values(truth_codes)
        if lean:
            # Only the selected value's posterior survives, gathered
            # straight into the confidence map — no per-task posterior
            # tables are materialized at all.
            confidence: dict[str, float] = {}
            if group_post is not None:
                answered = np.flatnonzero(truth_codes >= 0)
                groups = arrays.task_group_ptr[answered] + truth_codes[answered]
                for j, g in zip(answered, groups):
                    confidence[index.task_ids[j]] = float(group_post[g])
            return build_result(
                index,
                truths,
                dense_accuracy(arrays, claim_acc),
                [],
                [],
                {},
                iterations=iterations,
                converged=converged,
                method=self.method_name,
                confidence=confidence,
            )
        return build_result(
            index,
            truths,
            dense_accuracy(arrays, claim_acc),
            posterior_table(arrays, group_post) if group_post is not None else [],
            support_table(arrays, group_support)
            if group_support is not None
            else [],
            dependence_table(arrays, dependence),
            iterations=iterations,
            converged=converged,
            method=self.method_name,
        )


def build_result(
    index: DatasetIndex,
    truths: list[str | None],
    accuracy: np.ndarray,
    posteriors: list[dict[str, float]],
    support: list[dict[str, float]],
    dependence: dict[tuple[int, int], DependencePosterior],
    *,
    iterations: int,
    converged: bool,
    method: str,
    confidence: dict[str, float] | None = None,
) -> TruthDiscoveryResult:
    """Assemble a :class:`TruthDiscoveryResult` from index-space pieces.

    Shared by DATE and the baselines so every algorithm reports the
    same, directly comparable structure.  ``confidence`` short-circuits
    the posterior-table lookup for callers that already hold the
    selected values' posteriors (the lean path).
    """
    truth_map = {
        index.task_ids[j]: value
        for j, value in enumerate(truths)
        if value is not None
    }
    if confidence is None:
        confidence = {}
        for j, value in enumerate(truths):
            if value is None:
                continue
            if j < len(posteriors) and posteriors[j]:
                confidence[index.task_ids[j]] = posteriors[j].get(value, 0.0)
    support_map = {
        index.task_ids[j]: dict(counts)
        for j, counts in enumerate(support)
        if counts
    }
    means = worker_mean_accuracy(index, accuracy)
    worker_accuracy = {
        worker_id: float(means[i]) for i, worker_id in enumerate(index.worker_ids)
    }
    dependence_map = {
        (index.worker_ids[a], index.worker_ids[b]): posterior
        for (a, b), posterior in dependence.items()
    }
    return TruthDiscoveryResult(
        truths=truth_map,
        accuracy_matrix=accuracy,
        worker_accuracy=worker_accuracy,
        confidence=confidence,
        support=support_map,
        dependence=dependence_map,
        iterations=iterations,
        converged=converged,
        method=method,
        worker_ids=tuple(index.worker_ids),
        task_ids=tuple(index.task_ids),
        _ground_truths=dict(index.dataset.truths),
    )


def discover_truth(
    dataset: Dataset, config: DateConfig | None = None
) -> TruthDiscoveryResult:
    """Convenience wrapper: run DATE with ``config`` on ``dataset``."""
    return DATE(config).run(dataset)
