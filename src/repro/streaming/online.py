"""Online truth discovery: DATE over a stream of claim batches.

:class:`OnlineDATE` keeps one long-lived campaign estimate current as
claims arrive, without paying a cold re-encode + full re-run per batch:

1. **Incremental ingestion** — each batch extends the campaign's
   :class:`~repro.core.indexing.DatasetIndex` through its append path,
   which re-encodes only the *dirty* tasks (tasks receiving claims,
   plus appended tasks) and splices every clean CSR segment across.
   Per-claim accuracy state is carried over via the extension's claim
   position map.
2. **Dirty-scope re-estimation** — DATE runs on the sub-campaign
   induced by the batch's dirty tasks only (all claims on those tasks,
   the workers providing them), warm-started from the current truths
   and worker reputations, so the per-batch cost is O(affected
   segments) instead of O(campaign).
3. **Periodic full refresh** — the dirty-scope pass is a local
   approximation: new evidence on one task can, through worker
   reputations and copier posteriors, shift estimates elsewhere.
   :meth:`OnlineDATE.refresh` (run automatically every
   ``refresh_every`` batches, and at the end of a replay) re-runs DATE
   cold over the whole maintained index, restoring *exactly* the
   batch-mode answer: after a refresh the estimate equals
   ``DATE(config).run(full_dataset)`` bit for bit, because it is the
   same computation over an index pinned equivalent to a cold rebuild.

See DESIGN.md §8 for the invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

import numpy as np

from ..core.config import DateConfig
from ..core.date import TruthDiscoveryResult
from ..core.engine import DependenceArrays, IncrementalDependence, dense_accuracy
from ..core.indexing import ClaimArrays, DatasetIndex
from ..discovery import canonical_algorithm, make_discoverer
from ..errors import ConfigurationError
from ..types import Dataset
from .ingest import ClaimBatch

__all__ = ["OnlineDATE", "OnlineUpdate"]


@dataclass(frozen=True)
class OnlineUpdate:
    """What one :meth:`OnlineDATE.ingest` call did.

    Attributes
    ----------
    batch:
        1-based index of the ingested batch.
    new_tasks / new_workers / new_claims:
        Sizes of the batch delta.
    dirty_tasks:
        Number of task segments re-encoded and re-estimated.
    iterations:
        DATE iterations spent on this batch — the dirty-scope
        re-estimation, or the full refresh when one fired (0 when the
        batch carried no claims).
    refreshed:
        Whether this ingest triggered a periodic full refresh (which
        then replaces the dirty-scope pass entirely).
    """

    batch: int
    new_tasks: int
    new_workers: int
    new_claims: int
    dirty_tasks: int
    iterations: int
    refreshed: bool


class OnlineDATE:
    """A long-lived, incrementally updated DATE estimator.

    >>> from repro.datasets import generate_qatar_living_like
    >>> from repro.streaming import replay_batches
    >>> dataset = generate_qatar_living_like(seed=3, n_tasks=40,
    ...     n_workers=20, n_copiers=5, target_claims=600)
    >>> online = OnlineDATE()
    >>> for batch in replay_batches(dataset, 4):
    ...     _ = online.ingest(batch)
    >>> final = online.refresh()
    >>> final.truths == DATE().run(dataset).truths
    True

    Parameters
    ----------
    config:
        DATE hyperparameters, shared by the dirty-scope passes and the
        full refreshes.
    refresh_every:
        Run a full refresh automatically after every N ingested
        batches; 0 (default) refreshes only on explicit
        :meth:`refresh` calls.
    algorithm:
        Name of the truth-discovery zoo member driving both the
        dirty-scope passes and the full refreshes (default ``DATE``;
        see :func:`repro.discovery.list_algorithms`).  Algorithms
        without a warm-start path simply re-estimate the dirty scope
        cold — the refresh exactness guarantee is unchanged.
    track_dependence:
        Maintain campaign-level pairwise dependence posteriors
        incrementally across batches
        (:class:`~repro.core.engine.IncrementalDependence`): each
        ingest carries the untouched rows' cached contributions across
        the index extension and re-scores only the dirty tasks' rows,
        so :meth:`dependence_snapshot` stays bit-identical to a full
        recompute at a fraction of its cost (DESIGN.md §12).  Off by
        default — the aggregates cost O(pair rows) memory.

    The vectorized dirty-scope sub-runs always use the
    ``stable_dependence`` fast path: it is pinned bit-identical to the
    full per-iteration recompute, so it is a pure cost saving and never
    observable in results.
    """

    def __init__(
        self,
        config: DateConfig | None = None,
        *,
        refresh_every: int = 0,
        track_dependence: bool = False,
        algorithm: str = "DATE",
    ):
        if refresh_every < 0:
            raise ConfigurationError(
                f"refresh_every must be >= 0, got {refresh_every}"
            )
        self._config = config or DateConfig()
        self._sub_config = self._config.evolve(stable_dependence=True)
        self._algorithm = canonical_algorithm(algorithm)
        self._discoverer = make_discoverer(
            self._algorithm, date_config=self._config
        )
        self._sub_discoverer = make_discoverer(
            self._algorithm, date_config=self._sub_config
        )
        self.refresh_every = refresh_every
        self._track_dependence = track_dependence
        self._engine: IncrementalDependence | None = None
        self._truth_codes = np.empty(0, dtype=np.int64)
        self._index = DatasetIndex(Dataset(tasks=(), workers=(), claims={}))
        self._claim_acc = np.empty(0, dtype=np.float64)
        self._truths: dict[str, str] = {}
        self._confidence: dict[str, float] = {}
        self._batches = 0
        self._last_refresh: TruthDiscoveryResult | None = None

    @classmethod
    def from_dataset(
        cls,
        dataset: Dataset,
        config: DateConfig | None = None,
        **kwargs,
    ) -> "OnlineDATE":
        """Seed an online estimator with an existing campaign snapshot."""
        online = cls(config, **kwargs)
        online.ingest(
            ClaimBatch(
                claims=dataset.claims, tasks=dataset.tasks, workers=dataset.workers
            )
        )
        return online

    # -- read side -------------------------------------------------------

    @property
    def config(self) -> DateConfig:
        return self._config

    @property
    def algorithm(self) -> str:
        """Canonical name of the zoo member driving this estimator."""
        return self._algorithm

    @property
    def dataset(self) -> Dataset:
        """The full campaign accumulated so far."""
        return self._index.dataset

    @property
    def index(self) -> DatasetIndex:
        """The incrementally maintained index over :attr:`dataset`."""
        return self._index

    @property
    def n_batches(self) -> int:
        return self._batches

    @property
    def truths(self) -> dict[str, str]:
        """Current ``task_id -> estimated truth``."""
        return dict(self._truths)

    @property
    def confidence(self) -> dict[str, float]:
        """Current ``task_id -> posterior of the selected truth``."""
        return dict(self._confidence)

    @property
    def worker_accuracy(self) -> dict[str, float]:
        """Current ``worker_id -> mean accuracy`` (reputation)."""
        arrays = self._index.arrays
        n_workers = self._index.n_workers
        sums = np.bincount(
            arrays.claim_worker, weights=self._claim_acc, minlength=n_workers
        )
        counts = np.bincount(arrays.claim_worker, minlength=n_workers)
        means = np.divide(
            sums, counts, out=np.zeros(n_workers), where=counts > 0
        )
        return {
            worker_id: float(means[i])
            for i, worker_id in enumerate(self._index.worker_ids)
        }

    def snapshot(self) -> TruthDiscoveryResult:
        """The current estimate as a standard result bundle.

        Support and dependence tables are campaign-global structures the
        online path does not maintain between refreshes; they are empty
        here and populated on the result returned by :meth:`refresh`.
        """
        index = self._index
        return TruthDiscoveryResult(
            truths=dict(self._truths),
            accuracy_matrix=dense_accuracy(index.arrays, self._claim_acc),
            worker_accuracy=self.worker_accuracy,
            confidence=dict(self._confidence),
            support={},
            dependence={},
            iterations=0,
            converged=True,
            method="OnlineDATE",
            worker_ids=tuple(index.worker_ids),
            task_ids=tuple(index.task_ids),
            _ground_truths=dict(index.dataset.truths),
        )

    # -- write side ------------------------------------------------------

    def validate(self, batch: ClaimBatch) -> None:
        """Check ``batch`` against the campaign without applying it.

        Raises :class:`~repro.errors.DataFormatError` for exactly the
        violations :meth:`ingest` would reject — unknown task/worker
        references, duplicate claims, out-of-domain values — and
        touches no state.  The durable store runs this before the
        write-ahead journal append, so a batch destined for a 400 never
        becomes a journal record that would poison every later replay.
        """
        if batch.is_empty:
            return
        self._index.validate_extension(
            tasks=batch.tasks, workers=batch.workers, claims=batch.claims
        )

    def ingest(self, batch: ClaimBatch) -> OnlineUpdate:
        """Apply one claim batch and re-estimate the affected tasks."""
        if batch.is_empty:
            return OnlineUpdate(
                batch=self._batches,
                new_tasks=0,
                new_workers=0,
                new_claims=0,
                dirty_tasks=0,
                iterations=0,
                refreshed=False,
            )
        self._index.arrays  # materialize so the extension splices + maps
        ext = self._index.extended(
            tasks=batch.tasks, workers=batch.workers, claims=batch.claims
        )
        claim_acc = np.full(
            ext.index.arrays.n_claims,
            self._config.initial_accuracy,
            dtype=np.float64,
        )
        if ext.claim_map is not None and len(ext.claim_map):
            claim_acc[ext.claim_map] = self._claim_acc
        self._index = ext.index
        self._claim_acc = claim_acc
        self._batches += 1
        if self._track_dependence:
            self._truth_codes = self._extend_truth_codes(ext)
            if self._engine is not None:
                # Carry the untouched rows' cached contributions across
                # the extension; only the dirty tasks' rows re-score.
                # Valid because the merge step below writes truths and
                # claim accuracies for dirty tasks only, so every other
                # row's inputs are bit-frozen between batches.
                self._engine.rebind(
                    self._index.arrays,
                    collision=self._collision_array(),
                    dirty_tasks=np.asarray(ext.dirty_tasks, dtype=np.int64),
                    truth_codes=self._truth_codes,
                    claim_acc=self._claim_acc,
                )

        iterations = 0
        refreshed = (
            self.refresh_every > 0 and self._batches % self.refresh_every == 0
        )
        if refreshed:
            # The full refresh subsumes the dirty-scope pass — running
            # both would just throw the sub-run's result away.
            iterations = self.refresh().iterations
        else:
            dirty = [
                int(j)
                for j in ext.dirty_tasks
                if self._index.claims_by_task[int(j)]
            ]
            if dirty:
                sub = _subcampaign(self._index, dirty)
                result = self._sub_discoverer.run(
                    sub, warm_start=self._warm_snapshot(), lean=True
                )
                self._merge(dirty, result)
                iterations = result.iterations
            if self._track_dependence:
                arrays = self._index.arrays
                for j in dirty:
                    self._truth_codes[j] = _truth_code_of(
                        arrays, j, self._truths.get(self._index.task_ids[j])
                    )
                if self._engine is not None:
                    # Fold the merged dirty-task results back in (a
                    # stored-state diff finds exactly those tasks).
                    self._engine.refresh(self._truth_codes, self._claim_acc)
        return OnlineUpdate(
            batch=self._batches,
            new_tasks=len(batch.tasks),
            new_workers=len(batch.workers),
            new_claims=batch.n_claims,
            dirty_tasks=len(ext.dirty_tasks),
            iterations=iterations,
            refreshed=refreshed,
        )

    def refresh(self) -> TruthDiscoveryResult:
        """Full cold re-estimation over the maintained index.

        Restores exactness: the returned result is identical to
        ``DATE(config).run(dataset)`` on the campaign accumulated so
        far (the incremental index is pinned equivalent to a cold
        rebuild), and the online state adopts it wholesale.
        """
        index = self._index
        result = self._discoverer.run(index.dataset, index=index)
        return self.adopt_refresh(result)

    def adopt_refresh(self, result: TruthDiscoveryResult) -> TruthDiscoveryResult:
        """Adopt an externally computed full refresh wholesale.

        This is the warm-restart entry point: a refresh persisted by
        the run ledger for *exactly this campaign content and config*
        (the ledger's snapshot fingerprint guarantees it) replaces the
        re-estimation.  The result must cover the maintained index —
        mismatched worker/task orderings raise rather than silently
        corrupting the per-claim accuracy state.
        """
        index = self._index
        if (
            result.worker_ids != tuple(index.worker_ids)
            or result.task_ids != tuple(index.task_ids)
        ):
            raise ConfigurationError(
                "adopted refresh does not match the campaign: worker/task "
                "orderings differ from the maintained index"
            )
        arrays = index.arrays
        self._claim_acc = result.accuracy_matrix[
            arrays.claim_worker, arrays.claim_task
        ]
        self._truths = dict(result.truths)
        self._confidence = dict(result.confidence)
        self._last_refresh = result
        if self._track_dependence:
            self._truth_codes = arrays.truth_codes(
                [result.truths.get(task_id) for task_id in index.task_ids]
            )
            # A refresh rewrites accuracies campaign-wide; the next
            # snapshot/ingest rebuilds the aggregates from scratch.
            self._engine = None
        return result

    def dependence_snapshot(self) -> DependenceArrays:
        """Current campaign-level pairwise dependence posteriors.

        Requires ``track_dependence=True``.  The first call (and the
        first after a full refresh) pays one full scoring pass; later
        calls re-score only what ingests dirtied since — bit-identical
        to recomputing from the current truths and accuracies.
        """
        if not self._track_dependence:
            raise ConfigurationError(
                "dependence_snapshot requires OnlineDATE(track_dependence=True)"
            )
        if self._engine is None:
            self._engine = IncrementalDependence(
                self._index.arrays,
                copy_prob_r=self._config.copy_prob_r,
                prior_alpha=self._config.prior_alpha,
                collision=self._collision_array(),
                accuracy_clamp=self._config.accuracy_clamp,
            )
        self._engine.refresh(self._truth_codes, self._claim_acc)
        return self._engine.posteriors()

    # -- internals -------------------------------------------------------

    def _collision_array(self) -> np.ndarray:
        fv = self._config.false_values
        fv.prepare(self._index)
        return fv.collision_array(self._index)

    def _extend_truth_codes(self, ext) -> np.ndarray:
        """Carry truth codes across an index extension.

        Task positions are stable under extension, and a clean task's
        value groups are spliced verbatim, so old codes stay valid
        everywhere except the dirty tasks — whose codes are re-derived
        from the (unchanged) truth strings against the re-encoded
        groups.
        """
        arrays = self._index.arrays
        codes = np.full(self._index.n_tasks, -1, dtype=np.int64)
        codes[: len(self._truth_codes)] = self._truth_codes
        for j in ext.dirty_tasks:
            j = int(j)
            codes[j] = _truth_code_of(
                arrays, j, self._truths.get(self._index.task_ids[j])
            )
        return codes

    def _warm_snapshot(self) -> TruthDiscoveryResult:
        """Minimal warm-start carrier: current truths and reputations."""
        return TruthDiscoveryResult(
            truths=dict(self._truths),
            accuracy_matrix=np.zeros((0, 0)),
            worker_accuracy=self.worker_accuracy,
            confidence={},
            support={},
            dependence={},
            iterations=0,
            converged=True,
            method="snapshot",
        )

    def _merge(self, dirty: list[int], result: TruthDiscoveryResult) -> None:
        """Fold a dirty-scope result back into the campaign state."""
        index = self._index
        arrays = index.arrays
        sub_task_pos = {task_id: p for p, task_id in enumerate(result.task_ids)}
        sub_worker_pos = {
            worker_id: p for p, worker_id in enumerate(result.worker_ids)
        }
        for j in dirty:
            task_id = index.task_ids[j]
            value = result.truths.get(task_id)
            if value is None:
                self._truths.pop(task_id, None)
                self._confidence.pop(task_id, None)
            else:
                self._truths[task_id] = value
                confidence = result.confidence.get(task_id)
                if confidence is not None:
                    self._confidence[task_id] = confidence
                else:
                    self._confidence.pop(task_id, None)
            sj = sub_task_pos[task_id]
            for c in range(int(arrays.task_ptr[j]), int(arrays.task_ptr[j + 1])):
                worker_id = index.worker_ids[int(arrays.claim_worker[c])]
                self._claim_acc[c] = result.accuracy_matrix[
                    sub_worker_pos[worker_id], sj
                ]


def _truth_code_of(arrays: ClaimArrays, j: int, value: str | None) -> int:
    """Code of ``value`` within task ``j``'s claim groups (-1 if absent)."""
    if value is None:
        return -1
    g0 = int(arrays.task_group_ptr[j])
    g1 = int(arrays.task_group_ptr[j + 1])
    try:
        return arrays.group_values[g0:g1].index(value)
    except ValueError:
        return -1


def _subcampaign(index: DatasetIndex, dirty: list[int]) -> Dataset:
    """The sub-dataset induced by the dirty tasks, built in O(affected).

    Mirrors :meth:`Dataset.subset` semantics (copy sources outside the
    kept worker set are dropped) without its full-campaign scan.
    """
    dataset = index.dataset
    tasks = tuple(dataset.tasks[j] for j in dirty)
    worker_positions = sorted(
        {i for j in dirty for i in index.claims_by_task[j]}
    )
    keep_ids = {index.worker_ids[i] for i in worker_positions}
    workers = []
    for i in worker_positions:
        worker = dataset.worker_by_id[index.worker_ids[i]]
        sources = tuple(s for s in worker.sources if s in keep_ids)
        if worker.is_copier and not sources:
            worker = dc_replace(
                worker, is_copier=False, sources=(), copy_prob=0.0
            )
        elif sources != worker.sources:
            worker = dc_replace(worker, sources=sources)
        workers.append(worker)
    claims = {
        (index.worker_ids[i], index.task_ids[j]): value
        for j in dirty
        for i, value in index.claims_by_task[j].items()
    }
    return Dataset(tasks=tasks, workers=tuple(workers), claims=claims)
