"""Multi-campaign store: many concurrent online campaigns, one process.

:class:`CampaignStore` is the state backing the HTTP service — a
thread-safe map of campaign id to :class:`~repro.streaming.online.
OnlineDATE` with the operations the API exposes: create, ingest,
estimate (snapshot or full refresh), snapshot-as-JSON, auction, evict.
An optional capacity bound evicts the least-recently-used campaign so
one process can serve an unbounded campaign churn with bounded memory.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Iterable

from ..artifacts import (
    RunLedger,
    truth_result_from_payload,
    truth_result_to_payload,
)
from ..auction.config import AuctionConfig
from ..core.config import DateConfig
from ..core.date import TruthDiscoveryResult
from ..discovery import canonical_algorithm
from ..errors import ConfigurationError, ReproError
from ..mechanism.imc2 import IMC2, IMC2Outcome
from ..obs.metrics import get_registry
from ..types import Task, WorkerProfile
from .ingest import ClaimBatch
from .online import OnlineDATE, OnlineUpdate

__all__ = [
    "Campaign",
    "CampaignStore",
    "DuplicateCampaignError",
    "UnknownCampaignError",
]


class UnknownCampaignError(ReproError, KeyError):
    """A campaign id is not present in the store."""

    def __init__(self, campaign_id: str):
        self.campaign_id = campaign_id
        super().__init__(f"unknown campaign {campaign_id!r}")


class DuplicateCampaignError(ReproError, ValueError):
    """A campaign id is already present in the store."""

    def __init__(self, campaign_id: str):
        self.campaign_id = campaign_id
        super().__init__(f"campaign {campaign_id!r} already exists")


class _SnapshotTruth:
    """Adapter handing a precomputed stage-1 result to IMC2."""

    def __init__(self, result: TruthDiscoveryResult):
        self._result = result

    def run(self, dataset, index=None) -> TruthDiscoveryResult:
        return self._result


class Campaign:
    """One live campaign: an online estimator plus bookkeeping.

    ``lock`` serializes all estimator access for this campaign only, so
    a long refresh on one campaign never blocks traffic to another; the
    store's own lock guards nothing but the campaign map.
    """

    def __init__(self, campaign_id: str, online: OnlineDATE):
        self.campaign_id = campaign_id
        self.online = online
        self.lock = threading.RLock()
        self.created_at = time.time()
        self.last_update = self.created_at
        self.claims_ingested = 0

    def describe(self) -> dict:
        """JSON-safe summary (sizes and counters, no estimates)."""
        dataset = self.online.dataset
        return {
            "campaign_id": self.campaign_id,
            "algorithm": self.online.algorithm,
            "tasks": dataset.n_tasks,
            "workers": dataset.n_workers,
            "claims": dataset.n_claims,
            "batches": self.online.n_batches,
            "created_at": self.created_at,
            "last_update": self.last_update,
        }


class CampaignStore:
    """Thread-safe map of live campaigns with LRU capacity eviction.

    Locking is two-level: the store lock guards only the campaign map
    (membership, LRU order), while each campaign carries its own lock
    held for estimator work — so a slow refresh or auction on one
    campaign never stalls requests to the others.  An eviction racing
    an in-flight operation lets that operation finish on the orphaned
    campaign object; the store simply stops handing it out.

    Parameters
    ----------
    config:
        Default DATE hyperparameters for campaigns created without an
        explicit config.
    refresh_every:
        Default periodic-refresh cadence for new campaigns (0 = only
        explicit refreshes).
    algorithm:
        Default truth-discovery algorithm for new campaigns (any zoo
        member; per-campaign override via :meth:`create`).
    max_campaigns:
        When set, creating a campaign beyond this count evicts the
        least recently touched one.
    ledger:
        Optional :class:`~repro.artifacts.RunLedger`.  Every full
        refresh (explicit ``estimate(refresh=True)`` or the one the
        auction runs) is persisted under the fingerprint of ``(DATE
        config, campaign content)``, and looked up before recomputing —
        so a *restarted* store replaying the same campaign warm-starts
        from the banked refresh instead of re-estimating, bit-identical
        because the fingerprint covers every byte the estimation reads.
    """

    def __init__(
        self,
        *,
        config: DateConfig | None = None,
        refresh_every: int = 0,
        max_campaigns: int | None = None,
        ledger: RunLedger | None = None,
        algorithm: str = "DATE",
    ):
        if max_campaigns is not None and max_campaigns < 1:
            raise ConfigurationError(
                f"max_campaigns must be >= 1, got {max_campaigns}"
            )
        self.default_config = config or DateConfig()
        self.default_refresh_every = refresh_every
        self.default_algorithm = canonical_algorithm(algorithm)
        self.max_campaigns = max_campaigns
        self.ledger = ledger
        self._campaigns: OrderedDict[str, Campaign] = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._campaigns)

    def __contains__(self, campaign_id: str) -> bool:
        with self._lock:
            return campaign_id in self._campaigns

    def _get(self, campaign_id: str) -> Campaign:
        campaign = self._campaigns.get(campaign_id)
        if campaign is None:
            raise UnknownCampaignError(campaign_id)
        self._campaigns.move_to_end(campaign_id)
        return campaign

    # -- operations ------------------------------------------------------

    def create(
        self,
        campaign_id: str,
        *,
        tasks: Iterable[Task] = (),
        workers: Iterable[WorkerProfile] = (),
        config: DateConfig | None = None,
        refresh_every: int | None = None,
        algorithm: str | None = None,
    ) -> Campaign:
        """Register a new campaign, optionally pre-publishing tasks."""
        if not campaign_id:
            raise ConfigurationError("campaign_id must be a non-empty string")
        with self._lock:
            if campaign_id in self._campaigns:
                raise DuplicateCampaignError(campaign_id)
        # Seed outside the store lock: pre-publishing a large task set
        # must not stall requests to other campaigns.  Two racing
        # creates of the same id both seed; the second insert loses.
        online = OnlineDATE(
            config or self.default_config,
            refresh_every=(
                self.default_refresh_every
                if refresh_every is None
                else refresh_every
            ),
            algorithm=algorithm or self.default_algorithm,
        )
        campaign = Campaign(campaign_id, online)
        tasks = tuple(tasks)
        workers = tuple(workers)
        if tasks or workers:
            online.ingest(ClaimBatch(tasks=tasks, workers=workers))
        with self._lock:
            if campaign_id in self._campaigns:
                raise DuplicateCampaignError(campaign_id)
            self._campaigns[campaign_id] = campaign
            evicted = 0
            while (
                self.max_campaigns is not None
                and len(self._campaigns) > self.max_campaigns
            ):
                self._campaigns.popitem(last=False)
                evicted += 1
            live = len(self._campaigns)
        registry = get_registry()
        registry.counter(
            "streaming_campaigns_created_total", "Campaigns created."
        ).inc()
        if evicted:
            registry.counter(
                "streaming_campaigns_evicted_total",
                "Campaigns dropped (LRU capacity or explicit delete).",
            ).inc(evicted)
        registry.gauge(
            "streaming_campaigns_live", "Campaigns currently in the store."
        ).set(live)
        return campaign

    def get(self, campaign_id: str) -> Campaign:
        with self._lock:
            return self._get(campaign_id)

    def ingest(self, campaign_id: str, batch: ClaimBatch) -> OnlineUpdate:
        """Apply a claim batch to one campaign."""
        campaign = self.get(campaign_id)
        registry = get_registry()
        with campaign.lock:
            start = time.perf_counter()
            update = campaign.online.ingest(batch)
            elapsed = time.perf_counter() - start
            campaign.claims_ingested += batch.n_claims
            campaign.last_update = time.time()
        labels = {"campaign": campaign_id}
        registry.counter(
            "streaming_ingest_batches_total",
            "Claim batches ingested per campaign.",
            labels=labels,
        ).inc()
        registry.counter(
            "streaming_claims_ingested_total",
            "Claims ingested per campaign.",
            labels=labels,
        ).inc(batch.n_claims)
        registry.timer(
            "streaming_ingest_seconds",
            "Wall time of one claim-batch ingest (estimator update included).",
            labels=labels,
        ).observe(elapsed)
        return update

    def _refresh(self, campaign: Campaign) -> TruthDiscoveryResult:
        """Full refresh through the ledger (campaign lock must be held).

        With a ledger, the refresh for *exactly this campaign content
        and config* is looked up first and adopted wholesale on a hit
        (:meth:`OnlineDATE.adopt_refresh`); a miss computes cold and
        banks the result.  Without a ledger this is a plain refresh.
        """
        online = campaign.online
        registry = get_registry()
        start = time.perf_counter()
        if self.ledger is None:
            result = online.refresh()
            source = "computed"
        else:
            snapshot_key = _campaign_content_key(online)
            payload = self.ledger.get_snapshot(snapshot_key)
            if payload is not None:
                result = online.adopt_refresh(truth_result_from_payload(payload))
                source = "ledger"
            else:
                result = online.refresh()
                self.ledger.put_snapshot(
                    snapshot_key, truth_result_to_payload(result)
                )
                source = "computed"
        registry.counter(
            "streaming_refreshes_total",
            "Full re-estimations per campaign, by how they were served.",
            labels={"campaign": campaign.campaign_id, "source": source},
        ).inc()
        registry.timer(
            "streaming_refresh_seconds",
            "Wall time of one full refresh (ledger lookups included).",
            labels={"campaign": campaign.campaign_id},
        ).observe(time.perf_counter() - start)
        return result

    def estimate(
        self, campaign_id: str, *, refresh: bool = False
    ) -> TruthDiscoveryResult:
        """Current estimate; ``refresh=True`` forces a full re-run."""
        campaign = self.get(campaign_id)
        with campaign.lock:
            if refresh:
                result = self._refresh(campaign)
                campaign.last_update = time.time()
                return result
            return campaign.online.snapshot()

    def truths(self, campaign_id: str) -> dict:
        """Current truths + confidence of one campaign (locked read)."""
        campaign = self.get(campaign_id)
        with campaign.lock:
            return {
                "truths": campaign.online.truths,
                "confidence": campaign.online.confidence,
            }

    def worker_accuracy(self, campaign_id: str) -> dict[str, float]:
        """Current worker reputations of one campaign (locked read)."""
        campaign = self.get(campaign_id)
        with campaign.lock:
            return campaign.online.worker_accuracy

    def auction(
        self,
        campaign_id: str,
        *,
        requirement_cap: float | None = None,
        auction_config: AuctionConfig | None = None,
    ) -> IMC2Outcome:
        """Run the IMC2 mechanism on a campaign's accumulated data.

        Stage 1 reuses a fresh full refresh (so the auction prices
        exact, not incrementally approximated, accuracies); stage 2 is
        the reverse auction over truthful bids, on the vectorized
        engine unless ``auction_config`` selects otherwise.
        """
        campaign = self.get(campaign_id)
        with campaign.lock:
            truth = self._refresh(campaign)
            campaign.last_update = time.time()
            mechanism = IMC2(
                truth_algorithm=_SnapshotTruth(truth),
                auction_config=auction_config,
                requirement_cap=requirement_cap,
            )
            return mechanism.run(campaign.online.dataset)

    def snapshot(self, campaign_id: str) -> dict:
        """JSON-safe campaign state: summary + estimates + reputations."""
        campaign = self.get(campaign_id)
        with campaign.lock:
            online = campaign.online
            return {
                **campaign.describe(),
                "truths": online.truths,
                "confidence": online.confidence,
                "worker_accuracy": online.worker_accuracy,
            }

    def evict(self, campaign_id: str) -> None:
        """Drop a campaign (raises if unknown)."""
        with self._lock:
            if self._campaigns.pop(campaign_id, None) is None:
                raise UnknownCampaignError(campaign_id)
            live = len(self._campaigns)
        registry = get_registry()
        registry.counter(
            "streaming_campaigns_evicted_total",
            "Campaigns dropped (LRU capacity or explicit delete).",
        ).inc()
        registry.gauge(
            "streaming_campaigns_live", "Campaigns currently in the store."
        ).set(live)

    def list_campaigns(self) -> list[dict]:
        """Summaries of all live campaigns, least recently used first."""
        with self._lock:
            return [c.describe() for c in self._campaigns.values()]


def _campaign_content_key(online: OnlineDATE) -> dict:
    """The snapshot fingerprint inputs: config + full campaign content.

    Everything the refresh estimation reads is here — the DATE
    hyperparameters and every task, worker profile, and claim, in
    index order (the result's worker/task orderings follow it, so two
    campaigns that accumulated the same content in different arrival
    orders are distinct work units).  A ledger hit is therefore
    guaranteed to carry the refresh this exact campaign would compute.
    """
    dataset = online.dataset
    return {
        "date": online.config,
        "algorithm": online.algorithm,
        "tasks": dataset.tasks,
        "workers": dataset.workers,
        "claims": dataset.claims,
    }
