"""Multi-campaign store: many concurrent online campaigns, one process.

:class:`CampaignStore` is the state backing the HTTP service — a
thread-safe map of campaign id to :class:`~repro.streaming.online.
OnlineDATE` with the operations the API exposes: create, ingest,
estimate (snapshot or full refresh), snapshot-as-JSON, auction, evict.
An optional capacity bound evicts the least-recently-used campaign so
one process can serve an unbounded campaign churn with bounded memory.

With ``journal_dir`` set the store is **crash-safe** (DESIGN.md §15):
campaign creation and every claim batch are journaled — fsync'd —
*before* the estimator applies them, explicit refreshes are journaled
as intents, and a restarted store replays the journals back to the
exact pre-crash state (adopting the run ledger's banked refresh
snapshots mid-replay when their fingerprints still match, so recovery
is fast *and* bit-identical).  Batch sequence numbers double as the
exactly-once dedup key for retried ingests.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import OrderedDict
from collections.abc import Iterable
from pathlib import Path

from ..artifacts import (
    RunLedger,
    snapshot_fingerprint,
    truth_result_from_payload,
    truth_result_to_payload,
)
from ..auction.config import AuctionConfig
from ..core.config import DateConfig
from ..core.date import TruthDiscoveryResult
from ..discovery import canonical_algorithm
from ..errors import ConfigurationError, ReproError
from ..mechanism.imc2 import IMC2, IMC2Outcome
from ..obs.logging import get_logger
from ..obs.metrics import get_registry
from ..types import Task, WorkerProfile
from .faults import InjectedCrash, get_injector
from .ingest import ClaimBatch, batch_from_json
from .journal import (
    CampaignJournal,
    JournalError,
    batch_from_record,
    batch_record,
    config_fingerprint,
    config_from_payload,
    create_record,
    fsync_dir,
    journal_path,
    list_journals,
    read_journal,
    refresh_record,
)
from .online import OnlineDATE, OnlineUpdate

__all__ = [
    "Campaign",
    "CampaignRecoveringError",
    "CampaignStore",
    "DuplicateCampaignError",
    "UnknownCampaignError",
]

#: Process-wide counter making concurrent temp-journal names unique.
_TMP_JOURNAL_IDS = itertools.count(1)


class UnknownCampaignError(ReproError, KeyError):
    """A campaign id is not present in the store."""

    def __init__(self, campaign_id: str):
        self.campaign_id = campaign_id
        super().__init__(f"unknown campaign {campaign_id!r}")


class DuplicateCampaignError(ReproError, ValueError):
    """A campaign id is already present in the store."""

    def __init__(self, campaign_id: str):
        self.campaign_id = campaign_id
        super().__init__(f"campaign {campaign_id!r} already exists")


class CampaignRecoveringError(ReproError, RuntimeError):
    """A campaign's journal replay has not finished yet.

    The server maps this to ``503 Retry-After`` — the campaign exists
    durably and will be back; failing the request is wrong, and
    serving a half-replayed estimate would be worse.
    """

    retry_after = 1.0

    def __init__(self, campaign_id: str):
        self.campaign_id = campaign_id
        super().__init__(
            f"campaign {campaign_id!r} is recovering from its journal; "
            f"retry shortly"
        )


class _SnapshotTruth:
    """Adapter handing a precomputed stage-1 result to IMC2."""

    def __init__(self, result: TruthDiscoveryResult):
        self._result = result

    def run(self, dataset, index=None) -> TruthDiscoveryResult:
        return self._result


class Campaign:
    """One live campaign: an online estimator plus bookkeeping.

    ``lock`` serializes all estimator access for this campaign only, so
    a long refresh on one campaign never blocks traffic to another; the
    store's own lock guards nothing but the campaign map.

    ``applied_seq`` is the sequence number of the last claim batch the
    estimator applied — the exactly-once watermark retried ingests are
    deduplicated against.  ``journal`` is the campaign's write-ahead
    journal when the store is durable, else ``None``.
    """

    def __init__(
        self,
        campaign_id: str,
        online: OnlineDATE,
        *,
        journal: CampaignJournal | None = None,
        created_at: float | None = None,
    ):
        self.campaign_id = campaign_id
        self.online = online
        self.lock = threading.RLock()
        self.created_at = time.time() if created_at is None else created_at
        self.last_update = self.created_at
        self.claims_ingested = 0
        self.applied_seq = 0
        self.journal = journal

    def describe(self) -> dict:
        """JSON-safe summary (sizes and counters, no estimates)."""
        dataset = self.online.dataset
        return {
            "campaign_id": self.campaign_id,
            "algorithm": self.online.algorithm,
            "tasks": dataset.n_tasks,
            "workers": dataset.n_workers,
            "claims": dataset.n_claims,
            "batches": self.online.n_batches,
            "applied_seq": self.applied_seq,
            "journaled": self.journal is not None,
            "created_at": self.created_at,
            "last_update": self.last_update,
        }


class CampaignStore:
    """Thread-safe map of live campaigns with LRU capacity eviction.

    Locking is two-level: the store lock guards only the campaign map
    (membership, LRU order, recovery marks), while each campaign
    carries its own lock held for estimator work — so a slow refresh or
    auction on one campaign never stalls requests to the others.  An
    eviction racing an in-flight operation lets that operation finish
    on the orphaned campaign object; the store simply stops handing it
    out.

    Parameters
    ----------
    config:
        Default DATE hyperparameters for campaigns created without an
        explicit config.
    refresh_every:
        Default periodic-refresh cadence for new campaigns (0 = only
        explicit refreshes).
    algorithm:
        Default truth-discovery algorithm for new campaigns (any zoo
        member; per-campaign override via :meth:`create`).
    max_campaigns:
        When set, creating a campaign beyond this count evicts the
        least recently touched one.
    ledger:
        Optional :class:`~repro.artifacts.RunLedger`.  Every full
        refresh (explicit ``estimate(refresh=True)`` or the one the
        auction runs) is persisted under the fingerprint of ``(DATE
        config, campaign content)``, and looked up before recomputing —
        so a *restarted* store replaying the same campaign warm-starts
        from the banked refresh instead of re-estimating, bit-identical
        because the fingerprint covers every byte the estimation reads.
    journal_dir:
        When set, the store is durable: campaign creation and every
        claim batch are appended — fsync'd — to a per-campaign
        write-ahead journal *before* the estimator applies them, and
        construction replays existing journals back into live
        campaigns (pass ``defer_recovery=True`` to run
        :meth:`recover` yourself, e.g. on a background thread while
        the HTTP listener already answers health checks).
    defer_recovery:
        Skip the journal replay in the constructor.  Until
        :meth:`recover` finishes, requests touching a journaled-but-
        unreplayed campaign raise :class:`CampaignRecoveringError`.
    """

    def __init__(
        self,
        *,
        config: DateConfig | None = None,
        refresh_every: int = 0,
        max_campaigns: int | None = None,
        ledger: RunLedger | None = None,
        algorithm: str = "DATE",
        journal_dir: str | Path | None = None,
        defer_recovery: bool = False,
    ):
        if max_campaigns is not None and max_campaigns < 1:
            raise ConfigurationError(
                f"max_campaigns must be >= 1, got {max_campaigns}"
            )
        self.default_config = config or DateConfig()
        self.default_refresh_every = refresh_every
        self.default_algorithm = canonical_algorithm(algorithm)
        self.max_campaigns = max_campaigns
        self.ledger = ledger
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self._campaigns: OrderedDict[str, Campaign] = OrderedDict()
        self._lock = threading.RLock()
        self._recovering: set[str] = set()
        self.last_recovery: list[dict] = []
        if self.journal_dir is not None:
            self.journal_dir.mkdir(parents=True, exist_ok=True)
            # A crash between writing a create record to its temp file
            # and linking it into place leaves an orphan: the campaign
            # was never acknowledged, so the debris just goes.
            for orphan in self.journal_dir.glob(".*.tmp"):
                orphan.unlink(missing_ok=True)
            # Mark every journaled campaign recovering *now*, so a
            # deferred (background) recovery never races a request into
            # a half-empty store: until replay finishes these ids 503.
            self._recovering = {cid for cid, _ in list_journals(self.journal_dir)}
            self._recovery_pending = True
            if not defer_recovery:
                self.recover()
        else:
            self._recovery_pending = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._campaigns)

    def __contains__(self, campaign_id: str) -> bool:
        with self._lock:
            return campaign_id in self._campaigns

    @property
    def recovering(self) -> bool:
        """Whether any journal replay is still pending or in flight."""
        with self._lock:
            return self._recovery_pending or bool(self._recovering)

    def _get(self, campaign_id: str) -> Campaign:
        campaign = self._campaigns.get(campaign_id)
        if campaign is None:
            if campaign_id in self._recovering:
                raise CampaignRecoveringError(campaign_id)
            raise UnknownCampaignError(campaign_id)
        self._campaigns.move_to_end(campaign_id)
        return campaign

    def _tmp_journal_path(self, campaign_id: str) -> Path:
        """A unique temp name for a journal being born.

        Unique per attempt, so two racing creates of the same id never
        share a temp file — the loser deletes only its own.  The names
        are dot-prefixed and ``.tmp``-suffixed, invisible to
        :func:`list_journals` and swept as orphans on startup.
        """
        name = journal_path(self.journal_dir, campaign_id).name
        return self.journal_dir / (
            f".{name}.{os.getpid()}.{next(_TMP_JOURNAL_IDS)}.tmp"
        )

    # -- operations ------------------------------------------------------

    def create(
        self,
        campaign_id: str,
        *,
        tasks: Iterable[Task] = (),
        workers: Iterable[WorkerProfile] = (),
        config: DateConfig | None = None,
        refresh_every: int | None = None,
        algorithm: str | None = None,
    ) -> Campaign:
        """Register a new campaign, optionally pre-publishing tasks."""
        if not campaign_id:
            raise ConfigurationError("campaign_id must be a non-empty string")
        with self._lock:
            if campaign_id in self._campaigns:
                raise DuplicateCampaignError(campaign_id)
            if campaign_id in self._recovering:
                raise CampaignRecoveringError(campaign_id)
        # Seed outside the store lock: pre-publishing a large task set
        # must not stall requests to other campaigns.  Two racing
        # creates of the same id both seed; the second insert loses.
        resolved_config = config or self.default_config
        resolved_refresh = (
            self.default_refresh_every if refresh_every is None else refresh_every
        )
        resolved_algorithm = algorithm or self.default_algorithm
        online = OnlineDATE(
            resolved_config,
            refresh_every=resolved_refresh,
            algorithm=resolved_algorithm,
        )
        campaign = Campaign(campaign_id, online)
        tasks = tuple(tasks)
        workers = tuple(workers)
        if tasks or workers:
            online.ingest(ClaimBatch(tasks=tasks, workers=workers))
        journal: CampaignJournal | None = None
        if self.journal_dir is not None:
            # Journal birth also happens out here: writing and fsyncing
            # the create record — seed batch included — can be slow and
            # must not stall requests to other campaigns.  The record
            # goes to a private temp file; only the atomic link into
            # place happens under the store lock, which keeps the
            # journal's appearance atomic with the map insert.
            journal = CampaignJournal(self._tmp_journal_path(campaign_id))
            try:
                journal.append(
                    create_record(
                        campaign_id,
                        config=resolved_config,
                        algorithm=online.algorithm,
                        refresh_every=resolved_refresh,
                        created_at=campaign.created_at,
                        seed_tasks=tasks,
                        seed_workers=workers,
                    )
                )
            except BaseException:
                journal.delete()
                raise
        evicted_campaigns: list[Campaign] = []
        try:
            with self._lock:
                if campaign_id in self._campaigns:
                    raise DuplicateCampaignError(campaign_id)
                if campaign_id in self._recovering:
                    raise CampaignRecoveringError(campaign_id)
                if journal is not None:
                    # One atomic rename, clobbering any stale file an
                    # LRU-evicted ancestor of this id left behind.
                    journal.rename_to(
                        journal_path(self.journal_dir, campaign_id)
                    )
                    fsync_dir(self.journal_dir)
                    campaign.journal = journal
                self._campaigns[campaign_id] = campaign
                while (
                    self.max_campaigns is not None
                    and len(self._campaigns) > self.max_campaigns
                ):
                    _, evicted = self._campaigns.popitem(last=False)
                    evicted_campaigns.append(evicted)
                live = len(self._campaigns)
        except (DuplicateCampaignError, CampaignRecoveringError):
            # Lost the race to another create: discard the never-linked
            # temp journal; the winner's file is untouched.
            if journal is not None:
                journal.delete()
            raise
        registry = get_registry()
        registry.counter(
            "streaming_campaigns_created_total", "Campaigns created."
        ).inc()
        for evicted in evicted_campaigns:
            # LRU eviction drops only the in-memory state: the journal
            # file stays, so a durable store resurrects the campaign on
            # the next recovery (re-creating the id rotates the file).
            self._release(evicted, registry)
        if evicted_campaigns:
            registry.counter(
                "streaming_campaigns_evicted_total",
                "Campaigns dropped (LRU capacity or explicit delete).",
            ).inc(len(evicted_campaigns))
        registry.gauge(
            "streaming_campaigns_live", "Campaigns currently in the store."
        ).set(live)
        return campaign

    def _release(self, campaign: Campaign, registry) -> None:
        """Post-eviction cleanup: close the journal, drop its series.

        Dropping the campaign's labelled metric series caps label
        cardinality on long-lived servers — an evicted campaign's
        counters would otherwise be exported forever.
        """
        if campaign.journal is not None:
            with campaign.lock:
                campaign.journal.close()
        if registry.enabled:
            registry.drop_labels("campaign", campaign.campaign_id)

    def get(self, campaign_id: str) -> Campaign:
        with self._lock:
            return self._get(campaign_id)

    def ingest(
        self, campaign_id: str, batch: ClaimBatch, *, seq: int | None = None
    ) -> OnlineUpdate | None:
        """Apply a claim batch to one campaign — exactly once.

        ``seq`` is the client-assigned batch sequence number (1-based,
        contiguous per campaign).  A batch whose ``seq`` is at or below
        the campaign's applied watermark was already journaled and
        applied — the retry of an ingest whose acknowledgement was
        lost — and returns ``None`` without touching the estimator.
        Without ``seq`` the store assigns the next number itself.

        On a journaled campaign the batch is validated against the
        campaign first, then its record is appended and fsync'd
        *before* the estimator runs: a batch destined for a 400 never
        reaches the journal, an acknowledged ingest survives any crash,
        and a crash between append and apply is replayed to the same
        state on recovery.
        """
        campaign = self.get(campaign_id)
        registry = get_registry()
        with campaign.lock:
            if seq is None:
                seq = campaign.applied_seq + 1
            else:
                seq = int(seq)
                if seq <= campaign.applied_seq:
                    registry.counter(
                        "streaming_duplicate_ingests_total",
                        "Retried claim batches deduplicated by sequence "
                        "number (exactly-once ingest).",
                        labels={"campaign": campaign_id},
                    ).inc()
                    return None
                if seq != campaign.applied_seq + 1:
                    raise ConfigurationError(
                        f"out-of-order ingest: seq {seq} after applied "
                        f"seq {campaign.applied_seq} (expected "
                        f"{campaign.applied_seq + 1})"
                    )
            pre_append = 0
            if campaign.journal is not None:
                # Validate against the campaign *before* the append: a
                # batch the estimator would reject (unknown references,
                # duplicate claims, out-of-domain values — a 400) must
                # never persist, or every later recovery would replay
                # into the same error and report the journal corrupt.
                campaign.online.validate(batch)
                journal_start = time.perf_counter()
                pre_append = campaign.journal.size
                try:
                    campaign.journal.append(batch_record(seq, batch))
                except JournalError:
                    registry.counter(
                        "streaming_journal_write_failures_total",
                        "Ingest journal appends that failed (each one "
                        "became a 503, never an applied batch).",
                    ).inc()
                    raise
                registry.counter(
                    "streaming_journal_appends_total",
                    "Write-ahead journal records appended per campaign.",
                    labels={"campaign": campaign_id},
                ).inc()
                registry.timer(
                    "streaming_journal_append_seconds",
                    "Wall time of one fsync'd journal append.",
                ).observe(time.perf_counter() - journal_start)
            start = time.perf_counter()
            try:
                update = campaign.online.ingest(batch)
            except InjectedCrash:
                # Simulated process death: a real crash leaves the
                # journaled record behind, and so must we — recovery
                # replaying it is exactly the contract under test.
                raise
            except BaseException:
                # The batch passed validation, so this is unexpected —
                # but the journal may only hold applied-or-replayable
                # records, and a retry under the same seq must not
                # append a second record.  Undo the append, then
                # surface the original error (a failed rollback marks
                # the journal failed; later appends refuse).
                if campaign.journal is not None:
                    try:
                        campaign.journal.rollback_to(pre_append)
                    except JournalError:
                        pass
                    registry.counter(
                        "streaming_journal_rollbacks_total",
                        "Journal records rolled back because the "
                        "estimator refused the batch after the append.",
                    ).inc()
                raise
            elapsed = time.perf_counter() - start
            campaign.applied_seq = seq
            campaign.claims_ingested += batch.n_claims
            campaign.last_update = time.time()
        labels = {"campaign": campaign_id}
        registry.counter(
            "streaming_ingest_batches_total",
            "Claim batches ingested per campaign.",
            labels=labels,
        ).inc()
        registry.counter(
            "streaming_claims_ingested_total",
            "Claims ingested per campaign.",
            labels=labels,
        ).inc(batch.n_claims)
        registry.timer(
            "streaming_ingest_seconds",
            "Wall time of one claim-batch ingest (estimator update included).",
            labels=labels,
        ).observe(elapsed)
        return update

    def _refresh(self, campaign: Campaign) -> TruthDiscoveryResult:
        """Full refresh through the ledger (campaign lock must be held).

        With a ledger, the refresh for *exactly this campaign content
        and config* is looked up first and adopted wholesale on a hit
        (:meth:`OnlineDATE.adopt_refresh`); a miss computes cold and
        banks the result.  Without a ledger this is a plain refresh.

        On a journaled campaign the refresh *intent* is appended first
        (with the content fingerprint the result will be banked under),
        so recovery re-executes the refresh at the same point in the
        batch sequence — through the ledger when the fingerprint still
        matches, which is what makes replay fast.
        """
        online = campaign.online
        registry = get_registry()
        start = time.perf_counter()
        snapshot_key = None
        if campaign.journal is not None or self.ledger is not None:
            snapshot_key = _campaign_content_key(online)
        if campaign.journal is not None:
            fp = snapshot_fingerprint(snapshot_key)
            campaign.journal.append(refresh_record(campaign.applied_seq, fp))
            get_injector().fire("store.mid_refresh")
        if self.ledger is None:
            result = online.refresh()
            source = "computed"
        else:
            payload = self.ledger.get_snapshot(snapshot_key)
            if payload is not None:
                result = online.adopt_refresh(truth_result_from_payload(payload))
                source = "ledger"
            else:
                result = online.refresh()
                self.ledger.put_snapshot(
                    snapshot_key, truth_result_to_payload(result)
                )
                source = "computed"
        registry.counter(
            "streaming_refreshes_total",
            "Full re-estimations per campaign, by how they were served.",
            labels={"campaign": campaign.campaign_id, "source": source},
        ).inc()
        registry.timer(
            "streaming_refresh_seconds",
            "Wall time of one full refresh (ledger lookups included).",
            labels={"campaign": campaign.campaign_id},
        ).observe(time.perf_counter() - start)
        return result

    def estimate(
        self, campaign_id: str, *, refresh: bool = False
    ) -> TruthDiscoveryResult:
        """Current estimate; ``refresh=True`` forces a full re-run."""
        campaign = self.get(campaign_id)
        with campaign.lock:
            if refresh:
                result = self._refresh(campaign)
                campaign.last_update = time.time()
                return result
            return campaign.online.snapshot()

    def truths(self, campaign_id: str) -> dict:
        """Current truths + confidence of one campaign (locked read)."""
        campaign = self.get(campaign_id)
        with campaign.lock:
            return {
                "truths": campaign.online.truths,
                "confidence": campaign.online.confidence,
            }

    def worker_accuracy(self, campaign_id: str) -> dict[str, float]:
        """Current worker reputations of one campaign (locked read)."""
        campaign = self.get(campaign_id)
        with campaign.lock:
            return campaign.online.worker_accuracy

    def auction(
        self,
        campaign_id: str,
        *,
        requirement_cap: float | None = None,
        auction_config: AuctionConfig | None = None,
    ) -> IMC2Outcome:
        """Run the IMC2 mechanism on a campaign's accumulated data.

        Stage 1 reuses a fresh full refresh (so the auction prices
        exact, not incrementally approximated, accuracies); stage 2 is
        the reverse auction over truthful bids, on the vectorized
        engine unless ``auction_config`` selects otherwise.
        """
        campaign = self.get(campaign_id)
        with campaign.lock:
            truth = self._refresh(campaign)
            campaign.last_update = time.time()
            mechanism = IMC2(
                truth_algorithm=_SnapshotTruth(truth),
                auction_config=auction_config,
                requirement_cap=requirement_cap,
            )
            return mechanism.run(campaign.online.dataset)

    def snapshot(self, campaign_id: str) -> dict:
        """JSON-safe campaign state: summary + estimates + reputations."""
        campaign = self.get(campaign_id)
        with campaign.lock:
            online = campaign.online
            return {
                **campaign.describe(),
                "truths": online.truths,
                "confidence": online.confidence,
                "worker_accuracy": online.worker_accuracy,
            }

    def evict(self, campaign_id: str) -> None:
        """Drop a campaign (raises if unknown).

        An explicit evict is a durable delete: the campaign's journal
        file is removed, so a restarted store does not resurrect it.
        """
        with self._lock:
            campaign = self._campaigns.pop(campaign_id, None)
            if campaign is None:
                if campaign_id in self._recovering:
                    raise CampaignRecoveringError(campaign_id)
                raise UnknownCampaignError(campaign_id)
            live = len(self._campaigns)
        registry = get_registry()
        if campaign.journal is not None:
            with campaign.lock:
                campaign.journal.delete()
        if registry.enabled:
            registry.drop_labels("campaign", campaign_id)
        registry.counter(
            "streaming_campaigns_evicted_total",
            "Campaigns dropped (LRU capacity or explicit delete).",
        ).inc()
        registry.gauge(
            "streaming_campaigns_live", "Campaigns currently in the store."
        ).set(live)

    def list_campaigns(self) -> list[dict]:
        """Summaries of all live campaigns, least recently used first."""
        with self._lock:
            return [c.describe() for c in self._campaigns.values()]

    def close(self) -> None:
        """Flush and close every campaign journal (graceful shutdown)."""
        with self._lock:
            campaigns = list(self._campaigns.values())
        for campaign in campaigns:
            if campaign.journal is not None:
                with campaign.lock:
                    campaign.journal.close()

    # -- recovery --------------------------------------------------------

    def recover(self) -> list[dict]:
        """Replay every journal under ``journal_dir`` into live campaigns.

        Idempotent; campaigns already live are skipped.  Each journal
        is scanned (a torn tail is dropped and truncated), its create
        record rebuilds the estimator, and its batch/refresh records
        replay in order — refreshes through the ledger when the banked
        snapshot's fingerprint still matches the replayed content.

        A corrupt journal fails *its* campaign only: the campaign is
        reported (``status: "corrupt"``) and skipped, the store keeps
        serving everything else.  Returns the per-campaign reports
        (also kept on :attr:`last_recovery`).
        """
        if self.journal_dir is None:
            self._recovery_pending = False
            return []
        log = get_logger("repro.streaming.recovery")
        registry = get_registry()
        reports: list[dict] = []
        start_all = time.perf_counter()
        found = list_journals(self.journal_dir)
        with self._lock:
            pending = [
                (cid, path)
                for cid, path in found
                if cid not in self._campaigns
            ]
            self._recovering.update(cid for cid, _ in pending)
        for campaign_id, path in pending:
            start = time.perf_counter()
            try:
                campaign, report = self._replay_journal(campaign_id, path)
            except (JournalError, ReproError) as exc:
                report = {
                    "campaign_id": campaign_id,
                    "status": "corrupt",
                    "error": str(exc),
                }
                campaign = None
                log.warning(
                    "journal replay failed; campaign skipped",
                    campaign=campaign_id,
                    error=str(exc),
                )
            report["seconds"] = round(time.perf_counter() - start, 6)
            evicted_campaigns: list[Campaign] = []
            with self._lock:
                if campaign is not None:
                    self._campaigns[campaign.campaign_id] = campaign
                    while (
                        self.max_campaigns is not None
                        and len(self._campaigns) > self.max_campaigns
                    ):
                        _, evicted = self._campaigns.popitem(last=False)
                        evicted_campaigns.append(evicted)
                self._recovering.discard(campaign_id)
            for evicted in evicted_campaigns:
                self._release(evicted, registry)
            registry.counter(
                "streaming_recovered_campaigns_total",
                "Journal replays at startup, by outcome.",
                labels={"status": report["status"]},
            ).inc()
            reports.append(report)
        with self._lock:
            self._recovery_pending = False
            live = len(self._campaigns)
        registry.gauge(
            "streaming_campaigns_live", "Campaigns currently in the store."
        ).set(live)
        registry.timer(
            "streaming_recovery_seconds",
            "Wall time of one full journal-directory recovery.",
        ).observe(time.perf_counter() - start_all)
        if reports:
            log.info(
                "journal recovery finished",
                campaigns=len(reports),
                recovered=sum(1 for r in reports if r["status"] == "recovered"),
                seconds=round(time.perf_counter() - start_all, 3),
            )
        self.last_recovery = reports
        return reports

    def _replay_journal(
        self, campaign_id: str, path: Path
    ) -> tuple[Campaign | None, dict]:
        """Rebuild one campaign from its journal file."""
        registry = get_registry()
        scan = read_journal(path)
        journal = CampaignJournal(path)
        report: dict = {
            "campaign_id": campaign_id,
            "status": "recovered",
            "batches": 0,
            "claims": 0,
            "refreshes": 0,
            "snapshot_hits": 0,
            "torn": scan.torn,
        }
        if scan.torn:
            # The torn record was never acknowledged: drop it before
            # anything appends after it (a tear mid-file is corruption).
            journal.truncate_to(scan.valid_bytes)
            registry.counter(
                "streaming_torn_records_total",
                "Torn journal tail records dropped during recovery.",
            ).inc()
        if not scan.records:
            # Crash before the create record was durable: the campaign
            # was never acknowledged to exist.
            journal.delete()
            report["status"] = "empty"
            return None, report
        create = scan.records[0]
        config = config_from_payload(create["config"])
        if config_fingerprint(config) != create.get("config_fp"):
            journal.close()
            raise JournalError(
                f"{path.name}: the create record's config does not "
                f"round-trip (non-JSON config components?); refusing to "
                f"replay under different hyperparameters"
            )
        online = OnlineDATE(
            config,
            refresh_every=int(create["refresh_every"]),
            algorithm=str(create["algorithm"]),
        )
        if "seed" in create:
            online.ingest(batch_from_json(create["seed"]))
        applied_seq = 0
        for record in scan.records[1:]:
            if record["kind"] == "batch":
                batch = batch_from_record(record)
                online.ingest(batch)
                applied_seq = int(record["seq"])
                report["batches"] += 1
                report["claims"] += batch.n_claims
            else:  # refresh
                report["refreshes"] += 1
                if self._replay_refresh(online, record):
                    report["snapshot_hits"] += 1
        campaign = Campaign(
            campaign_id,
            online,
            journal=journal,
            created_at=float(create.get("created_at") or time.time()),
        )
        campaign.applied_seq = applied_seq
        campaign.claims_ingested = report["claims"]
        registry.counter(
            "streaming_recovered_batches_total",
            "Claim batches replayed from journals during recovery.",
        ).inc(report["batches"])
        return campaign, report

    def _replay_refresh(self, online: OnlineDATE, record: dict) -> bool:
        """Re-execute one journaled refresh; True = served from ledger.

        The banked snapshot is adopted only when the fingerprint of the
        *replayed* content equals the one the journal recorded at
        intent time — anything else (ledger GC'd, content divergence)
        recomputes, which is always correct because a refresh is a pure
        function of the campaign content.
        """
        if self.ledger is not None:
            key = _campaign_content_key(online)
            fp = snapshot_fingerprint(key)
            if fp == record.get("fingerprint"):
                payload = self.ledger.get_snapshot_fp(fp)
                if payload is not None:
                    online.adopt_refresh(truth_result_from_payload(payload))
                    return True
            result = online.refresh()
            self.ledger.put_snapshot(key, truth_result_to_payload(result))
            return False
        online.refresh()
        return False


def _campaign_content_key(online: OnlineDATE) -> dict:
    """The snapshot fingerprint inputs: config + full campaign content.

    Everything the refresh estimation reads is here — the DATE
    hyperparameters and every task, worker profile, and claim, in
    index order (the result's worker/task orderings follow it, so two
    campaigns that accumulated the same content in different arrival
    orders are distinct work units).  A ledger hit is therefore
    guaranteed to carry the refresh this exact campaign would compute.
    """
    dataset = online.dataset
    return {
        "date": online.config,
        "algorithm": online.algorithm,
        "tasks": dataset.tasks,
        "workers": dataset.workers,
        "claims": dataset.claims,
    }
