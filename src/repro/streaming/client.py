"""Retrying JSON client for the streaming service.

:class:`StreamingClient` wraps ``urllib`` with the retry discipline the
durable server is designed for (DESIGN.md §15): per-request timeouts,
exponential backoff with deterministic jitter on transient failures
(connection refused/reset, timeouts, 5xx — honouring ``Retry-After``
on a 503), and **client-assigned batch sequence numbers** so a retried
ingest is exactly-once: the seq is chosen once per batch and reused
across every retry, the server deduplicates anything at or below its
applied watermark, and a client with no counter for a campaign (a
restarted process resuming an existing stream) bootstraps from the
server's durable ``applied_seq`` instead of guessing 1 — guessing
would have every batch dropped as a duplicate.  A
crashed-and-recovered server therefore sees
the same batch stream as an uninterrupted one, whether the original
attempt died before the journal append (replay applies the retry) or
after it (replay already applied the batch; the retry is a no-op).

Everything is stdlib; the jitter source is a seeded ``random.Random``
so tests can pin the full retry schedule.
"""

from __future__ import annotations

import json
import random
import socket
import time
import urllib.error
import urllib.request
from urllib.parse import quote

from ..errors import ReproError
from ..obs.metrics import get_registry
from .ingest import ClaimBatch, batch_to_json

__all__ = ["ClientError", "ServerUnavailableError", "StreamingClient"]

#: Status codes worth retrying: the request may not have been processed
#: (503 explicitly promises it was not applied).
_RETRYABLE_STATUSES = frozenset({500, 502, 503, 504})


class ClientError(ReproError, RuntimeError):
    """A request failed with a non-retryable status (4xx)."""

    def __init__(self, method: str, url: str, status: int, detail: str):
        self.status = status
        self.detail = detail
        super().__init__(f"{method} {url} failed ({status}): {detail}")


class ServerUnavailableError(ReproError, RuntimeError):
    """Retries exhausted without reaching a healthy server."""

    def __init__(self, method: str, url: str, attempts: int, last_error: str):
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"{method} {url} failed after {attempts} attempts: {last_error}"
        )


class StreamingClient:
    """JSON client with timeouts, backoff + jitter, and exactly-once ingest.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running ``repro serve``.
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Extra attempts after the first (so ``retries=5`` sends at most
        6 requests).
    backoff:
        First retry delay in seconds; doubles each retry up to
        ``max_backoff``.
    jitter:
        Each delay is multiplied by ``1 + uniform(0, jitter)`` — spreads
        thundering-herd retries without ever shortening the wait.
    seed:
        Seeds the jitter source (deterministic retry schedules in
        tests).
    sleep:
        Injection point for the delay function (tests pass a recorder).
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 10.0,
        retries: int = 5,
        backoff: float = 0.25,
        max_backoff: float = 5.0,
        jitter: float = 0.5,
        seed: int = 0,
        sleep=time.sleep,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self.jitter = float(jitter)
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._next_seq: dict[str, int] = {}

    # -- transport -------------------------------------------------------

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One JSON request with the full retry discipline.

        Transient failures (connection errors, timeouts, 5xx) are
        retried with exponential backoff + jitter; a 503's
        ``Retry-After`` header stretches the delay when it asks for
        longer.  Non-retryable statuses raise :class:`ClientError`
        immediately; exhausted retries raise
        :class:`ServerUnavailableError`.
        """
        url = self.base_url + path
        data = json.dumps(payload).encode() if payload is not None else None
        last_error = "no attempt made"
        attempts = 0
        for attempt in range(self.retries + 1):
            attempts = attempt + 1
            retry_after = None
            try:
                request = urllib.request.Request(
                    url,
                    data=data,
                    method=method,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                    body = resp.read()
                    return json.loads(body) if body else {}
            except urllib.error.HTTPError as exc:
                detail = _error_detail(exc)
                if exc.code not in _RETRYABLE_STATUSES:
                    raise ClientError(method, url, exc.code, detail) from exc
                retry_after = _retry_after(exc)
                last_error = f"HTTP {exc.code}: {detail}"
            except (urllib.error.URLError, socket.timeout, ConnectionError, TimeoutError) as exc:
                reason = getattr(exc, "reason", exc)
                last_error = f"{type(exc).__name__}: {reason}"
            if attempt < self.retries:
                delay = self._delay(attempt, retry_after)
                get_registry().counter(
                    "streaming_client_retries_total",
                    "Requests retried by the streaming client.",
                    labels={"method": method},
                ).inc()
                self._sleep(delay)
        raise ServerUnavailableError(method, url, attempts, last_error)

    def _delay(self, attempt: int, retry_after: float | None) -> float:
        base = min(self.backoff * (2.0**attempt), self.max_backoff)
        delay = base * (1.0 + self._rng.uniform(0.0, self.jitter))
        if retry_after is not None:
            # The server knows how long its recovery needs; never wait
            # less than it asked for.
            delay = max(delay, retry_after)
        return delay

    # -- API surface -----------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def wait_ready(self, deadline: float = 30.0, poll: float = 0.1) -> dict:
        """Poll ``/healthz`` until the server answers and has finished
        recovering; raises :class:`ServerUnavailableError` at deadline."""
        start = time.monotonic()
        last_error = "never polled"
        while time.monotonic() - start < deadline:
            try:
                health = self.request("GET", "/healthz")
            except (ServerUnavailableError, ClientError) as exc:
                last_error = str(exc)
            else:
                if not health.get("recovering"):
                    return health
                last_error = "server still recovering"
            self._sleep(poll)
        raise ServerUnavailableError(
            "GET", self.base_url + "/healthz", 0, f"not ready: {last_error}"
        )

    def create_campaign(self, campaign_id: str, **payload) -> dict:
        body = {"campaign_id": campaign_id, **payload}
        reply = self.request("POST", "/campaigns", body)
        self._next_seq[campaign_id] = 1
        return reply

    def ingest(
        self, campaign_id: str, batch: ClaimBatch, *, seq: int | None = None
    ) -> dict:
        """Send one claim batch exactly once.

        The sequence number is assigned *before* the first attempt and
        reused verbatim on every retry — the whole point: if the first
        attempt was journaled but its acknowledgement lost, the retry
        answers ``{"duplicate": true}`` instead of double-applying.

        A client that did not create the campaign itself (a restarted
        process ingesting into an existing campaign) first fetches the
        campaign summary and resumes from ``applied_seq + 1`` —
        defaulting to 1 would sit at or below the server's watermark,
        and every batch would be acknowledged as a duplicate and
        silently dropped.
        """
        if seq is None:
            seq = self._next_seq.get(campaign_id)
            if seq is None:
                summary = self.snapshot(campaign_id)
                seq = int(summary.get("applied_seq", 0)) + 1
        payload = batch_to_json(batch, include_truth=True)
        payload["seq"] = seq
        reply = self.request(
            "POST", f"/campaigns/{quote(campaign_id, safe='')}/claims", payload
        )
        self._next_seq[campaign_id] = seq + 1
        return reply

    def truths(self, campaign_id: str) -> dict:
        return self.request(
            "GET", f"/campaigns/{quote(campaign_id, safe='')}/truths"
        )

    def refresh(self, campaign_id: str) -> dict:
        return self.request(
            "POST", f"/campaigns/{quote(campaign_id, safe='')}/refresh"
        )

    def snapshot(self, campaign_id: str) -> dict:
        return self.request("GET", f"/campaigns/{quote(campaign_id, safe='')}")

    def delete_campaign(self, campaign_id: str) -> dict:
        return self.request(
            "DELETE", f"/campaigns/{quote(campaign_id, safe='')}"
        )


def _error_detail(exc: urllib.error.HTTPError) -> str:
    try:
        return json.loads(exc.read()).get("error", "")
    except Exception:
        return ""


def _retry_after(exc: urllib.error.HTTPError) -> float | None:
    value = exc.headers.get("Retry-After") if exc.headers else None
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        return None
