"""Write-ahead ingest journal: the durability layer of the streaming tier.

Every journaled campaign owns one append-only JSONL file under the
store's ``journal_dir``.  A record is written — flushed and fsync'd —
*before* the estimator applies it, so the file is a classic write-ahead
log: whatever the in-memory store acknowledged is on disk first, and a
killed process replays the journal back to the exact pre-crash state
(DESIGN.md §15).

Record framing
--------------
Each line is a self-verifying envelope around one compact-JSON record::

    {"len": 123, "sha": "<sha256[:16] of record text>", "record": {...}}\n

The ``record`` text is embedded verbatim, so a reader re-serializes the
parsed object with the same compact encoding and checks both the length
and the digest.  A record is accepted only when the line is complete
(newline-terminated), parses, and both checks pass.  A record that
fails any of this at the **end** of the file is a *torn tail* — the
expected debris of a crash mid-append — and recovery drops it and
truncates the file; the same failure anywhere *before* the end is
corruption and raises :class:`JournalCorruptError` (an append-only file
never has a legitimate hole).

Record kinds (``record["kind"]``)
---------------------------------
- ``create`` (seq 0) — campaign registration: config (JSON-safe fields
  + the canonical fingerprint of the full config, verified on replay),
  algorithm, refresh cadence, and the optional seed batch of
  pre-published tasks/workers.
- ``batch`` (seq 1..n, strictly increasing) — one
  :class:`~repro.streaming.ingest.ClaimBatch`, claims in arrival order.
  The sequence number doubles as the exactly-once dedup key: a retried
  ingest carrying an already-applied ``seq`` is acknowledged without
  being re-applied.
- ``refresh`` — an explicit full-refresh intent (``after_seq`` names
  the last applied batch; does not consume a sequence number) plus the
  snapshot fingerprint of the campaign content at that point, which is
  what lets recovery adopt the run ledger's banked refresh instead of
  recomputing it — when, and only when, the fingerprint still matches.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, fields as dc_fields
from pathlib import Path
from urllib.parse import quote, unquote

from ..artifacts.fingerprint import fingerprint
from ..core.config import DateConfig
from ..errors import ReproError
from ..types import Task, WorkerProfile
from .faults import InjectedCrash, get_injector
from .ingest import ClaimBatch, batch_from_json, batch_to_json

__all__ = [
    "CampaignJournal",
    "JournalCorruptError",
    "JournalError",
    "JournalScan",
    "JournalWriteError",
    "batch_record",
    "config_from_payload",
    "config_to_payload",
    "create_record",
    "fsync_dir",
    "journal_path",
    "list_journals",
    "read_journal",
    "refresh_record",
]

_SUFFIX = ".wal.jsonl"


class JournalError(ReproError, RuntimeError):
    """A journal operation failed."""


class JournalCorruptError(JournalError):
    """A journal is damaged beyond the tolerated torn tail."""


class JournalWriteError(JournalError):
    """An append could not be made durable (disk error).

    The server maps this to ``503 Retry-After`` — an ingest whose
    journal write failed was never acknowledged and must not be applied.
    """


# ----------------------------------------------------------------------
# Record framing
# ----------------------------------------------------------------------


def _frame(record: dict) -> bytes:
    """One self-verifying journal line for ``record``."""
    body = json.dumps(record, separators=(",", ":"))
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]
    return (
        f'{{"len":{len(body)},"sha":"{digest}","record":{body}}}\n'
    ).encode("utf-8")


def _validate_line(line: bytes) -> dict:
    """Decode one complete journal line; raises ``ValueError`` if invalid."""
    envelope = json.loads(line)
    if not isinstance(envelope, dict):
        raise ValueError("envelope is not an object")
    record = envelope.get("record")
    if not isinstance(record, dict):
        raise ValueError("envelope carries no record object")
    body = json.dumps(record, separators=(",", ":"))
    if envelope.get("len") != len(body):
        raise ValueError("record length mismatch")
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]
    if envelope.get("sha") != digest:
        raise ValueError("record digest mismatch")
    return record


@dataclass(frozen=True)
class JournalScan:
    """What one pass over a journal file found.

    ``valid_bytes`` is the offset of the first byte past the last valid
    record — the length recovery truncates a torn file down to.
    """

    path: Path
    records: tuple[dict, ...]
    valid_bytes: int
    torn: bool


def read_journal(path: str | Path) -> JournalScan:
    """Scan a journal file, tolerating (only) a torn final record."""
    path = Path(path)
    data = path.read_bytes()
    records: list[dict] = []
    valid = 0
    torn = False
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            # Unterminated final line: the classic crash-mid-append tear.
            torn = True
            break
        line = data[offset:newline]
        try:
            record = _validate_line(line)
        except ValueError as exc:
            if newline + 1 >= len(data):
                # Complete-looking but invalid *final* line — a tear that
                # happened to land on a newline byte of the payload.
                torn = True
                break
            raise JournalCorruptError(
                f"{path.name}: invalid record at byte {offset} with valid "
                f"records after it ({exc}) — the journal is corrupt, not torn"
            ) from exc
        records.append(record)
        valid = newline + 1
        offset = newline + 1
    _check_sequence(path, records)
    return JournalScan(
        path=path, records=tuple(records), valid_bytes=valid, torn=torn
    )


def _check_sequence(path: Path, records: tuple[dict, ...] | list[dict]) -> None:
    """Enforce the record grammar: one create first, batch seqs monotone."""
    if not records:
        return
    if records[0].get("kind") != "create":
        raise JournalCorruptError(
            f"{path.name}: first record is {records[0].get('kind')!r}, "
            f"expected 'create'"
        )
    last_seq = 0
    for position, record in enumerate(records[1:], start=1):
        kind = record.get("kind")
        if kind == "create":
            raise JournalCorruptError(
                f"{path.name}: duplicate create record at position {position}"
            )
        if kind == "batch":
            seq = record.get("seq")
            if not isinstance(seq, int) or seq <= last_seq:
                raise JournalCorruptError(
                    f"{path.name}: batch seq {seq!r} at position {position} "
                    f"does not increase (last applied {last_seq})"
                )
            last_seq = seq
        elif kind != "refresh":
            raise JournalCorruptError(
                f"{path.name}: unknown record kind {kind!r} at position "
                f"{position}"
            )


# ----------------------------------------------------------------------
# Record builders (and the config codec they need)
# ----------------------------------------------------------------------

#: DateConfig fields the journal can round-trip as plain JSON.  The
#: remaining fields (``false_values``, ``similarity``) are objects; the
#: create record stores the canonical fingerprint of the *full* config,
#: and recovery verifies the rebuilt config reproduces it — a campaign
#: configured with non-default objects fails recovery loudly instead of
#: silently replaying under different hyperparameters.
_CONFIG_FIELDS = (
    "copy_prob_r",
    "initial_accuracy",
    "prior_alpha",
    "max_iterations",
    "accuracy_clamp",
    "granularity",
    "ordering",
    "discount_mode",
    "discounted_posterior",
    "similarity_weight",
    "backend",
    "stable_dependence",
    "intra_workers",
)


def config_to_payload(config: DateConfig) -> dict:
    """JSON-safe DateConfig fields (see :data:`_CONFIG_FIELDS`)."""
    payload = {}
    for name in _CONFIG_FIELDS:
        value = getattr(config, name)
        payload[name] = list(value) if isinstance(value, tuple) else value
    return payload


def config_from_payload(payload: dict) -> DateConfig:
    """Rebuild a DateConfig from its journal payload."""
    known = {f.name for f in dc_fields(DateConfig)}
    changes = {}
    for name, value in payload.items():
        if name not in known:
            raise JournalCorruptError(
                f"create record carries unknown config field {name!r}"
            )
        if name == "accuracy_clamp":
            value = tuple(value)
        changes[name] = value
    return DateConfig(**changes)


def config_fingerprint(config: DateConfig) -> str:
    """Canonical fingerprint of the full config (objects included)."""
    return fingerprint({"kind": "journal-config", "config": config})


def create_record(
    campaign_id: str,
    *,
    config: DateConfig,
    algorithm: str,
    refresh_every: int,
    created_at: float,
    seed_tasks: tuple[Task, ...] = (),
    seed_workers: tuple[WorkerProfile, ...] = (),
) -> dict:
    """The seq-0 campaign registration record."""
    record = {
        "kind": "create",
        "seq": 0,
        "campaign_id": campaign_id,
        "algorithm": algorithm,
        "refresh_every": refresh_every,
        "created_at": created_at,
        "config": config_to_payload(config),
        "config_fp": config_fingerprint(config),
    }
    if seed_tasks or seed_workers:
        record["seed"] = batch_to_json(
            ClaimBatch(tasks=seed_tasks, workers=seed_workers),
            include_truth=True,
            sort_claims=False,
        )
    return record


def batch_record(seq: int, batch: ClaimBatch) -> dict:
    """One ingested claim batch under its exactly-once sequence number.

    Claims keep their arrival order (``sort_claims=False``) so a replay
    feeds the estimator byte-for-byte the batch it saw live.
    """
    return {
        "kind": "batch",
        "seq": seq,
        "batch": batch_to_json(batch, include_truth=True, sort_claims=False),
    }


def refresh_record(after_seq: int, snapshot_fp: str) -> dict:
    """An explicit full-refresh intent after batch ``after_seq``."""
    return {
        "kind": "refresh",
        "after_seq": after_seq,
        "fingerprint": snapshot_fp,
    }


def batch_from_record(record: dict) -> ClaimBatch:
    """The :class:`ClaimBatch` a ``batch`` record carries."""
    return batch_from_json(record["batch"])


# ----------------------------------------------------------------------
# File naming
# ----------------------------------------------------------------------


def journal_path(journal_dir: str | Path, campaign_id: str) -> Path:
    """The journal file of one campaign (id percent-encoded for safety)."""
    return Path(journal_dir) / (quote(campaign_id, safe="") + _SUFFIX)


def fsync_dir(path: str | Path) -> None:
    """Fsync a directory so a rename/creation inside it is durable.

    Best-effort: filesystems that refuse directory fds (or platforms
    without them) degrade to the pre-fsync durability, never an error.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def list_journals(journal_dir: str | Path) -> list[tuple[str, Path]]:
    """``(campaign_id, path)`` for every journal file, sorted by id."""
    base = Path(journal_dir)
    if not base.is_dir():
        return []
    found = [
        (unquote(path.name[: -len(_SUFFIX)]), path)
        for path in sorted(base.glob(f"*{_SUFFIX}"))
    ]
    return found


# ----------------------------------------------------------------------
# The writer
# ----------------------------------------------------------------------


class CampaignJournal:
    """Append-only, fsync'd writer over one campaign's journal file.

    Appends go through the process fault injector (inert outside the
    test harness): ``journal.pre_append`` fires before any bytes,
    ``journal.mid_append`` may cut the write short (a torn record stays
    on disk, exactly like a real crash), ``journal.post_append`` fires
    after the fsync — the record is durable, the estimator has not yet
    applied it.

    A *real* ``OSError`` during the write rolls the file back to the
    pre-append length and surfaces as :class:`JournalWriteError`; if
    even the rollback fails the journal marks itself failed and every
    later append is refused — the server degrades to 503s instead of
    acknowledging ingests it cannot make durable.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._file = None
        self._size: int | None = None
        self._failed = False

    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def size(self) -> int:
        """Current journal length in bytes — the rollback point callers
        capture before an append they may need to undo."""
        if self._size is None:
            self._handle()
        return self._size

    def _handle(self):
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "ab")
            self._size = self._file.tell()
        return self._file

    def append(self, record: dict) -> None:
        """Frame, write, flush, and fsync one record (write-ahead)."""
        if self._failed:
            raise JournalWriteError(
                f"journal {self.path.name} is failed (an earlier write "
                f"error could not be rolled back); refusing to append"
            )
        injector = get_injector()
        data = _frame(record)
        start: int | None = None
        try:
            injector.fire("journal.pre_append")
            handle = self._handle()
            start = self._size
            cut = injector.partial_cut("journal.mid_append", len(data))
            if cut is not None:
                # Simulated crash mid-write: persist the torn prefix the
                # way a dying kernel would, then "die".  No rollback —
                # recovery is what cleans this up.
                handle.write(data[:cut])
                handle.flush()
                os.fsync(handle.fileno())
                raise InjectedCrash("journal.mid_append")
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        except OSError as exc:
            self._rollback(start)
            raise JournalWriteError(
                f"journal append to {self.path.name} failed: {exc}"
            ) from exc
        self._size = start + len(data)
        injector.fire("journal.post_append")

    def _rollback(self, start: int | None) -> None:
        if self._file is None or start is None:
            return
        try:
            self._file.truncate(start)
            self._file.seek(start)
        except OSError:
            self._failed = True

    def truncate_to(self, size: int) -> None:
        """Shrink the file to ``size`` bytes — durably.

        Used to heal a torn tail during recovery and to roll back an
        appended record whose apply was rejected.  The fsync matters in
        the rollback case: the dropped record was already durable, so
        without it a crash could resurrect a batch the client was told
        was refused.
        """
        handle = self._handle()
        handle.truncate(size)
        handle.seek(size)
        os.fsync(handle.fileno())
        self._size = size

    def rollback_to(self, size: int) -> None:
        """Durably undo appends past ``size``; failure poisons the journal.

        This is the undo path for a record whose apply was refused
        *after* the append was already fsync'd.  If even the truncate
        fails, the refused record cannot be removed — the journal marks
        itself failed so no later append buries it under acknowledged
        records, and the server degrades to 503s.
        """
        try:
            self.truncate_to(size)
        except OSError as exc:
            self._failed = True
            raise JournalWriteError(
                f"journal rollback of {self.path.name} failed: {exc}"
            ) from exc

    def rename_to(self, path: str | Path) -> None:
        """Atomically move the journal file to ``path``.

        ``os.replace`` both links the journal at its final name and
        clobbers any stale ancestor file in one step; the open handle
        keeps following the inode, so appends continue seamlessly.
        """
        path = Path(path)
        os.replace(self.path, path)
        self.path = path

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            try:
                self.flush()
            except OSError:
                pass
            self._file.close()
            self._file = None

    def delete(self) -> None:
        """Close and remove the journal file (durable campaign delete)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
