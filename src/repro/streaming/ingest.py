"""Claim batches: the unit of streaming ingestion.

A :class:`ClaimBatch` is one append-only delta against a campaign —
newly published tasks, newly registered workers, and new ``(worker,
task) -> value`` claims.  Batches are validated *against the campaign
index* at ingest time (:meth:`repro.core.indexing.DatasetIndex.extended`
rejects unknown references and duplicate claims); the batch itself only
checks local well-formedness so it can be built far from the store —
for example from a JSON request body or a CSV replay.

:func:`replay_batches` turns an archived dataset into a batch sequence
(tasks published in dataset order, workers registered on first claim),
which is how the streaming benchmark and ``repro ingest`` drive the
online engine from recorded campaigns.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from ..errors import DataFormatError
from ..types import Dataset, Task, WorkerProfile

__all__ = [
    "ClaimBatch",
    "batch_from_json",
    "batch_to_json",
    "replay_batches",
    "task_from_spec",
    "worker_from_spec",
]


@dataclass(frozen=True)
class ClaimBatch:
    """One append-only delta of a streaming campaign.

    Parameters
    ----------
    claims:
        ``(worker_id, task_id) -> value`` for the new claims.  May
        reference tasks/workers already known to the campaign or ones
        introduced by this batch.
    tasks:
        Tasks published with this batch (ids must be new to the
        campaign).
    workers:
        Workers registering with this batch (ids must be new).
    """

    claims: Mapping[tuple[str, str], str] = field(default_factory=dict)
    tasks: tuple[Task, ...] = ()
    workers: tuple[WorkerProfile, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "claims", dict(self.claims))
        object.__setattr__(self, "tasks", tuple(self.tasks))
        object.__setattr__(self, "workers", tuple(self.workers))
        task_ids = [t.task_id for t in self.tasks]
        if len(set(task_ids)) != len(task_ids):
            raise DataFormatError("duplicate task ids within one batch")
        worker_ids = [w.worker_id for w in self.workers]
        if len(set(worker_ids)) != len(worker_ids):
            raise DataFormatError("duplicate worker ids within one batch")
        for key, value in self.claims.items():
            if (
                not isinstance(key, tuple)
                or len(key) != 2
                or not all(isinstance(part, str) and part for part in key)
            ):
                raise DataFormatError(
                    f"claim key must be a (worker_id, task_id) pair, got {key!r}"
                )
            if not isinstance(value, str) or not value:
                raise DataFormatError(
                    f"claim {key}: value must be a non-empty string"
                )

    @property
    def n_claims(self) -> int:
        return len(self.claims)

    @property
    def is_empty(self) -> bool:
        return not (self.claims or self.tasks or self.workers)


def replay_batches(dataset: Dataset, n_batches: int) -> list[ClaimBatch]:
    """Split an archived campaign into a streaming batch sequence.

    Tasks are published in dataset order, sliced into ``n_batches``
    near-equal groups; each batch carries all claims on its tasks, and
    every worker registers with the first batch it claims in (copy
    sources referencing workers not yet registered are deferred to the
    profile's registration batch — the extension path validates sources
    against already-known workers, so the batch that introduces a copier
    must follow its sources or carry them).

    To keep every batch self-consistent, workers are registered in
    dataset order the first time *any* of their claims (or any copier
    pointing at them) appears.
    """
    if n_batches < 1:
        raise ValueError(f"n_batches must be >= 1, got {n_batches}")
    n_batches = min(n_batches, max(dataset.n_tasks, 1))
    boundaries = [
        round(k * dataset.n_tasks / n_batches) for k in range(n_batches + 1)
    ]
    worker_order = [w.worker_id for w in dataset.workers]
    registered: set[str] = set()
    batches: list[ClaimBatch] = []
    by_task = dataset.claims_by_task
    for k in range(n_batches):
        tasks = dataset.tasks[boundaries[k] : boundaries[k + 1]]
        claims = {
            (worker_id, task.task_id): value
            for task in tasks
            for worker_id, value in by_task[task.task_id].items()
        }
        # Register claimants plus, transitively, the sources their
        # profiles point at (a copier must not precede its source).
        needed = {worker_id for (worker_id, _) in claims} - registered
        frontier = list(needed)
        while frontier:
            worker = dataset.worker_by_id[frontier.pop()]
            for source in worker.sources:
                if source not in registered and source not in needed:
                    needed.add(source)
                    frontier.append(source)
        if k == n_batches - 1:
            needed |= set(worker_order) - registered
        workers = tuple(
            dataset.worker_by_id[worker_id]
            for worker_id in worker_order
            if worker_id in needed
        )
        registered |= needed
        batches.append(ClaimBatch(claims=claims, tasks=tasks, workers=workers))
    return batches


# ----------------------------------------------------------------------
# JSON wire format (shared by the HTTP server and the replay client)
# ----------------------------------------------------------------------


def coerce_number(spec: Mapping, key: str, default: float) -> float:
    """Read an optional numeric field, mapping junk to DataFormatError."""
    value = spec.get(key, default)
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise DataFormatError(
            f"field {key!r} must be a number, got {value!r}"
        ) from exc


def task_from_spec(spec: Mapping) -> Task:
    """Build a :class:`Task` from its JSON object form."""
    if not isinstance(spec, Mapping) or "task_id" not in spec:
        raise DataFormatError(f"task spec must be an object with task_id: {spec!r}")
    return Task(
        task_id=str(spec["task_id"]),
        domain=tuple(str(v) for v in spec.get("domain", ())),
        requirement=coerce_number(spec, "requirement", 1.0),
        value=coerce_number(spec, "value", 0.0),
        truth=str(spec["truth"]) if spec.get("truth") is not None else None,
    )


def worker_from_spec(spec: Mapping) -> WorkerProfile:
    """Build a :class:`WorkerProfile` from its JSON object form."""
    if not isinstance(spec, Mapping) or "worker_id" not in spec:
        raise DataFormatError(
            f"worker spec must be an object with worker_id: {spec!r}"
        )
    return WorkerProfile(
        worker_id=str(spec["worker_id"]),
        cost=coerce_number(spec, "cost", 1.0),
        reliability=coerce_number(spec, "reliability", 0.7),
        is_copier=bool(spec.get("is_copier", False)),
        sources=tuple(str(s) for s in spec.get("sources", ())),
        copy_prob=coerce_number(spec, "copy_prob", 0.0),
    )


def batch_from_json(payload: Mapping) -> ClaimBatch:
    """Decode ``{"tasks": [...], "workers": [...], "claims": [...]}``.

    Each claim is ``{"worker": ..., "task": ..., "value": ...}``.
    Raises :class:`~repro.errors.DataFormatError` on malformed input so
    the server maps it to a 400 response.
    """
    if not isinstance(payload, Mapping):
        raise DataFormatError("batch payload must be a JSON object")
    claims: dict[tuple[str, str], str] = {}
    for row in payload.get("claims", ()):
        if not isinstance(row, Mapping) or not {"worker", "task", "value"} <= set(row):
            raise DataFormatError(
                f"claim row must have worker/task/value fields: {row!r}"
            )
        key = (str(row["worker"]), str(row["task"]))
        if key in claims:
            raise DataFormatError(
                f"duplicate claim in batch: worker {key[0]!r} on task {key[1]!r}"
            )
        claims[key] = str(row["value"])
    return ClaimBatch(
        claims=claims,
        tasks=tuple(task_from_spec(s) for s in payload.get("tasks", ())),
        workers=tuple(worker_from_spec(s) for s in payload.get("workers", ())),
    )


def batch_to_json(
    batch: ClaimBatch,
    *,
    include_truth: bool = False,
    sort_claims: bool = True,
) -> dict:
    """Encode a batch into the wire format accepted by the server.

    ``sort_claims=False`` keeps the batch's claim arrival order — the
    write-ahead journal needs it so a replayed batch builds the same
    claims dict the estimator saw live (dict order feeds the index
    extension); the HTTP wire format keeps the sorted default for
    stable, diffable request bodies.
    """
    tasks = []
    for task in batch.tasks:
        spec: dict = {"task_id": task.task_id}
        if task.domain:
            spec["domain"] = list(task.domain)
        spec["requirement"] = task.requirement
        spec["value"] = task.value
        if include_truth and task.truth is not None:
            spec["truth"] = task.truth
        tasks.append(spec)
    workers = [
        {
            "worker_id": worker.worker_id,
            "cost": worker.cost,
            "reliability": worker.reliability,
            "is_copier": worker.is_copier,
            "sources": list(worker.sources),
            "copy_prob": worker.copy_prob,
        }
        for worker in batch.workers
    ]
    items = sorted(batch.claims.items()) if sort_claims else batch.claims.items()
    claims = [
        {"worker": worker_id, "task": task_id, "value": value}
        for (worker_id, task_id), value in items
    ]
    return {"tasks": tasks, "workers": workers, "claims": claims}
