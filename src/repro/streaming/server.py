"""Stdlib HTTP/JSON front end for the streaming truth-discovery service.

``repro serve`` binds :class:`StreamingApp` — a transport-free request
dispatcher over a :class:`~repro.streaming.campaign.CampaignStore` — to
a ``ThreadingHTTPServer``.  Keeping the dispatcher free of socket code
means the whole API surface is unit-testable as plain function calls,
and the handler class only parses/serializes JSON.

Routes (all bodies JSON unless noted):

- ``GET  /health`` — liveness + campaign count;
- ``GET  /healthz`` — liveness + uptime + recovery state
  (Kubernetes-style probe; ``status`` is ``"recovering"`` while a
  journal replay is still pending);
- ``GET  /metrics`` — Prometheus text exposition of the process
  metrics registry (plain text, not JSON);
- ``GET  /campaigns`` — list campaign summaries;
- ``POST /campaigns`` — create: ``{"campaign_id": ..., "tasks": [...],
  "workers": [...], "config": {...}, "refresh_every": N}``;
- ``GET  /campaigns/<id>`` — summary + current estimates;
- ``DELETE /campaigns/<id>`` — evict (a durable delete: the campaign's
  journal goes with it);
- ``POST /campaigns/<id>/claims`` — ingest a claim batch
  (``{"tasks": [...], "workers": [...], "claims": [{"worker": ...,
  "task": ..., "value": ...}], "seq": N}``; the optional ``seq`` is the
  client-assigned batch sequence number that makes retries exactly-once
  — a replayed duplicate answers 200 with ``"duplicate": true``);
- ``GET  /campaigns/<id>/truths`` — current truths + confidence;
- ``GET  /campaigns/<id>/workers`` — worker reputations;
- ``POST /campaigns/<id>/refresh`` — force a full re-estimation;
- ``POST /campaigns/<id>/auction`` — run IMC2 (``{"cap": 0.8,
  "backend": "vectorized"}``; ``backend`` selects the auction engine,
  same payments either way).

Errors map onto status codes: malformed input and infeasible auctions
are 400, unknown campaigns/routes 404, duplicate campaigns 409, and
degradation is 503 with a ``Retry-After`` header — either the campaign
is still replaying its journal, or the journal disk rejected a write
(the batch was NOT applied; retrying the same ``seq`` is safe).
"""

from __future__ import annotations

import json
import signal
import threading
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import unquote

from ..auction.config import AuctionConfig
from ..core.config import DateConfig
from ..errors import ReproError
from ..obs.exposition import CONTENT_TYPE, render_prometheus
from ..obs.logging import get_logger
from ..obs.metrics import get_registry
from .campaign import (
    CampaignRecoveringError,
    CampaignStore,
    DuplicateCampaignError,
    UnknownCampaignError,
)
from .ingest import batch_from_json, coerce_number, task_from_spec, worker_from_spec
from .journal import JournalWriteError

__all__ = ["StreamingApp", "config_from_spec", "make_server", "serve"]

#: Short aliases accepted in JSON config objects next to the full
#: DateConfig field names (matching the CLI flags).
_CONFIG_ALIASES = {
    "r": "copy_prob_r",
    "alpha": "prior_alpha",
    "epsilon": "initial_accuracy",
}

#: Per-connection socket timeout: a stalled peer (or a half-open
#: connection left by a killed client) releases its handler thread
#: instead of pinning it forever.
DEFAULT_REQUEST_TIMEOUT = 30.0


def config_from_spec(spec: dict | None, base: DateConfig) -> DateConfig:
    """Evolve ``base`` with the JSON config object ``spec``."""
    if not spec:
        return base
    if not isinstance(spec, dict):
        raise ReproError(f"config must be a JSON object, got {spec!r}")
    changes = {}
    for key, value in spec.items():
        field_name = _CONFIG_ALIASES.get(key, key)
        if field_name == "accuracy_clamp" and isinstance(value, list):
            value = tuple(value)
        changes[field_name] = value
    try:
        return base.evolve(**changes)
    except TypeError as exc:
        # Unknown field names and non-numeric values both land here.
        raise ReproError(f"invalid config: {exc}") from exc


def _route_template(parts: list[str]) -> str:
    """Low-cardinality route label: campaign ids collapse to ``{id}``."""
    if len(parts) >= 2 and parts[0] == "campaigns":
        return "/".join(["/campaigns/{id}"] + parts[2:])
    return "/" + "/".join(parts)


class StreamingApp:
    """Transport-free dispatcher: ``(method, path, payload) -> (status, body)``."""

    def __init__(self, store: CampaignStore | None = None):
        # `store or ...` would discard a configured-but-empty store:
        # CampaignStore defines __len__, so a fresh store is falsy.
        self.store = store if store is not None else CampaignStore()
        self.started_at = time.time()

    def handle(self, method: str, path: str, payload: dict | None = None):
        """Dispatch one request; returns ``(status_code, body)``.

        The path is split on ``/`` with the query string dropped and
        each segment percent-decoded, so campaign ids round-trip
        through clients that quote them.  The body is a JSON-safe dict
        for every route except ``/metrics``, whose body is the
        exposition text (``str``).  Request latency and counts land in
        the registry per (method, route template, status).

        A 503 body carries ``retry_after`` (seconds); the HTTP handler
        surfaces it as a ``Retry-After`` header.
        """
        path = path.partition("?")[0]
        parts = [unquote(part) for part in path.split("/") if part]
        registry = get_registry()
        start = time.perf_counter() if registry.enabled else 0.0
        if payload is not None and not isinstance(payload, dict):
            status, body = 400, {"error": "request body must be a JSON object"}
        else:
            try:
                status, body = self._route(method.upper(), parts, payload or {})
            except UnknownCampaignError as exc:
                status, body = 404, {
                    "error": str(exc.args[0] if exc.args else exc)
                }
            except DuplicateCampaignError as exc:
                status, body = 409, {"error": str(exc)}
            except CampaignRecoveringError as exc:
                status, body = 503, {
                    "error": str(exc),
                    "retry_after": exc.retry_after,
                }
            except JournalWriteError as exc:
                # The batch was NOT applied (append rolls back or the
                # journal refuses): the client may retry the same seq.
                status, body = 503, {"error": str(exc), "retry_after": 1.0}
            except ReproError as exc:
                status, body = 400, {"error": str(exc)}
        if registry.enabled:
            labels = {
                "method": method.upper(),
                "route": _route_template(parts),
                "status": str(status),
            }
            registry.counter(
                "http_requests_total", "HTTP requests served.", labels=labels
            ).inc()
            registry.timer(
                "http_request_seconds",
                "Request latency by method, route template, and status.",
                labels=labels,
            ).observe(time.perf_counter() - start)
        return status, body

    def _route(self, method: str, parts: list[str], payload: dict):
        if parts == ["metrics"] and method == "GET":
            return 200, render_prometheus(get_registry())
        if parts == ["healthz"] and method == "GET":
            recovering = self.store.recovering
            return 200, {
                "status": "recovering" if recovering else "ok",
                "recovering": recovering,
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "campaigns": len(self.store),
                "journaled": self.store.journal_dir is not None,
                "metrics_enabled": get_registry().enabled,
            }
        if parts in ([], ["health"]) and method == "GET":
            from .. import __version__  # deferred: repro/__init__ imports us

            return 200, {
                "status": "ok",
                "version": __version__,
                "campaigns": len(self.store),
            }
        if parts == ["campaigns"]:
            if method == "GET":
                return 200, {"campaigns": self.store.list_campaigns()}
            if method == "POST":
                return self._create(payload)
        if len(parts) >= 2 and parts[0] == "campaigns":
            campaign_id = parts[1]
            rest = parts[2:]
            if not rest:
                if method == "GET":
                    return 200, self.store.snapshot(campaign_id)
                if method == "DELETE":
                    self.store.evict(campaign_id)
                    return 200, {"evicted": campaign_id}
            if rest == ["claims"] and method == "POST":
                return self._ingest(campaign_id, payload)
            if rest == ["truths"] and method == "GET":
                return 200, self.store.truths(campaign_id)
            if rest == ["workers"] and method == "GET":
                return 200, {
                    "worker_accuracy": self.store.worker_accuracy(campaign_id)
                }
            if rest == ["refresh"] and method == "POST":
                result = self.store.estimate(campaign_id, refresh=True)
                return 200, {
                    "truths": result.truths,
                    "iterations": result.iterations,
                    "converged": result.converged,
                }
            if rest == ["auction"] and method == "POST":
                return self._auction(campaign_id, payload)
        return 404, {"error": f"no route for {method} /{'/'.join(parts)}"}

    def _create(self, payload: dict):
        if not isinstance(payload, dict) or not payload.get("campaign_id"):
            return 400, {"error": "create payload must carry a campaign_id"}
        refresh_every = payload.get("refresh_every")
        if refresh_every is not None:
            refresh_every = int(coerce_number(payload, "refresh_every", 0))
        algorithm = payload.get("algorithm")
        if algorithm is not None:
            algorithm = str(algorithm)
        campaign = self.store.create(
            str(payload["campaign_id"]),
            tasks=tuple(task_from_spec(s) for s in payload.get("tasks", ())),
            workers=tuple(worker_from_spec(s) for s in payload.get("workers", ())),
            config=config_from_spec(
                payload.get("config"), self.store.default_config
            ),
            refresh_every=refresh_every,
            algorithm=algorithm,
        )
        return 201, campaign.describe()

    def _ingest(self, campaign_id: str, payload: dict):
        seq = payload.get("seq")
        if seq is not None:
            seq = int(coerce_number(payload, "seq", 0))
        batch = batch_from_json(payload)
        update = self.store.ingest(campaign_id, batch, seq=seq)
        if update is None:
            # The batch with this seq was already journaled and applied
            # — the retry of an ingest whose acknowledgement was lost.
            return 200, {"duplicate": True, "seq": seq}
        return 200, asdict(update)

    def _auction(self, campaign_id: str, payload: dict):
        cap = None
        if payload.get("cap") is not None:
            cap = coerce_number(payload, "cap", 0.0)
        auction_config = None
        if payload.get("backend") is not None:
            auction_config = AuctionConfig(backend=payload["backend"])
        outcome = self.store.auction(
            campaign_id, requirement_cap=cap, auction_config=auction_config
        )
        auction = outcome.auction
        return 200, {
            "winners": list(auction.winner_ids),
            "payments": {w: auction.payments[w] for w in auction.winner_ids},
            "social_cost": auction.social_cost,
            "total_payment": auction.total_payment,
            "platform_utility": outcome.platform_utility,
            "social_welfare": outcome.social_welfare,
        }


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON-over-HTTP adapter around a :class:`StreamingApp`."""

    app: StreamingApp  # set by make_server on the subclass
    quiet = True
    protocol_version = "HTTP/1.1"
    timeout = DEFAULT_REQUEST_TIMEOUT  # per-connection socket timeout

    def _respond(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            self._send(400, {"error": f"invalid JSON body: {exc}"})
            return
        try:
            status, body = self.app.handle(self.command, self.path, payload)
        except Exception as exc:  # last resort: never drop the connection
            status, body = 500, {"error": f"internal error: {exc}"}
        self._send(status, body)

    def _send(self, status: int, body: dict | str) -> None:
        # /metrics returns exposition text; everything else is JSON.
        if isinstance(body, str):
            data = body.encode("utf-8")
            content_type = CONTENT_TYPE
        else:
            data = json.dumps(body).encode()
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if status == 503:
            retry_after = 1.0
            if isinstance(body, dict):
                retry_after = float(body.get("retry_after") or 1.0)
            self.send_header("Retry-After", str(max(1, round(retry_after))))
        self.end_headers()
        self.wfile.write(data)

    def handle_timeout(self) -> None:  # pragma: no cover - needs stalled peer
        self.close_connection = True

    do_GET = do_POST = do_DELETE = _respond

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            get_logger("repro.http").info(
                format % args, client=self.address_string()
            )


class GracefulHTTPServer(ThreadingHTTPServer):
    """Threading server whose ``server_close`` drains in-flight requests.

    ``daemon_threads=False`` + ``block_on_close=True`` make
    ``server_close()`` join every live handler thread, so a graceful
    shutdown answers the requests it already accepted before the
    process exits — nothing is dropped mid-body.
    """

    daemon_threads = False
    block_on_close = True


def make_server(
    app: StreamingApp,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quiet: bool = True,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
) -> ThreadingHTTPServer:
    """Bind ``app`` to a threading HTTP server (port 0 = ephemeral)."""
    handler = type(
        "BoundHandler",
        (_Handler,),
        {"app": app, "quiet": quiet, "timeout": request_timeout},
    )
    return GracefulHTTPServer((host, port), handler)


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    store: CampaignStore | None = None,
    quiet: bool = False,
    install_signal_handlers: bool = True,
) -> None:
    """Run the service until interrupted (the ``repro serve`` entry).

    Serving enables the process metrics registry — a live service
    without ``/metrics`` data would be pointless — and logs structured
    JSON lines instead of bare prints.

    SIGTERM and SIGINT shut down gracefully: the listener stops
    accepting, in-flight requests drain to completion, every campaign
    journal is flushed and closed, and the process exits 0.  (A
    ``kill -9`` skips all of that by design — which is exactly what
    the write-ahead journal exists to survive.)
    """
    get_registry().enable()
    log = get_logger("repro.serve")
    app = StreamingApp(store)
    server = make_server(app, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    log.info(
        "streaming service listening",
        url=f"http://{bound_host}:{bound_port}",
        host=str(bound_host),
        port=int(bound_port),
    )
    # Keep the one human-facing line on stdout: scripts (and the CI
    # smoke job) grep it to learn the bound ephemeral port.
    print(f"repro streaming service on http://{bound_host}:{bound_port}", flush=True)

    stop_requested = threading.Event()

    def _request_stop(signum, frame):  # pragma: no cover - signal path
        if stop_requested.is_set():
            return
        stop_requested.set()
        log.info("shutdown requested", signal=int(signum))
        # shutdown() blocks until serve_forever returns — calling it
        # from the signal handler (which runs on the serving thread)
        # would deadlock, so hand it to a helper thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous_handlers = {}
    if install_signal_handlers and threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, _request_stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # Ctrl-C without our SIGINT handler
        log.info("shutting down")
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        server.server_close()  # drains in-flight handler threads
        if app.store is not None:
            app.store.close()  # flush + close every campaign journal
        log.info("shutdown complete")
