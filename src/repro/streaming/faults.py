"""Deterministic fault injection for the durability test harness.

The crash-safety contract of the streaming tier (DESIGN.md §15) is
pinned by *differential* tests: kill the process at a defined fault
point, recover from the journal, and compare against an uninterrupted
run.  Those tests need crashes that are (a) placed at exact points in
the write path and (b) reproducible run to run — which is what this
module provides and **nothing else**: in production the process-wide
injector is inert (no rules, near-zero cost per ``fire``) unless
``REPRO_FAULTS`` is set, and nothing in the library ever sets it.

A fault *rule* is ``point:action[@nth]`` — fire ``action`` on the
``nth`` time execution passes ``point`` (1-based, default 1).  Rules
are comma-separated in specs::

    REPRO_FAULTS="journal.post_append:crash@3" repro serve ...

Actions:

- ``crash`` — raise :class:`InjectedCrash`.  The exception deliberately
  does **not** derive from :class:`~repro.errors.ReproError`, so the
  HTTP layer treats it like any unexpected death (500), not like a
  client error.
- ``ioerror`` — raise :class:`OSError`, exercising the disk-failure
  degradation paths (the journal maps it to a 503, never a crash).
- ``partial`` — only meaningful at write points that consult
  :meth:`FaultInjector.partial_cut`: the write stops after a seeded
  random prefix of the payload and the process "dies"
  (:class:`InjectedCrash`), leaving a torn record on disk.

Defined fault points (the write path consults these by name):

- ``journal.pre_append`` — before any bytes of a record are written;
- ``journal.mid_append`` — inside the record write (``partial``);
- ``journal.post_append`` — record fsync'd, estimator not yet updated;
- ``store.mid_refresh`` — refresh intent journaled, result not yet
  computed/adopted.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "FAULT_POINTS",
    "FaultInjector",
    "FaultRule",
    "InjectedCrash",
    "get_injector",
    "set_injector",
]

#: Every fault point the streaming write path consults, in path order.
FAULT_POINTS = (
    "journal.pre_append",
    "journal.mid_append",
    "journal.post_append",
    "store.mid_refresh",
)

_ACTIONS = ("crash", "ioerror", "partial")


class InjectedCrash(RuntimeError):
    """A simulated process death (test-only; see module docstring)."""

    def __init__(self, point: str):
        self.point = point
        super().__init__(f"injected crash at fault point {point!r}")


@dataclass(frozen=True)
class FaultRule:
    """Fire ``action`` on the ``nth`` pass through ``point``."""

    point: str
    action: str
    nth: int = 1

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"fault action must be one of {_ACTIONS}, got {self.action!r}"
            )
        if self.nth < 1:
            raise ConfigurationError(
                f"fault rule nth must be >= 1, got {self.nth}"
            )


def _parse_rule(text: str) -> FaultRule:
    head, _, nth = text.partition("@")
    point, sep, action = head.partition(":")
    if not sep or not point or not action:
        raise ConfigurationError(
            f"fault rule must look like 'point:action[@nth]', got {text!r}"
        )
    try:
        n = int(nth) if nth else 1
    except ValueError as exc:
        raise ConfigurationError(
            f"fault rule nth must be an integer, got {nth!r}"
        ) from exc
    return FaultRule(point=point.strip(), action=action.strip(), nth=n)


class FaultInjector:
    """Seeded, counted fault rules behind the defined fault points.

    Thread-safe: hit counters are guarded so concurrent request threads
    agree on which pass is the nth.  An injector with no rules is inert
    — ``fire`` is one empty-dict check.
    """

    def __init__(self, rules: tuple[FaultRule, ...] = (), *, seed: int = 0):
        self._rules: dict[str, list[FaultRule]] = {}
        for rule in rules:
            self._rules.setdefault(rule.point, []).append(rule)
        self._hits: dict[str, int] = {}
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: ``(point, action)`` of every rule that fired, in order — the
        #: harness asserts the crash it asked for actually happened.
        self.fired: list[tuple[str, str]] = []

    @classmethod
    def from_spec(cls, spec: str, *, seed: int = 0) -> "FaultInjector":
        """Parse a comma-separated ``point:action[@nth]`` rule list."""
        rules = tuple(
            _parse_rule(part.strip())
            for part in spec.split(",")
            if part.strip()
        )
        return cls(rules, seed=seed)

    @property
    def active(self) -> bool:
        return bool(self._rules)

    def _match(self, point: str, actions: tuple[str, ...]) -> FaultRule | None:
        rules = self._rules.get(point)
        if not rules:
            return None
        with self._lock:
            hit = self._hits.get(point, 0) + 1
            self._hits[point] = hit
            for rule in rules:
                if rule.nth == hit and rule.action in actions:
                    self.fired.append((point, rule.action))
                    return rule
        return None

    def fire(self, point: str) -> None:
        """Raise the configured fault at ``point``, if any is due."""
        rule = self._match(point, ("crash", "ioerror"))
        if rule is None:
            return
        if rule.action == "ioerror":
            raise OSError(f"injected IO error at fault point {point!r}")
        raise InjectedCrash(point)

    def partial_cut(self, point: str, size: int) -> int | None:
        """Bytes of an ``size``-byte write to complete before dying.

        ``None`` means "no partial-write fault due here" — the caller
        writes normally.  A returned cut is a seeded draw from
        ``[1, size)`` so the torn record is never empty (an empty tear
        is indistinguishable from no write) and never complete.
        """
        rule = self._match(point, ("partial",))
        if rule is None:
            return None
        if size <= 1:
            return None
        return self._rng.randrange(1, size)


_INJECTOR: FaultInjector | None = None
_INJECTOR_LOCK = threading.Lock()


def get_injector() -> FaultInjector:
    """The process-wide injector (``REPRO_FAULTS`` seeds it, else inert).

    ``REPRO_FAULTS_SEED`` (default 0) seeds the partial-write RNG.
    """
    global _INJECTOR
    injector = _INJECTOR
    if injector is None:
        with _INJECTOR_LOCK:
            injector = _INJECTOR
            if injector is None:
                spec = os.environ.get("REPRO_FAULTS", "")
                seed = int(os.environ.get("REPRO_FAULTS_SEED", "0") or 0)
                injector = FaultInjector.from_spec(spec, seed=seed)
                _INJECTOR = injector
    return injector


def set_injector(injector: FaultInjector | None) -> FaultInjector | None:
    """Swap the process-wide injector (tests); returns the previous one.

    ``None`` resets to "re-read the environment on next use".
    """
    global _INJECTOR
    with _INJECTOR_LOCK:
        previous = _INJECTOR
        _INJECTOR = injector
    return previous
