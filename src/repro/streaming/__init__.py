"""Streaming ingestion and online truth discovery.

The serving layer of the reproduction: claims arrive in
:class:`ClaimBatch` deltas, :class:`OnlineDATE` keeps a campaign's
truths and worker reputations current at O(affected segments) per
batch (with periodic full refreshes for exactness), a
:class:`CampaignStore` multiplexes many concurrent campaigns in one
process, and :mod:`repro.streaming.server` exposes the whole thing as
a stdlib HTTP/JSON API (``repro serve``).  See DESIGN.md §8.

Durability (DESIGN.md §15): with a journal directory the store
write-ahead journals campaign creation and every claim batch
(:mod:`repro.streaming.journal`), replays them deterministically after
a crash, and :class:`StreamingClient` retries against the degraded
server with exactly-once sequence numbers.
:mod:`repro.streaming.faults` is the seeded fault injector the
kill-and-recover tests drive.
"""

from .campaign import (
    Campaign,
    CampaignRecoveringError,
    CampaignStore,
    DuplicateCampaignError,
    UnknownCampaignError,
)
from .client import ClientError, ServerUnavailableError, StreamingClient
from .faults import FaultInjector, InjectedCrash, get_injector, set_injector
from .ingest import (
    ClaimBatch,
    batch_from_json,
    batch_to_json,
    replay_batches,
    task_from_spec,
    worker_from_spec,
)
from .journal import (
    CampaignJournal,
    JournalCorruptError,
    JournalError,
    JournalWriteError,
    list_journals,
    read_journal,
)
from .online import OnlineDATE, OnlineUpdate
from .server import StreamingApp, make_server, serve

__all__ = [
    "Campaign",
    "CampaignJournal",
    "CampaignRecoveringError",
    "CampaignStore",
    "ClaimBatch",
    "ClientError",
    "DuplicateCampaignError",
    "FaultInjector",
    "InjectedCrash",
    "JournalCorruptError",
    "JournalError",
    "JournalWriteError",
    "OnlineDATE",
    "OnlineUpdate",
    "ServerUnavailableError",
    "StreamingApp",
    "StreamingClient",
    "UnknownCampaignError",
    "batch_from_json",
    "batch_to_json",
    "get_injector",
    "list_journals",
    "make_server",
    "read_journal",
    "replay_batches",
    "serve",
    "set_injector",
    "task_from_spec",
    "worker_from_spec",
]
