"""Streaming ingestion and online truth discovery.

The serving layer of the reproduction: claims arrive in
:class:`ClaimBatch` deltas, :class:`OnlineDATE` keeps a campaign's
truths and worker reputations current at O(affected segments) per
batch (with periodic full refreshes for exactness), a
:class:`CampaignStore` multiplexes many concurrent campaigns in one
process, and :mod:`repro.streaming.server` exposes the whole thing as
a stdlib HTTP/JSON API (``repro serve``).  See DESIGN.md §8.
"""

from .campaign import (
    Campaign,
    CampaignStore,
    DuplicateCampaignError,
    UnknownCampaignError,
)
from .ingest import (
    ClaimBatch,
    batch_from_json,
    batch_to_json,
    replay_batches,
    task_from_spec,
    worker_from_spec,
)
from .online import OnlineDATE, OnlineUpdate
from .server import StreamingApp, make_server, serve

__all__ = [
    "Campaign",
    "CampaignStore",
    "ClaimBatch",
    "DuplicateCampaignError",
    "OnlineDATE",
    "OnlineUpdate",
    "StreamingApp",
    "UnknownCampaignError",
    "batch_from_json",
    "batch_to_json",
    "make_server",
    "replay_batches",
    "serve",
    "task_from_spec",
    "worker_from_spec",
]
