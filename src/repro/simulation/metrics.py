"""Evaluation metrics: precision, copier detection, auction quality."""

from __future__ import annotations

from dataclasses import dataclass

from ..auction.reverse_auction import AuctionOutcome
from ..auction.soac import SOACInstance
from ..core.date import TruthDiscoveryResult
from ..types import Dataset

__all__ = [
    "precision",
    "CopierDetectionReport",
    "copier_detection_report",
    "AuctionReport",
    "auction_report",
]


def precision(result: TruthDiscoveryResult, dataset: Dataset) -> float:
    """The paper's precision metric: fraction of tasks estimated correctly.

    ``Σ_j g(et_j = et*_j) / |T|`` over tasks with known ground truth
    (Sec. VII-A).
    """
    return result.precision(dataset.truths)


@dataclass(frozen=True)
class CopierDetectionReport:
    """How well the dependence posteriors separate copiers from independents.

    ``copier_pair_mean`` averages ``P(copier → source | D)`` over the
    true (copier, source) pairs that co-answered at least one task;
    ``independent_pair_mean`` averages the total dependence posterior
    over pairs of truly independent workers.  A useful detector drives
    the first toward 1 and keeps the second near the prior.
    """

    copier_pairs: int
    copier_pair_mean: float
    independent_pairs: int
    independent_pair_mean: float

    @property
    def separation(self) -> float:
        """Detection margin: copier mean minus independent mean."""
        return self.copier_pair_mean - self.independent_pair_mean


def copier_detection_report(
    result: TruthDiscoveryResult, dataset: Dataset
) -> CopierDetectionReport:
    """Score the dependence posteriors against generative ground truth."""
    copier_sources = {
        w.worker_id: set(w.sources) for w in dataset.workers if w.is_copier
    }
    copier_like = set(copier_sources)

    copier_probs: list[float] = []
    independent_probs: list[float] = []
    for (a, b), posterior in result.dependence.items():
        a_copies_b = a in copier_sources and b in copier_sources[a]
        b_copies_a = b in copier_sources and a in copier_sources[b]
        if a_copies_b:
            copier_probs.append(posterior.p_a_to_b)
        if b_copies_a:
            copier_probs.append(posterior.p_b_to_a)
        if not a_copies_b and not b_copies_a and not (
            a in copier_like or b in copier_like
        ):
            independent_probs.append(posterior.p_dependent)
    return CopierDetectionReport(
        copier_pairs=len(copier_probs),
        copier_pair_mean=(
            sum(copier_probs) / len(copier_probs) if copier_probs else 0.0
        ),
        independent_pairs=len(independent_probs),
        independent_pair_mean=(
            sum(independent_probs) / len(independent_probs)
            if independent_probs
            else 0.0
        ),
    )


@dataclass(frozen=True)
class AuctionReport:
    """Quality summary of one auction outcome."""

    social_cost: float
    total_payment: float
    n_winners: int
    overpayment_ratio: float
    covered: bool


def auction_report(instance: SOACInstance, outcome: AuctionOutcome) -> AuctionReport:
    """Summarize an auction outcome against its instance.

    ``overpayment_ratio`` is total payment divided by the winners'
    declared bids — how much truthfulness costs the platform on this
    instance.
    """
    winner_bid_total = float(
        sum(instance.bids[i] for i in outcome.winner_indexes)
    )
    return AuctionReport(
        social_cost=outcome.social_cost,
        total_payment=outcome.total_payment,
        n_winners=outcome.n_winners,
        overpayment_ratio=(
            outcome.total_payment / winner_bid_total if winner_bid_total > 0 else 1.0
        ),
        covered=instance.is_covering(outcome.winner_indexes),
    )
