"""Experiment-level configuration.

:class:`ExperimentConfig` combines the three independent ingredient
groups of every experiment in Sec. VII — the synthetic world shape, the
copier injection, and the DATE hyperparameters — with the evaluation
protocol (instances, base seed).  ``dataset_for(k)`` materializes the
k-th seeded instance; two configs differing only in, say, the assumed
``r`` see identical datasets instance-for-instance, which is what makes
the Fig. 3 sensitivity sweeps meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..core.config import DateConfig
from ..datasets.copiers import inject_copiers
from ..datasets.qatar_living import QATAR_LIVING_LABELS
from ..datasets.synthetic import WorldConfig, generate_world
from ..errors import ConfigurationError
from ..rng import instance_seeds
from ..types import Dataset

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """One fully specified experiment (defaults: the paper's Sec. VII-A)."""

    n_tasks: int = 300
    n_workers: int = 120
    n_copiers: int = 30
    target_claims: int = 6000
    #: Generative copy probability of the injected copiers.
    copy_prob: float = 0.8
    #: Copier source structure (mirrors the Qatar-Living preset): pool
    #: of ~n_copiers/5 sources drawn among low-reliability workers.
    #: ``source_pool_size=None`` applies that default.
    source_pool_size: int | None = None
    source_selection: str = "low_reliability"
    #: DATE hyperparameters (assumed r, ε, α, φ, ...).
    date: DateConfig = field(default_factory=DateConfig)
    #: Extra world parameters; its size fields are overridden by the
    #: explicit fields above.
    world: WorldConfig = field(
        default_factory=lambda: WorldConfig(shared_labels=QATAR_LIVING_LABELS)
    )
    #: Number of seeded repetitions each measurement averages over.
    instances: int = 10
    base_seed: int = 42

    def __post_init__(self) -> None:
        if self.n_copiers >= self.n_workers:
            raise ConfigurationError("n_copiers must be < n_workers")
        if self.n_copiers < 0:
            raise ConfigurationError("n_copiers must be >= 0")
        if not 0.0 <= self.copy_prob <= 1.0:
            raise ConfigurationError("copy_prob must be in [0, 1]")
        if self.instances < 1:
            raise ConfigurationError("instances must be >= 1")

    def evolve(self, **changes: Any) -> "ExperimentConfig":
        """Return a copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    @property
    def world_config(self) -> WorldConfig:
        """The resolved :class:`WorldConfig` (explicit size fields win)."""
        labels = self.world.shared_labels
        num_false = len(labels) - 1 if labels is not None else self.world.num_false
        return self.world.evolve(
            n_tasks=self.n_tasks,
            n_workers=self.n_workers,
            target_claims=self.target_claims,
            num_false=num_false,
        )

    def instance_seed(self, k: int) -> int:
        """The seed of the k-th instance (stable across config changes)."""
        if not 0 <= k < self.instances:
            raise ConfigurationError(
                f"instance index {k} out of range [0, {self.instances})"
            )
        return instance_seeds(self.base_seed, self.instances)[k]

    def dataset_for(self, k: int) -> Dataset:
        """Materialize the k-th seeded instance (world + copiers)."""
        seed = self.instance_seed(k)
        world_config = self.world_config
        world = generate_world(world_config, seed)
        pool = self.source_pool_size
        if pool is None and self.n_copiers > 0:
            pool = max(self.n_copiers // 5, 2)
        return inject_copiers(
            world,
            self.n_copiers,
            copy_prob=self.copy_prob,
            source_pool_size=pool,
            source_selection=self.source_selection,
            world_config=world_config,
            seed=seed + 1,
        )

    def datasets(self) -> list[Dataset]:
        """All instances, in index order."""
        return [self.dataset_for(k) for k in range(self.instances)]
