"""Simulation harness: seeded multi-instance runs, sweeps, statistics.

The evaluation protocol of Sec. VII-A — "each measurement is averaged
over 100 instances" — lives here, decoupled from what is being
measured:

- :mod:`repro.simulation.config` — the experiment-level configuration
  (world shape × algorithm hyperparameters × instance count);
- :mod:`repro.simulation.runner` — run a metric function over seeded
  instances and aggregate;
- :mod:`repro.simulation.executor` — the deterministic process-pool
  fan-out behind every ``parallel=N`` knob;
- :mod:`repro.simulation.sweep` — parameter sweeps producing plot-ready
  series;
- :mod:`repro.simulation.metrics` — precision, copier detection,
  auction quality metrics;
- :mod:`repro.simulation.stats` — summary statistics with confidence
  intervals;
- :mod:`repro.simulation.timing` — wall-clock measurement helpers.
"""

from .config import ExperimentConfig
from .executor import available_cpus, parallel_map, run_jobs
from .metrics import (
    auction_report,
    copier_detection_report,
    precision,
)
from .runner import InstanceTable, run_instances
from .stats import SummaryStats, summarize
from .sweep import ExperimentResult, sweep_series
from .timing import Timer, timed

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "InstanceTable",
    "SummaryStats",
    "Timer",
    "auction_report",
    "available_cpus",
    "copier_detection_report",
    "parallel_map",
    "precision",
    "run_instances",
    "run_jobs",
    "summarize",
    "sweep_series",
    "timed",
]
