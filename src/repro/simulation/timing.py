"""Wall-clock timing helpers for the running-time experiments (Figs. 5, 7)."""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import Any, TypeVar

__all__ = ["Timer", "timed"]

T = TypeVar("T")


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._start


def timed(fn: Callable[..., T], *args: Any, **kwargs: Any) -> tuple[T, float]:
    """Call ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
