"""Seeded, deterministic process-pool fan-out.

:func:`parallel_map` is the one parallel primitive the whole experiment
stack runs on: :func:`~repro.simulation.runner.run_instances`,
:func:`~repro.simulation.sweep.sweep_series`, the scenario runner, and
the figure runners all fan out through it.  The contract is strict:

- **Bit-identical to serial.**  ``parallel_map(fn, items, parallel=N)``
  returns exactly ``[fn(item) for item in items]`` for every ``N``.
  Work items carry their own derived seeds (the caller derives them
  from the root seed *before* submission, e.g. via
  :func:`repro.rng.instance_seeds`), so no randomness ever depends on
  scheduling order, worker count, or completion order.
- **Spawn-safe.**  Pools are created with the ``spawn`` start method —
  the only method that is safe under threads and BLAS on every
  platform — so ``fn`` and every argument must be picklable: a
  module-level function, or a :func:`functools.partial` of one over
  picklable configs.  Closures are rejected by pickle with a clear
  error rather than deadlocking.
- **Pool reuse.**  Spawned workers pay a full interpreter + import
  start-up, so pools are cached per worker count and reused across
  calls for the life of the process (shut down atexit).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, TypeVar

from ..errors import ConfigurationError
from ..obs.metrics import get_registry

__all__ = [
    "available_cpus",
    "parallel_imap",
    "parallel_map",
    "resolve_parallel",
    "run_jobs",
    "shutdown_pools",
]

T = TypeVar("T")
R = TypeVar("R")

#: Cached pools, keyed by worker count.  Spawned workers re-import the
#: package (~1 s each), so a pool is an asset worth keeping warm.  The
#: lock serializes cache membership only (never the map() calls), so
#: concurrent threads cannot race two pools into one slot and orphan
#: the loser's worker processes.
_POOLS: dict[int, ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_parallel(parallel: int | None) -> int:
    """Normalize a ``parallel`` argument: ``None`` means all CPUs."""
    if parallel is None:
        return max(available_cpus(), 1)
    if parallel < 1:
        raise ConfigurationError(f"parallel must be >= 1, got {parallel}")
    return parallel


def _pool(workers: int) -> ProcessPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
            _POOLS[workers] = pool
        return pool


def _evict_pool(workers: int, broken: ProcessPoolExecutor) -> None:
    """Drop one cached pool (after it broke); the next use re-creates it.

    Only evicts if the slot still holds the pool the caller saw break —
    a concurrent thread may already have replaced it.
    """
    with _POOLS_LOCK:
        if _POOLS.get(workers) is broken:
            del _POOLS[workers]
    broken.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every cached pool (idempotent; re-use re-creates)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pools)


class _TimedTask:
    """Picklable wrapper returning ``(fn(item), seconds)`` per item.

    Spawn pools require module-level picklables, so the per-instance
    wall clock is measured inside the worker by this class rather than
    a closure.  Used only while the metrics registry is enabled; the
    wrapped call itself is unchanged, so results stay bit-identical.
    """

    def __init__(self, fn: Callable[[T], R]):
        self.fn = fn

    def __call__(self, item: T) -> tuple[R, float]:
        start = time.perf_counter()
        result = self.fn(item)
        return result, time.perf_counter() - start


def _record_map(registry, *, mode: str, items: int, workers: int,
                busy: float, wall: float) -> None:
    """Registry bookkeeping for one fan-out (registry already enabled)."""
    registry.counter(
        "executor_items_total",
        "Work items executed through the parallel primitives.",
        labels={"mode": mode},
    ).inc(items)
    registry.timer(
        "executor_map_seconds",
        "Wall time of one parallel_map fan-out.",
        labels={"mode": mode},
    ).observe(wall)
    registry.gauge(
        "executor_pool_workers",
        "Worker count of the most recent pooled fan-out.",
    ).set(workers)
    if wall > 0.0 and workers > 0:
        registry.gauge(
            "executor_pool_utilization",
            "Busy fraction (sum of instance seconds / workers * wall) "
            "of the most recent fan-out.",
        ).set(min(busy / (wall * workers), 1.0))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    parallel: int | None = 1,
    chunksize: int = 1,
) -> list[R]:
    """``[fn(item) for item in items]``, optionally across processes.

    ``parallel=1`` (the default) runs serially in-process — no pool, no
    pickling requirement.  ``parallel=N`` fans out over a cached
    N-worker spawn pool; results always come back in submission order,
    so the output is independent of scheduling.  ``parallel=None`` uses
    every available CPU.
    """
    workers = resolve_parallel(parallel)
    items = list(items)
    registry = get_registry()
    if workers == 1 or len(items) <= 1:
        if registry.enabled and items:
            instance_timer = registry.timer(
                "executor_instance_seconds",
                "Wall time of one work item inside the executor.",
            )
            start = time.perf_counter()
            results = []
            for item in items:
                item_start = time.perf_counter()
                results.append(fn(item))
                instance_timer.observe(time.perf_counter() - item_start)
            wall = time.perf_counter() - start
            _record_map(
                registry, mode="serial", items=len(items), workers=1,
                busy=wall, wall=wall,
            )
            return results
        return [fn(item) for item in items]
    if registry.enabled:
        instance_timer = registry.timer(
            "executor_instance_seconds",
            "Wall time of one work item inside the executor.",
        )
        start = time.perf_counter()
        pairs = _pool_map(_TimedTask(fn), items, workers, chunksize)
        wall = time.perf_counter() - start
        busy = 0.0
        results = []
        for result, seconds in pairs:
            instance_timer.observe(seconds)
            busy += seconds
            results.append(result)
        _record_map(
            registry, mode="pooled", items=len(items), workers=workers,
            busy=busy, wall=wall,
        )
        return results
    return _pool_map(fn, items, workers, chunksize)


def _pool_map(fn, items, workers: int, chunksize: int) -> list:
    """Pooled body of :func:`parallel_map`, with the broken-pool retry."""
    pool = _pool(workers)
    try:
        return list(pool.map(fn, items, chunksize=chunksize))
    except BrokenProcessPool:
        # A killed worker (OOM, segfault) permanently breaks its
        # executor.  Evict the poisoned pool and retry once on a fresh
        # one — work items are pure functions of their arguments, so a
        # re-run is safe; a second break propagates.
        get_registry().counter(
            "executor_pool_retries_total",
            "Broken-pool evictions followed by a fresh-pool retry.",
        ).inc()
        _evict_pool(workers, pool)
        pool = _pool(workers)
        try:
            return list(pool.map(fn, items, chunksize=chunksize))
        except BrokenProcessPool:
            _evict_pool(workers, pool)
            raise


def parallel_imap(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    parallel: int | None = 1,
    chunksize: int = 1,
):
    """Iterator twin of :func:`parallel_map`: results stream back in
    submission order as they complete.

    This is what the run ledger's resumable path consumes — each
    finished result can be persisted *before* the next one computes, so
    an interruption (^C, OOM, a broken pool) loses at most the work in
    flight, never the finished prefix.  Unlike :func:`parallel_map`
    there is no transparent broken-pool retry: a consumer that already
    observed results cannot be replayed safely, so the error propagates
    and the caller's next run resumes from what it banked.
    """
    workers = resolve_parallel(parallel)
    items = list(items)
    if workers == 1 or len(items) <= 1:
        return (fn(item) for item in items)
    return _imap_pooled(fn, items, workers, chunksize)


def _imap_pooled(fn, items, workers: int, chunksize: int):
    """Pool-backed body of :func:`parallel_imap`.

    A broken pool is evicted from the cache before the error
    propagates — the consumer cannot be replayed, but its *next* call
    must get a fresh pool instead of the poisoned one forever.
    """
    pool = _pool(workers)
    registry = get_registry()
    if registry.enabled:
        instance_timer = registry.timer(
            "executor_instance_seconds",
            "Wall time of one work item inside the executor.",
        )
        registry.gauge(
            "executor_pool_workers",
            "Worker count of the most recent pooled fan-out.",
        ).set(workers)
        registry.counter(
            "executor_items_total",
            "Work items executed through the parallel primitives.",
            labels={"mode": "streamed"},
        ).inc(len(items))
        try:
            for result, seconds in pool.map(
                _TimedTask(fn), items, chunksize=chunksize
            ):
                instance_timer.observe(seconds)
                yield result
        except BrokenProcessPool:
            _evict_pool(workers, pool)
            raise
        return
    try:
        yield from pool.map(fn, items, chunksize=chunksize)
    except BrokenProcessPool:
        _evict_pool(workers, pool)
        raise


def run_jobs(
    jobs: Sequence[Callable[[], Any]] | Sequence[tuple[Callable[..., Any], tuple]],
    *,
    parallel: int | None = 1,
) -> list[Any]:
    """Run heterogeneous ``(fn, args)`` jobs, results in job order.

    Like :func:`parallel_map` but for a fixed list of distinct calls
    (e.g. one job per algorithm); each job is ``(fn, args_tuple)``.
    """
    normalized: list[tuple[Callable[..., Any], tuple]] = []
    for job in jobs:
        if callable(job):
            normalized.append((job, ()))
        else:
            fn, args = job
            normalized.append((fn, tuple(args)))
    return parallel_map(_call_job, normalized, parallel=parallel)


def _call_job(job: tuple[Callable[..., Any], tuple]) -> Any:
    fn, args = job
    return fn(*args)
