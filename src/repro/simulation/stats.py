"""Summary statistics for repeated-instance measurements.

Every number the harness reports is an average over seeded instances
(Sec. VII-A averages over 100); :class:`SummaryStats` carries the mean
together with its spread and a Student-t 95% confidence interval so
EXPERIMENTS.md can state how stable each reproduced trend is.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["SummaryStats", "summarize"]


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread, and 95% CI of one measured quantity."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci95_low: float
    ci95_high: float

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the 95% confidence interval."""
        return (self.ci95_high - self.ci95_low) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.ci95_halfwidth:.4f} (n={self.n})"


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summarize a sample; the CI uses Student's t (exact mean for n=1)."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = float(data.mean())
    if data.size == 1:
        return SummaryStats(
            n=1,
            mean=mean,
            std=0.0,
            minimum=mean,
            maximum=mean,
            ci95_low=mean,
            ci95_high=mean,
        )
    std = float(data.std(ddof=1))
    sem = std / np.sqrt(data.size)
    if sem == 0.0:
        low = high = mean
    else:
        t_crit = float(scipy_stats.t.ppf(0.975, df=data.size - 1))
        low, high = mean - t_crit * sem, mean + t_crit * sem
    return SummaryStats(
        n=int(data.size),
        mean=mean,
        std=std,
        minimum=float(data.min()),
        maximum=float(data.max()),
        ci95_low=float(low),
        ci95_high=float(high),
    )
