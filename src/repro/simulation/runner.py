"""Seeded multi-instance execution.

:func:`run_instances` is the harness core: call a metric function once
per seeded instance and collect the per-instance metric rows into an
:class:`InstanceTable`, which aggregates each column into
:class:`~repro.simulation.stats.SummaryStats`.  Experiments (and users)
supply only the body — "given instance ``k``, produce numbers".

With a :class:`~repro.artifacts.RunLedger` and a :class:`~repro.
artifacts.RunKey` the harness becomes *resumable at instance
granularity*: each instance row is looked up under its content
fingerprint before anything is submitted to the process pool, only the
missing instances are computed (and persisted as they finish), and the
assembled table is bit-identical to a cold run because rows round-trip
through JSON losslessly.  Since instance seeds do not depend on the
instance *count* (``SeedSequence.spawn`` keys each child by its index
alone), growing ``instances`` reuses the already-banked prefix.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigurationError, MetricMismatchError
from ..obs import trace as obs_trace
from .executor import parallel_imap, parallel_map
from .stats import SummaryStats, summarize

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..artifacts import RunKey, RunLedger

__all__ = ["InstanceTable", "run_instances"]

#: Metric function: (instance index) -> {metric name: value}.
MetricFn = Callable[[int], Mapping[str, float]]


@dataclass(frozen=True)
class InstanceTable:
    """Per-instance metric rows plus aggregation helpers."""

    rows: tuple[dict[str, float], ...]

    def column(self, name: str) -> list[float]:
        """All values of one metric, in instance order."""
        try:
            return [row[name] for row in self.rows]
        except KeyError:
            raise KeyError(
                f"metric {name!r} missing from at least one instance row; "
                f"available: {sorted(self.metric_names)}"
            ) from None

    @property
    def metric_names(self) -> set[str]:
        """The metric names shared by all rows.

        Every instance must report exactly the same metrics; a ragged
        table raises :class:`~repro.errors.MetricMismatchError` naming
        the first offending instance and its missing/unexpected metrics
        instead of silently intersecting columns away.
        """
        if not self.rows:
            return set()
        names = set(self.rows[0])
        for k, row in enumerate(self.rows[1:], start=1):
            if set(row) != names:
                missing = sorted(names - set(row))
                unexpected = sorted(set(row) - names)
                parts = []
                if missing:
                    parts.append(f"missing {missing}")
                if unexpected:
                    parts.append(f"unexpected {unexpected}")
                raise MetricMismatchError(
                    f"instance {k} reports different metrics than instance 0: "
                    f"{'; '.join(parts)} (instance 0 reported {sorted(names)})"
                )
        return names

    def summary(self) -> dict[str, SummaryStats]:
        """Summarize every common metric across instances."""
        return {name: summarize(self.column(name)) for name in sorted(self.metric_names)}

    def mean(self, name: str) -> float:
        """Mean of one metric across instances."""
        return summarize(self.column(name)).mean

    @property
    def n_instances(self) -> int:
        return len(self.rows)


def _checked(raw: Mapping[str, float], k: int) -> dict[str, float]:
    row = dict(raw)
    if not row:
        raise ValueError(f"metric function returned no metrics for instance {k}")
    return row


def run_instances(
    instances: int,
    metric_fn: MetricFn,
    *,
    parallel: int | None = 1,
    ledger: "RunLedger | None" = None,
    key: "RunKey | None" = None,
) -> InstanceTable:
    """Run ``metric_fn`` for instance indexes ``0..instances-1``.

    The metric function is responsible for deriving its own per-instance
    seed (typically via :meth:`ExperimentConfig.dataset_for`), which is
    what makes the fan-out deterministic: ``parallel=N`` distributes the
    instances over an N-worker process pool
    (:func:`~repro.simulation.executor.parallel_map`) and yields a table
    bit-identical to the serial run.  With ``parallel > 1`` the metric
    function must be picklable (a module-level function or a partial of
    one).

    ``ledger`` + ``key`` route the run through the content-addressed
    store: cached instance rows are read back instead of recomputed,
    only the missing indexes hit the pool, and freshly computed rows
    are persisted.  ``key.payload`` must describe everything
    ``metric_fn`` reads *except* the instance count (so prefixes stay
    shared across differently sized runs).
    """
    if instances < 1:
        raise ValueError("instances must be >= 1")
    if ledger is not None and key is None:
        raise ConfigurationError(
            "run_instances got a ledger but no key declaring the work"
        )
    if ledger is None or key is None:
        with obs_trace.span("run_instances", instances=instances):
            rows = [
                _checked(raw, k)
                for k, raw in enumerate(
                    parallel_map(metric_fn, range(instances), parallel=parallel)
                )
            ]
        return InstanceTable(rows=tuple(rows))

    banked: list[dict[str, float] | None] = [
        ledger.get_row(key, k) for k in range(instances)
    ]
    missing = [k for k, row in enumerate(banked) if row is None]
    writer = obs_trace.active()
    if writer is not None:
        # Each instance event carries the ledger's own row digest — the
        # trace↔provenance join (DESIGN.md §13).
        from ..artifacts.ledger import row_fingerprint

        for k, row in enumerate(banked):
            if row is not None:
                writer.emit(
                    "instance_row",
                    instance=k,
                    fingerprint=row_fingerprint(key, k),
                    cached=True,
                )
    # Stream results back and bank each row the moment it exists: an
    # interrupted run keeps its finished prefix, and the next run
    # resumes at the first row it never banked.
    with obs_trace.span(
        "run_instances", instances=instances, cached=instances - len(missing)
    ):
        for k, raw in zip(
            missing, parallel_imap(metric_fn, missing, parallel=parallel)
        ):
            row = _checked(raw, k)
            ledger.put_row(key, k, row)
            banked[k] = row
            if writer is not None:
                writer.emit(
                    "instance_row",
                    instance=k,
                    fingerprint=row_fingerprint(key, k),
                    cached=False,
                )
    return InstanceTable(
        rows=tuple(_checked(row, k) for k, row in enumerate(banked))
    )
