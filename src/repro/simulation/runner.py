"""Seeded multi-instance execution.

:func:`run_instances` is the harness core: call a metric function once
per seeded instance and collect the per-instance metric rows into an
:class:`InstanceTable`, which aggregates each column into
:class:`~repro.simulation.stats.SummaryStats`.  Experiments (and users)
supply only the body — "given instance ``k``, produce numbers".
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from .executor import parallel_map
from .stats import SummaryStats, summarize

__all__ = ["InstanceTable", "run_instances"]

#: Metric function: (instance index) -> {metric name: value}.
MetricFn = Callable[[int], Mapping[str, float]]


@dataclass(frozen=True)
class InstanceTable:
    """Per-instance metric rows plus aggregation helpers."""

    rows: tuple[dict[str, float], ...]

    def column(self, name: str) -> list[float]:
        """All values of one metric, in instance order."""
        try:
            return [row[name] for row in self.rows]
        except KeyError:
            raise KeyError(
                f"metric {name!r} missing from at least one instance row; "
                f"available: {sorted(self.metric_names)}"
            ) from None

    @property
    def metric_names(self) -> set[str]:
        """Names present in every row."""
        if not self.rows:
            return set()
        names = set(self.rows[0])
        for row in self.rows[1:]:
            names &= set(row)
        return names

    def summary(self) -> dict[str, SummaryStats]:
        """Summarize every common metric across instances."""
        return {name: summarize(self.column(name)) for name in sorted(self.metric_names)}

    def mean(self, name: str) -> float:
        """Mean of one metric across instances."""
        return summarize(self.column(name)).mean

    @property
    def n_instances(self) -> int:
        return len(self.rows)


def run_instances(
    instances: int, metric_fn: MetricFn, *, parallel: int | None = 1
) -> InstanceTable:
    """Run ``metric_fn`` for instance indexes ``0..instances-1``.

    The metric function is responsible for deriving its own per-instance
    seed (typically via :meth:`ExperimentConfig.dataset_for`), which is
    what makes the fan-out deterministic: ``parallel=N`` distributes the
    instances over an N-worker process pool
    (:func:`~repro.simulation.executor.parallel_map`) and yields a table
    bit-identical to the serial run.  With ``parallel > 1`` the metric
    function must be picklable (a module-level function or a partial of
    one).
    """
    if instances < 1:
        raise ValueError("instances must be >= 1")
    rows = []
    for k, raw in enumerate(
        parallel_map(metric_fn, range(instances), parallel=parallel)
    ):
        row = dict(raw)
        if not row:
            raise ValueError(f"metric function returned no metrics for instance {k}")
        rows.append(row)
    return InstanceTable(rows=tuple(rows))
