"""Parameter sweeps and the plot-ready :class:`ExperimentResult`.

Every figure in the paper is a sweep: precision vs. r, social cost vs.
number of tasks, utility vs. declared bid.  :func:`sweep_series` runs a
point function over an x-grid and assembles named y-series;
:class:`ExperimentResult` is the common currency between the experiment
runners, the ASCII reporting layer, and the CSV export.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from .executor import parallel_map

__all__ = ["ExperimentResult", "sweep_series"]

#: Point function: x value -> {series name: y value}.
PointFn = Callable[[float], Mapping[str, float]]


@dataclass(frozen=True)
class ExperimentResult:
    """One reproduced table/figure: named series over a shared x-grid.

    ``meta`` carries free-form provenance (instances, seeds, paper
    expectations) that the reporting layer prints alongside the data.
    """

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    x_values: tuple[float, ...]
    series: dict[str, tuple[float, ...]]
    meta: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, ys in self.series.items():
            if len(ys) != len(self.x_values):
                raise ValueError(
                    f"series {name!r} has {len(ys)} points for "
                    f"{len(self.x_values)} x values"
                )

    @property
    def series_names(self) -> list[str]:
        return list(self.series)

    def y(self, name: str) -> tuple[float, ...]:
        """One series by name."""
        return self.series[name]

    def rows(self) -> list[tuple[float, ...]]:
        """Row-major view: one row per x value, columns in series order."""
        names = self.series_names
        return [
            (x, *(self.series[name][k] for name in names))
            for k, x in enumerate(self.x_values)
        ]


def sweep_series(
    experiment_id: str,
    title: str,
    x_label: str,
    y_label: str,
    x_values: Sequence[float],
    point_fn: PointFn,
    *,
    meta: Mapping[str, object] | None = None,
    parallel: int | None = 1,
) -> ExperimentResult:
    """Evaluate ``point_fn`` over ``x_values`` and bundle the series.

    Every point must report the same series names; missing names raise
    immediately with the offending x value for easy debugging.
    ``parallel=N`` evaluates the grid points over an N-worker process
    pool (``point_fn`` must then be picklable); the assembled result is
    bit-identical to the serial sweep because every point derives its
    own seeds from the x value, never from evaluation order.
    """
    x_values = tuple(x_values)
    if not x_values:
        raise ValueError("x_values must be non-empty")
    collected: dict[str, list[float]] = {}
    names: list[str] | None = None
    points = parallel_map(point_fn, x_values, parallel=parallel)
    for x, raw in zip(x_values, points):
        point = dict(raw)
        if names is None:
            names = sorted(point)
            collected = {name: [] for name in names}
        if sorted(point) != names:
            raise ValueError(
                f"point at x={x} reported series {sorted(point)}, "
                f"expected {names}"
            )
        for name in names:
            collected[name].append(float(point[name]))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label=x_label,
        y_label=y_label,
        x_values=x_values,
        series={name: tuple(ys) for name, ys in collected.items()},
        meta=dict(meta or {}),
    )
