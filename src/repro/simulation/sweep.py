"""Parameter sweeps and the plot-ready :class:`ExperimentResult`.

Every figure in the paper is a sweep: precision vs. r, social cost vs.
number of tasks, utility vs. declared bid.  :func:`sweep_series` runs a
point function over an x-grid and assembles named y-series;
:class:`ExperimentResult` is the common currency between the experiment
runners, the ASCII reporting layer, the CSV/JSON export, and the run
ledger (:mod:`repro.artifacts`), which stores results via
:meth:`ExperimentResult.to_payload` and replays them via
:meth:`ExperimentResult.from_payload`.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError
from .executor import parallel_imap, parallel_map

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..artifacts import RunKey, RunLedger

__all__ = ["ExperimentResult", "sweep_series"]

#: Point function: x value -> {series name: y value}.
PointFn = Callable[[float], Mapping[str, float]]


def _jsonable(value: object) -> object:
    """Coerce meta values to JSON-safe equivalents (lossless for the
    scalar types experiments actually store; everything else
    stringifies)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


@dataclass(frozen=True)
class ExperimentResult:
    """One reproduced table/figure: named series over a shared x-grid.

    ``meta`` carries free-form provenance (instances, seeds, paper
    expectations) that the reporting layer prints alongside the data.
    """

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    x_values: tuple[float, ...]
    series: dict[str, tuple[float, ...]]
    meta: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, ys in self.series.items():
            if len(ys) != len(self.x_values):
                raise ValueError(
                    f"series {name!r} has {len(ys)} points for "
                    f"{len(self.x_values)} x values"
                )

    @property
    def series_names(self) -> list[str]:
        return list(self.series)

    def y(self, name: str) -> tuple[float, ...]:
        """One series by name."""
        return self.series[name]

    def rows(self) -> list[tuple[float, ...]]:
        """Row-major view: one row per x value, columns in series order."""
        names = self.series_names
        return [
            (x, *(self.series[name][k] for name in names))
            for k, x in enumerate(self.x_values)
        ]

    def to_payload(self) -> dict[str, Any]:
        """Lower to a JSON-safe dict (exact floats; the JSON export and
        the run ledger both store this form)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x_values": list(self.x_values),
            "series": {name: list(ys) for name, ys in self.series.items()},
            # Declared explicitly because the stored JSON sorts keys;
            # CSV column order (and rows()/series_names) must survive
            # the round trip bit-identically.
            "series_order": list(self.series),
            "meta": {k: _jsonable(v) for k, v in self.meta.items()},
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild from :meth:`to_payload` output (x/series bit-exact)."""
        series_payload = payload["series"]
        order = payload.get("series_order") or list(series_payload)
        return cls(
            experiment_id=str(payload["experiment_id"]),
            title=str(payload["title"]),
            x_label=str(payload["x_label"]),
            y_label=str(payload["y_label"]),
            x_values=tuple(payload["x_values"]),
            series={name: tuple(series_payload[name]) for name in order},
            meta=dict(payload.get("meta", {})),
        )


def sweep_series(
    experiment_id: str,
    title: str,
    x_label: str,
    y_label: str,
    x_values: Sequence[float],
    point_fn: PointFn,
    *,
    meta: Mapping[str, object] | None = None,
    parallel: int | None = 1,
    ledger: "RunLedger | None" = None,
    key: "RunKey | None" = None,
) -> ExperimentResult:
    """Evaluate ``point_fn`` over ``x_values`` and bundle the series.

    Every point must report the same series names; missing names raise
    immediately with the offending x value for easy debugging.
    ``parallel=N`` evaluates the grid points over an N-worker process
    pool (``point_fn`` must then be picklable); the assembled result is
    bit-identical to the serial sweep because every point derives its
    own seeds from the x value, never from evaluation order.

    ``ledger`` + ``key`` make the sweep resumable at *point*
    granularity: each evaluated point is persisted under the
    fingerprint of ``(key, x)``, already-banked points are read back
    instead of recomputed, and only the missing grid points run
    (serially or over the pool).  An interrupted sweep therefore
    resumes at the first unevaluated x.
    """
    x_values = tuple(x_values)
    if not x_values:
        raise ValueError("x_values must be non-empty")
    if ledger is not None and key is None:
        raise ConfigurationError(
            "sweep_series got a ledger but no key declaring the work"
        )

    if ledger is None or key is None:
        points = parallel_map(point_fn, x_values, parallel=parallel)
    else:
        banked: list[dict[str, float] | None] = [
            ledger.get_point(key, x) for x in x_values
        ]
        missing = [
            i for i, point in enumerate(banked) if point is None
        ]
        # Bank each point as it completes so an interrupted sweep
        # resumes at the first unevaluated grid point.
        computed = parallel_imap(
            point_fn, [x_values[i] for i in missing], parallel=parallel
        )
        for i, raw in zip(missing, computed):
            point = {name: float(v) for name, v in dict(raw).items()}
            ledger.put_point(key, x_values[i], point)
            banked[i] = point
        points = banked

    collected: dict[str, list[float]] = {}
    names: list[str] | None = None
    for x, raw in zip(x_values, points):
        point = dict(raw)
        if names is None:
            names = sorted(point)
            collected = {name: [] for name in names}
        if sorted(point) != names:
            raise ValueError(
                f"point at x={x} reported series {sorted(point)}, "
                f"expected {names}"
            )
        for name in names:
            collected[name].append(float(point[name]))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label=x_label,
        y_label=y_label,
        x_values=x_values,
        series={name: tuple(ys) for name, ys in collected.items()},
        meta=dict(meta or {}),
    )
