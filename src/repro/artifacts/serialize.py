"""JSON payload codecs for artifacts that outlive a process.

The ledger stores everything as JSON; this module holds the lossless
converters for the result bundles that are not already JSON-shaped.
Floats survive exactly (JSON uses shortest-``repr`` encoding), numpy
matrices are stored as nested lists with their dtype restored on read,
so a deserialized result compares bit-identical to the original — the
property the streaming warm-restart tests pin.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.date import TruthDiscoveryResult
from ..core.dependence import DependencePosterior

__all__ = ["truth_result_from_payload", "truth_result_to_payload"]


def truth_result_to_payload(result: TruthDiscoveryResult) -> dict[str, Any]:
    """Lower a :class:`TruthDiscoveryResult` to a JSON-safe dict."""
    return {
        "truths": dict(result.truths),
        "accuracy_matrix": result.accuracy_matrix.tolist(),
        "worker_accuracy": dict(result.worker_accuracy),
        "confidence": dict(result.confidence),
        "support": {
            task: dict(values) for task, values in result.support.items()
        },
        "dependence": [
            [a, b, posterior.p_a_to_b, posterior.p_b_to_a]
            for (a, b), posterior in result.dependence.items()
        ],
        "iterations": result.iterations,
        "converged": result.converged,
        "method": result.method,
        "worker_ids": list(result.worker_ids),
        "task_ids": list(result.task_ids),
        "ground_truths": dict(result._ground_truths),
    }


def truth_result_from_payload(payload: dict[str, Any]) -> TruthDiscoveryResult:
    """Rebuild a :class:`TruthDiscoveryResult` from its JSON payload."""
    matrix = np.asarray(payload["accuracy_matrix"], dtype=np.float64)
    if matrix.size == 0:
        matrix = matrix.reshape(
            (len(payload["worker_ids"]), len(payload["task_ids"]))
        )
    return TruthDiscoveryResult(
        truths=dict(payload["truths"]),
        accuracy_matrix=matrix,
        worker_accuracy={
            k: float(v) for k, v in payload["worker_accuracy"].items()
        },
        confidence={k: float(v) for k, v in payload["confidence"].items()},
        support={
            task: {value: float(count) for value, count in values.items()}
            for task, values in payload["support"].items()
        },
        dependence={
            (a, b): DependencePosterior(
                p_a_to_b=float(p_ab), p_b_to_a=float(p_ba)
            )
            for a, b, p_ab, p_ba in payload["dependence"]
        },
        iterations=int(payload["iterations"]),
        converged=bool(payload["converged"]),
        method=str(payload["method"]),
        worker_ids=tuple(payload["worker_ids"]),
        task_ids=tuple(payload["task_ids"]),
        _ground_truths=dict(payload["ground_truths"]),
    )
