"""Canonical fingerprints for units of reproducible work.

Per-instance results in this repo are pure, bit-identical functions of
``(experiment id, configuration, root seed, instance index)`` — the
determinism contract every differential suite pins.  That contract is
exactly what makes *content-addressed caching* sound: if two runs hash
the same declarative description of their work, they would compute the
same bytes, so the second run may read the first one's result.

:func:`canonical` lowers an arbitrary configuration object — frozen
dataclasses nested in tuples, dicts, numpy scalars — into a
JSON-serializable structure with one unique form per value, and
:func:`fingerprint` hashes that form (SHA-256 over compact,
sorted-key JSON) together with :data:`SCHEMA_VERSION`, a salt bumped
whenever the *meaning* of stored payloads changes so stale ledger
entries can never be misread as current ones (DESIGN.md §11).

Encoding rules (one unique encoding per value, no aliasing):

- ``None`` / ``bool`` / ``int`` / ``str`` pass through; ``float`` stays
  a float (JSON round-trips floats exactly via ``repr`` shortest-form).
- dataclasses become ``{"__dataclass__": qualified name, "fields":
  {...}}`` — the class name is part of the identity, so two config
  types with identical fields never collide.
- tuples and lists both become JSON arrays (configs use them
  interchangeably for grids).
- dicts with string keys stay objects; dicts with structured keys
  (e.g. ``claims[(worker, task)]``) become sorted ``[key, value]``
  pair arrays.
- sets/frozensets become sorted arrays.
- numpy scalars and arrays lower to their Python equivalents.
- callables (e.g. a similarity function plugged into ``DateConfig``)
  are identified by qualified name — behaviour changes inside the
  function are invisible to the fingerprint, which is why the schema
  salt exists.
- non-dataclass config objects may implement ``__fingerprint__()``
  returning their identifying parameters (the hook the false-value
  distributions use); the encoding pairs that state with the class
  name.

Anything else raises :class:`FingerprintError` eagerly: an object the
encoder does not understand must never be silently stringified into a
colliding key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections.abc import Mapping
from typing import Any

import numpy as np

from ..errors import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "FingerprintError",
    "canonical",
    "canonical_json",
    "fingerprint",
]

#: Bump whenever the canonical encoding or the stored payload layout
#: changes meaning; every fingerprint mixes it in, so old ledger
#: entries simply stop matching instead of being misinterpreted.
SCHEMA_VERSION = 1


class FingerprintError(ReproError, TypeError):
    """A value cannot be canonically encoded for fingerprinting."""


def canonical(value: Any) -> Any:
    """Lower ``value`` to a JSON-safe structure with a unique form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [canonical(v) for v in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if hasattr(value, "__fingerprint__") and not isinstance(value, type):
        cls = type(value)
        return {
            "__object__": f"{cls.__module__}.{cls.__qualname__}",
            "state": canonical(value.__fingerprint__()),
        }
    if isinstance(value, (tuple, list)):
        return [canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        encoded = [canonical(v) for v in value]
        return {"__set__": sorted(encoded, key=_sort_key)}
    if isinstance(value, Mapping):
        if all(isinstance(k, str) for k in value):
            return {k: canonical(v) for k, v in sorted(value.items())}
        pairs = [[canonical(k), canonical(v)] for k, v in value.items()]
        return {"__pairs__": sorted(pairs, key=_sort_key)}
    if callable(value):
        name = getattr(value, "__qualname__", None) or getattr(
            value, "__name__", None
        )
        module = getattr(value, "__module__", None)
        if name is None:
            raise FingerprintError(
                f"cannot fingerprint anonymous callable {value!r}"
            )
        return {"__callable__": f"{module}.{name}"}
    raise FingerprintError(
        f"cannot canonically encode {type(value).__qualname__!r} for "
        f"fingerprinting; supported: JSON scalars, dataclasses, "
        f"tuples/lists, dicts, sets, numpy scalars/arrays, named callables"
    )


def _sort_key(encoded: Any) -> str:
    """Total order over already-canonical values, via their JSON form."""
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


def canonical_json(value: Any) -> str:
    """The canonical compact JSON text of ``value``."""
    return json.dumps(
        canonical(value), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def fingerprint(payload: Any) -> str:
    """SHA-256 hex digest of ``payload`` under the current schema salt."""
    text = canonical_json({"schema": SCHEMA_VERSION, "payload": payload})
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
