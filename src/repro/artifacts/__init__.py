"""Provenance-keyed persistence of finished experiment work.

The artifacts layer turns the repo's determinism contract — every
per-instance result is a pure, bit-identical function of ``(experiment
id, config, root seed, instance index)`` — into a content-addressed
cache (DESIGN.md §11):

- :mod:`~repro.artifacts.fingerprint` lowers declarative work
  descriptions into canonical JSON and hashes them (SHA-256 + schema
  salt);
- :mod:`~repro.artifacts.ledger` persists instance rows, sweep points,
  finished results, and streaming refresh snapshots under those
  fingerprints, making sweeps resumable at instance granularity and
  repeated runs O(delta) instead of O(full recompute);
- :mod:`~repro.artifacts.serialize` holds the lossless JSON codecs for
  result bundles.
"""

from .fingerprint import (
    SCHEMA_VERSION,
    FingerprintError,
    canonical,
    canonical_json,
    fingerprint,
)
from .ledger import (
    LedgerEntry,
    LedgerError,
    LedgerStats,
    RunKey,
    RunLedger,
    cached_result,
    default_store_path,
    snapshot_fingerprint,
)
from .serialize import truth_result_from_payload, truth_result_to_payload

__all__ = [
    "SCHEMA_VERSION",
    "FingerprintError",
    "LedgerEntry",
    "LedgerError",
    "LedgerStats",
    "RunKey",
    "RunLedger",
    "cached_result",
    "canonical",
    "canonical_json",
    "default_store_path",
    "fingerprint",
    "snapshot_fingerprint",
    "truth_result_from_payload",
    "truth_result_to_payload",
]
