"""The run ledger: a content-addressed store of finished work.

:class:`RunLedger` persists the three artifact kinds the experiment
stack produces, each under the fingerprint of the declarative
description of the work that made it (:mod:`repro.artifacts.fingerprint`):

- ``rows`` — one per-instance metric row of :func:`~repro.simulation.
  runner.run_instances`, keyed by ``(experiment id, config payload,
  instance index)``.  The instance *count* is deliberately excluded
  from the key: instance seeds derive from ``SeedSequence(base_seed)
  .spawn(k)``, so instance ``k`` computes the same row whether it runs
  in a 10-instance or a 100-instance sweep — raising ``--instances``
  reuses the existing prefix and computes only the delta.
- ``points`` — one evaluated sweep point of :func:`~repro.simulation.
  sweep.sweep_series`, keyed by ``(experiment id, config payload, x)``,
  so an interrupted sweep resumes at the first unevaluated grid point.
- ``results`` — a finished :class:`~repro.simulation.sweep.
  ExperimentResult`, keyed by the full configuration including the
  instance count; a hit short-circuits the whole run.
- ``snapshots`` — a streaming campaign's full-refresh estimate, keyed
  by ``(DATE config, campaign content)``, making a restarted
  :class:`~repro.streaming.campaign.CampaignStore` warm: replaying the
  same campaign reads the refresh instead of recomputing it.

Storage is one JSON file per entry under ``<root>/<kind>/<fp[:2]>/
<fp>.json`` (sharded so no directory grows unbounded), written
atomically (temp file + ``os.replace``) so concurrent writers — e.g.
two experiment processes sharing a store — can only ever publish whole
entries.  JSON round-trips floats exactly (shortest-``repr`` encoding),
which is what lets the differential suite pin cache-hit runs
bit-identical to cold ones.

The default root is ``$REPRO_STORE`` or ``~/.cache/repro``; every CLI
entry point takes ``--store DIR`` to override it.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError, ReproError
from .fingerprint import SCHEMA_VERSION, canonical, fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep uses us)
    from ..simulation.sweep import ExperimentResult

__all__ = [
    "LedgerEntry",
    "LedgerError",
    "LedgerStats",
    "RunKey",
    "RunLedger",
    "cached_result",
    "default_store_path",
    "snapshot_fingerprint",
]

#: Artifact namespaces, in display order.
KINDS = ("rows", "points", "results", "snapshots")


class LedgerError(ReproError, RuntimeError):
    """A ledger operation failed (unknown fingerprint, ambiguous prefix)."""


def default_store_path() -> Path:
    """``$REPRO_STORE`` when set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_STORE")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


@dataclass(frozen=True)
class RunKey:
    """The declarative identity of one unit of work.

    ``payload`` is the runner's *declared* fingerprint input — resolved
    scale preset, dataclass configs, grids, root seed — never ad-hoc
    kwargs: whatever is absent from the payload cannot invalidate the
    cache, so runners must declare everything their computation reads.
    """

    experiment_id: str
    payload: Mapping[str, Any]

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ConfigurationError("RunKey.experiment_id must be non-empty")


def row_fingerprint(key: RunKey, instance: int) -> str:
    """The content fingerprint of one instance row of ``key``.

    Module-level so non-ledger consumers (the trace writer joins trace
    events to provenance rows by exactly these digests, DESIGN.md §13)
    share one definition with :class:`RunLedger`.
    """
    return fingerprint(
        {
            "kind": "row",
            "experiment_id": key.experiment_id,
            "config": canonical(dict(key.payload)),
            "instance": int(instance),
        }
    )


def point_fingerprint(key: RunKey, x: float) -> str:
    """The content fingerprint of one sweep point of ``key``."""
    return fingerprint(
        {
            "kind": "point",
            "experiment_id": key.experiment_id,
            "config": canonical(dict(key.payload)),
            "x": x,
        }
    )


def result_fingerprint(key: RunKey) -> str:
    """The content fingerprint of the finished result of ``key``."""
    return fingerprint(
        {
            "kind": "result",
            "experiment_id": key.experiment_id,
            "config": canonical(dict(key.payload)),
        }
    )


def snapshot_fingerprint(payload: Any) -> str:
    """The content fingerprint of one streaming refresh snapshot.

    Module-level so the streaming journal can stamp refresh records
    with the exact fingerprint the ledger would store the snapshot
    under — recovery compares the two to decide whether a banked
    refresh may be adopted mid-replay (DESIGN.md §15).
    """
    return fingerprint({"kind": "snapshot", "config": canonical(payload)})


@dataclass
class LedgerStats:
    """Per-process cache counters (reset with :meth:`RunLedger.reset_stats`)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.writes} writes"


@dataclass(frozen=True)
class LedgerEntry:
    """Metadata of one stored artifact (for ``repro ledger list``)."""

    kind: str
    fingerprint: str
    experiment_id: str
    detail: str
    size_bytes: int
    modified_at: float
    path: Path


class RunLedger:
    """Content-addressed, on-disk store of finished experiment work."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_store_path()
        self.stats = LedgerStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunLedger(root={str(self.root)!r})"

    def reset_stats(self) -> None:
        self.stats = LedgerStats()

    # -- fingerprints ----------------------------------------------------

    def row_fingerprint(self, key: RunKey, instance: int) -> str:
        return row_fingerprint(key, instance)

    def point_fingerprint(self, key: RunKey, x: float) -> str:
        return point_fingerprint(key, x)

    def result_fingerprint(self, key: RunKey) -> str:
        return result_fingerprint(key)

    def snapshot_fingerprint(self, payload: Any) -> str:
        return snapshot_fingerprint(payload)

    # -- rows ------------------------------------------------------------

    def get_row(self, key: RunKey, instance: int) -> dict[str, float] | None:
        """The cached metric row of one instance, or ``None``."""
        entry = self._read("rows", self.row_fingerprint(key, instance))
        return None if entry is None else dict(entry["body"])

    def put_row(self, key: RunKey, instance: int, row: Mapping[str, float]) -> str:
        fp = self.row_fingerprint(key, instance)
        # Coerce values through float() so numpy scalars (a legal
        # MetricFn output) serialize instead of crashing json.dumps —
        # the cache path must accept everything the plain path does.
        self._write(
            "rows",
            fp,
            key,
            body={name: float(v) for name, v in row.items()},
            detail=f"instance {int(instance)}",
        )
        return fp

    # -- sweep points ----------------------------------------------------

    def get_point(self, key: RunKey, x: float) -> dict[str, float] | None:
        """The cached series values of one sweep point, or ``None``."""
        entry = self._read("points", self.point_fingerprint(key, x))
        return None if entry is None else dict(entry["body"])

    def put_point(self, key: RunKey, x: float, point: Mapping[str, float]) -> str:
        fp = self.point_fingerprint(key, x)
        self._write(
            "points",
            fp,
            key,
            body={name: float(v) for name, v in point.items()},
            detail=f"x={x:g}",
        )
        return fp

    # -- whole results ---------------------------------------------------

    def get_result(self, key: RunKey) -> "ExperimentResult | None":
        """A finished experiment result, reconstructed, or ``None``."""
        entry = self._read("results", self.result_fingerprint(key))
        if entry is None:
            return None
        from ..simulation.sweep import ExperimentResult

        return ExperimentResult.from_payload(entry["body"])

    def put_result(self, key: RunKey, result: "ExperimentResult") -> str:
        fp = self.result_fingerprint(key)
        self._write(
            "results", fp, key, body=result.to_payload(), detail="result"
        )
        return fp

    # -- streaming snapshots ---------------------------------------------

    def get_snapshot(self, snapshot_key: Any) -> dict | None:
        """A persisted campaign refresh snapshot, or ``None``."""
        entry = self._read("snapshots", self.snapshot_fingerprint(snapshot_key))
        return None if entry is None else entry["body"]

    def get_snapshot_fp(self, fp: str) -> dict | None:
        """A snapshot by its already-computed fingerprint, or ``None``.

        Journal recovery already holds the fingerprint (the refresh
        record carries it), so this skips re-canonicalizing the whole
        campaign content just to re-derive a digest it has.
        """
        entry = self._read("snapshots", fp)
        return None if entry is None else entry["body"]

    def put_snapshot(self, snapshot_key: Any, body: Mapping[str, Any]) -> str:
        fp = self.snapshot_fingerprint(snapshot_key)
        payload = {
            "schema": SCHEMA_VERSION,
            "fingerprint": fp,
            "kind": "snapshots",
            "experiment_id": "streaming",
            "detail": "refresh snapshot",
            "created_at": time.time(),
            "body": dict(body),
        }
        self._write_payload("snapshots", fp, payload)
        return fp

    # -- maintenance -----------------------------------------------------

    def entries(self, kind: str | None = None) -> list[LedgerEntry]:
        """All stored artifacts, newest first."""
        kinds = KINDS if kind is None else (self._check_kind(kind),)
        found: list[LedgerEntry] = []
        for k in kinds:
            base = self.root / k
            if not base.is_dir():
                continue
            for path in sorted(base.glob("*/*.json")):
                try:
                    payload = json.loads(path.read_text())
                    stat = path.stat()
                except (OSError, json.JSONDecodeError):
                    continue
                found.append(
                    LedgerEntry(
                        kind=k,
                        fingerprint=payload.get("fingerprint", path.stem),
                        experiment_id=str(payload.get("experiment_id", "?")),
                        detail=str(payload.get("detail", "")),
                        size_bytes=stat.st_size,
                        modified_at=stat.st_mtime,
                        path=path,
                    )
                )
        found.sort(key=lambda e: e.modified_at, reverse=True)
        return found

    def show(self, prefix: str) -> dict:
        """The full stored payload of the entry matching ``prefix``.

        Resolution uses the sharded layout directly — a >= 2 character
        prefix names its shard, shorter ones scan only matching shard
        directories — so only the matched file is read, never the
        whole store.
        """
        if not prefix:
            raise LedgerError("fingerprint prefix must be non-empty")
        matches: list[Path] = []
        for kind in KINDS:
            base = self.root / kind
            if not base.is_dir():
                continue
            if len(prefix) >= 2:
                shards = [base / prefix[:2]]
            else:
                shards = sorted(
                    p
                    for p in base.iterdir()
                    if p.is_dir() and p.name.startswith(prefix)
                )
            for shard in shards:
                matches.extend(sorted(shard.glob(f"{prefix}*.json")))
        if not matches:
            raise LedgerError(
                f"no ledger entry matches fingerprint prefix {prefix!r} "
                f"under {self.root}"
            )
        if len(matches) > 1:
            shown = ", ".join(path.stem[:12] for path in matches[:5])
            raise LedgerError(
                f"fingerprint prefix {prefix!r} is ambiguous "
                f"({len(matches)} matches: {shown}...)"
            )
        return json.loads(matches[0].read_text())

    def gc(
        self, *, older_than_days: float | None = None, kind: str | None = None
    ) -> tuple[int, int]:
        """Delete entries; returns ``(files removed, bytes freed)``.

        ``older_than_days=None`` removes everything (of ``kind``, when
        given); otherwise only entries whose file modification time is
        older than the cutoff.  Orphaned temp files (a writer killed
        between ``mkstemp`` and ``os.replace``) are swept under the
        same age rule, and empty shard directories are pruned.
        """
        cutoff = (
            None
            if older_than_days is None
            else time.time() - older_than_days * 86400.0
        )
        removed = 0
        freed = 0
        kinds = KINDS if kind is None else (self._check_kind(kind),)
        doomed = [(e.path, e.modified_at, e.size_bytes) for e in self.entries(kind)]
        for k in kinds:
            base = self.root / k
            if base.is_dir():
                for tmp in base.glob("*/*.tmp"):
                    try:
                        stat = tmp.stat()
                    except OSError:
                        continue
                    doomed.append((tmp, stat.st_mtime, stat.st_size))
        shards = set()
        for path, modified_at, size_bytes in doomed:
            if cutoff is not None and modified_at >= cutoff:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size_bytes
            shards.add(path.parent)
        for shard in shards:
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed, freed

    def describe(self) -> dict:
        """Counts and sizes per kind (for the CLI footer)."""
        entries = self.entries()
        per_kind = {k: 0 for k in KINDS}
        total = 0
        for entry in entries:
            per_kind[entry.kind] += 1
            total += entry.size_bytes
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": total,
            "per_kind": per_kind,
        }

    # -- storage ---------------------------------------------------------

    @staticmethod
    def _check_kind(kind: str) -> str:
        if kind not in KINDS:
            raise ConfigurationError(
                f"unknown ledger kind {kind!r}; expected one of {KINDS}"
            )
        return kind

    def _path(self, kind: str, fp: str) -> Path:
        return self.root / kind / fp[:2] / f"{fp}.json"

    def _read(self, kind: str, fp: str) -> dict | None:
        path = self._path(kind, fp)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            # A torn or unreadable entry is a miss, never an error: the
            # caller recomputes and the rewrite heals the store.
            self.stats.misses += 1
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def _write(
        self, kind: str, fp: str, key: RunKey, *, body: Any, detail: str
    ) -> None:
        payload = {
            "schema": SCHEMA_VERSION,
            "fingerprint": fp,
            "kind": kind,
            "experiment_id": key.experiment_id,
            "detail": detail,
            "key": canonical(dict(key.payload)),
            "created_at": time.time(),
            "body": body,
        }
        self._write_payload(kind, fp, payload)

    def _write_payload(self, kind: str, fp: str, payload: dict) -> None:
        path = self._path(self._check_kind(kind), fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        # No sort_keys: insertion order IS part of the stored value —
        # a replayed result must render its meta (and nested dicts) in
        # the same order a cold run would, and JSON round-trips object
        # order faithfully.  The payload builders are deterministic, so
        # file bytes are reproducible regardless.
        text = json.dumps(payload)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fp[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1


def cached_result(
    ledger: RunLedger | None,
    key: RunKey | None,
    build: "callable",
) -> "ExperimentResult":
    """The standard result-level caching wrapper every runner uses.

    With a ledger, a banked result for ``key`` short-circuits the whole
    build (including dataset generation); otherwise ``build()`` runs
    and its result is persisted.  Without a ledger this is just
    ``build()`` — runners never need two code paths.
    """
    if ledger is not None and key is not None:
        hit = ledger.get_result(key)
        if hit is not None:
            return hit
    result = build()
    if ledger is not None and key is not None:
        ledger.put_result(key, result)
    return result
