"""The ``TruthDiscoverer`` contract every zoo member satisfies.

A truth-discovery algorithm is anything that maps the integer-coded
claim encoding (:class:`~repro.core.indexing.ClaimArrays`) to a
:class:`~repro.core.date.TruthDiscoveryResult`:

- ``fit(arrays, *, warm_start=None, lean=False)`` — the array-native
  entry point.  ``warm_start`` carries a previous result whose truths
  and worker reputations may seed the iteration (algorithms without a
  warm path accept and ignore it); ``lean`` permits skipping expensive
  result tables, with the invariant that truths, confidence and
  accuracies are bit-identical to the full run.
- ``run(dataset, *, index=None, ...)`` — dataset-level convenience
  shared with the existing engines, so experiment code can treat DATE
  and any zoo member uniformly.
- ``__fingerprint__()`` — the algorithm's content identity (class +
  configuration + seed) for the run ledger: two discoverers with equal
  fingerprints compute bit-identical results on equal inputs.

Membership in the zoo is enforced by the conformance suite
(``tests/unit/test_discovery_conformance.py``): permutation
equivariance, unanimity agreement, seed determinism, lean/full and
telemetry bit-identity, and lossless ledger round-trips.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from ..core.date import TruthDiscoveryResult
from ..core.indexing import ClaimArrays, DatasetIndex
from ..types import Dataset

__all__ = ["DiscovererBase", "TruthDiscoverer"]


@runtime_checkable
class TruthDiscoverer(Protocol):
    """Structural type of a zoo member (see the module docstring)."""

    method_name: str

    def fit(
        self,
        arrays: ClaimArrays,
        *,
        warm_start: TruthDiscoveryResult | None = None,
        lean: bool = False,
    ) -> TruthDiscoveryResult: ...

    def run(
        self,
        dataset: Dataset,
        *,
        index: DatasetIndex | None = None,
        warm_start: TruthDiscoveryResult | None = None,
        lean: bool = False,
    ) -> TruthDiscoveryResult: ...

    def __fingerprint__(self) -> Any: ...


class DiscovererBase:
    """Dataset-level glue shared by every concrete zoo member.

    Subclasses implement :meth:`fit` over :class:`ClaimArrays`;
    :meth:`run` mirrors the existing engines' signature so call sites
    that hold a :class:`Dataset` (experiments, streaming, the CLI) need
    no adapter of their own.
    """

    method_name = "?"

    def fit(
        self,
        arrays: ClaimArrays,
        *,
        warm_start: TruthDiscoveryResult | None = None,
        lean: bool = False,
    ) -> TruthDiscoveryResult:
        raise NotImplementedError

    def run(
        self,
        dataset: Dataset,
        *,
        index: DatasetIndex | None = None,
        warm_start: TruthDiscoveryResult | None = None,
        lean: bool = False,
    ) -> TruthDiscoveryResult:
        if index is None:
            index = DatasetIndex(dataset)
        return self.fit(index.arrays, warm_start=warm_start, lean=lean)

    def __fingerprint__(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError
