"""Zoo adapters over the pre-existing engines (DATE, MV, NC, ED).

Each adapter delegates verbatim to the engine's own ``run`` path on the
adapter's index, so results are **bit-identical** to calling the engine
directly — pinned by ``tests/unit/test_discovery_differential.py``.
The adapters add only the uniform :class:`~repro.discovery.protocol.
TruthDiscoverer` surface: an array-native ``fit`` and a ledger
fingerprint.

``MajorityVote`` and ``NoCopier`` have no warm-start or lean path;
their adapters accept and ignore those hooks (a one-shot vote has
nothing to warm, and their full results are already lean).
"""

from __future__ import annotations

from typing import Any

from ..baselines import EnumerateDependence, MajorityVote, NoCopier
from ..core.config import DateConfig
from ..core.date import DATE, TruthDiscoveryResult
from ..core.indexing import ClaimArrays
from .protocol import DiscovererBase

__all__ = [
    "DateAdapter",
    "EnumerateDependenceAdapter",
    "MajorityVoteAdapter",
    "NoCopierAdapter",
]


class DateAdapter(DiscovererBase):
    """DATE (paper Alg. 1) behind the zoo interface."""

    method_name = "DATE"
    _engine_cls = DATE

    def __init__(self, config: DateConfig | None = None):
        self.config = config or DateConfig()
        self._engine = self._engine_cls(self.config)

    def __fingerprint__(self) -> Any:
        return {"date": self.config}

    def fit(
        self,
        arrays: ClaimArrays,
        *,
        warm_start: TruthDiscoveryResult | None = None,
        lean: bool = False,
    ) -> TruthDiscoveryResult:
        index = arrays.index
        return self._engine.run(
            index.dataset, index=index, warm_start=warm_start, lean=lean
        )

    def run(self, dataset, *, index=None, warm_start=None, lean=False):
        # Delegate dataset-level calls directly so the engine builds (or
        # reuses) the index exactly as a pre-interface call would.
        return self._engine.run(
            dataset, index=index, warm_start=warm_start, lean=lean
        )


class EnumerateDependenceAdapter(DateAdapter):
    """ED — DATE with exact dependence enumeration — behind the zoo."""

    method_name = "ED"
    _engine_cls = EnumerateDependence

    def __fingerprint__(self) -> Any:
        return {
            "date": self.config,
            "exact_enumeration_limit": self._engine.exact_enumeration_limit,
        }


class MajorityVoteAdapter(DiscovererBase):
    """One-shot majority voting behind the zoo interface."""

    method_name = "MV"

    def __init__(self):
        self._engine = MajorityVote()

    def __fingerprint__(self) -> Any:
        return {}

    def fit(
        self,
        arrays: ClaimArrays,
        *,
        warm_start: TruthDiscoveryResult | None = None,
        lean: bool = False,
    ) -> TruthDiscoveryResult:
        index = arrays.index
        return self._engine.run(index.dataset, index=index)

    def run(self, dataset, *, index=None, warm_start=None, lean=False):
        return self._engine.run(dataset, index=index)


class NoCopierAdapter(DiscovererBase):
    """NC — accuracy-only iteration — behind the zoo interface."""

    method_name = "NC"

    def __init__(self, config: DateConfig | None = None):
        self.config = config or DateConfig()
        self._engine = NoCopier(self.config)

    def __fingerprint__(self) -> Any:
        return {"date": self.config}

    def fit(
        self,
        arrays: ClaimArrays,
        *,
        warm_start: TruthDiscoveryResult | None = None,
        lean: bool = False,
    ) -> TruthDiscoveryResult:
        index = arrays.index
        return self._engine.run(index.dataset, index=index)

    def run(self, dataset, *, index=None, warm_start=None, lean=False):
        return self._engine.run(dataset, index=index)
