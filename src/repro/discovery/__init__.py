"""Truth-discovery algorithm zoo behind the :class:`TruthDiscoverer` contract.

Membership bar: the conformance suite in
``tests/unit/test_discovery_conformance.py`` — every export here passes
permutation equivariance, unanimity, seed determinism, lean/full and
telemetry bit-identity, and lossless ledger round-trips.
"""

from .adapters import (
    DateAdapter,
    EnumerateDependenceAdapter,
    MajorityVoteAdapter,
    NoCopierAdapter,
)
from .dawid_skene import FastDawidSkene, FastDawidSkeneConfig
from .lca import LatentCredibilityAnalysis, LcaConfig
from .protocol import DiscovererBase, TruthDiscoverer
from .registry import (
    ALGORITHM_NAMES,
    AlgorithmSpec,
    UnknownAlgorithmError,
    canonical_algorithm,
    list_algorithms,
    make_discoverer,
)
from .truthfinder import TruthFinder, TruthFinderConfig

__all__ = [
    "ALGORITHM_NAMES",
    "AlgorithmSpec",
    "DateAdapter",
    "DiscovererBase",
    "EnumerateDependenceAdapter",
    "FastDawidSkene",
    "FastDawidSkeneConfig",
    "LatentCredibilityAnalysis",
    "LcaConfig",
    "MajorityVoteAdapter",
    "NoCopierAdapter",
    "TruthDiscoverer",
    "TruthFinder",
    "TruthFinderConfig",
    "UnknownAlgorithmError",
    "canonical_algorithm",
    "list_algorithms",
    "make_discoverer",
]
