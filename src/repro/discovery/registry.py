"""The algorithm zoo registry: names → :class:`TruthDiscoverer` factories.

Seven members ship with the repo — the four pre-existing engines behind
adapters (DATE, MV, NC, ED) plus three numpy-native implementations
(TruthFinder, Fast Dawid–Skene, SimpleLCA).  Lookup is case-insensitive;
:func:`make_discoverer` is the single construction point used by the
``algo-accuracy`` experiment, the scenario lab, the streaming campaign
store and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.config import DateConfig
from ..errors import ReproError
from .adapters import (
    DateAdapter,
    EnumerateDependenceAdapter,
    MajorityVoteAdapter,
    NoCopierAdapter,
)
from .dawid_skene import FastDawidSkene
from .lca import LatentCredibilityAnalysis
from .protocol import TruthDiscoverer
from .truthfinder import TruthFinder

__all__ = [
    "ALGORITHM_NAMES",
    "AlgorithmSpec",
    "UnknownAlgorithmError",
    "canonical_algorithm",
    "list_algorithms",
    "make_discoverer",
]


class UnknownAlgorithmError(ReproError, KeyError):
    """Raised when an algorithm name is not in the zoo."""


@dataclass(frozen=True)
class AlgorithmSpec:
    """One zoo entry: canonical name, provenance kind, and a factory."""

    name: str
    kind: str
    summary: str
    factory: Callable[[DateConfig | None, int], TruthDiscoverer]


_SPECS: tuple[AlgorithmSpec, ...] = (
    AlgorithmSpec(
        "DATE",
        "adapter",
        "Paper Alg. 1: joint source dependence + truth EM (the reproduction target).",
        lambda date_config, seed: DateAdapter(date_config),
    ),
    AlgorithmSpec(
        "MV",
        "adapter",
        "One-shot majority voting (ties to the lexicographically first value).",
        lambda date_config, seed: MajorityVoteAdapter(),
    ),
    AlgorithmSpec(
        "NC",
        "adapter",
        "No-copier ablation: accuracy-only iteration, dependence term dropped.",
        lambda date_config, seed: NoCopierAdapter(date_config),
    ),
    AlgorithmSpec(
        "ED",
        "adapter",
        "Exact dependence enumeration over small source sets (DATE upper bound).",
        lambda date_config, seed: EnumerateDependenceAdapter(date_config),
    ),
    AlgorithmSpec(
        "TruthFinder",
        "native",
        "Yin et al.: iterative source trust x claim confidence with implication damping.",
        lambda date_config, seed: TruthFinder(seed=seed),
    ),
    AlgorithmSpec(
        "FDS",
        "native",
        "Fast Dawid-Skene: hard EM over per-worker confusion matrices.",
        lambda date_config, seed: FastDawidSkene(seed=seed),
    ),
    AlgorithmSpec(
        "LCA",
        "native",
        "SimpleLCA: one-parameter latent credibility EM (Pasternack & Roth).",
        lambda date_config, seed: LatentCredibilityAnalysis(seed=seed),
    ),
)

_BY_KEY = {spec.name.lower(): spec for spec in _SPECS}

#: Canonical names of every zoo member, in registry order.
ALGORITHM_NAMES: tuple[str, ...] = tuple(spec.name for spec in _SPECS)


def _spec(name: str) -> AlgorithmSpec:
    try:
        return _BY_KEY[name.strip().lower()]
    except KeyError:
        known = ", ".join(ALGORITHM_NAMES)
        raise UnknownAlgorithmError(
            f"unknown truth-discovery algorithm {name!r} (known: {known})"
        ) from None


def canonical_algorithm(name: str) -> str:
    """Normalize ``name`` to its canonical registry spelling."""
    return _spec(name).name


def list_algorithms() -> tuple[AlgorithmSpec, ...]:
    """Every zoo entry, in registry order."""
    return _SPECS


def make_discoverer(
    name: str,
    *,
    date_config: DateConfig | None = None,
    seed: int = 0,
) -> TruthDiscoverer:
    """Construct the zoo member called ``name`` (case-insensitive).

    ``date_config`` parameterizes the engine adapters (DATE, NC, ED);
    ``seed`` is recorded by the native members for ledger identity.
    """
    return _spec(name).factory(date_config, seed)
