"""Latent credibility analysis (SimpleLCA) via EM.

Pasternack & Roth's *simplest* latent credibility model: each worker
``i`` has one honesty parameter ``h_i``; conditioned on the truth of a
task being value ``v``, a claim asserting ``v`` has probability
``h_i`` and a claim asserting anything else ``(1 - h_i) / d_j`` (the
mass spread over the task's ``d_j`` alternative observed values).

EM over :class:`~repro.core.indexing.ClaimArrays`:

- **E-step**: with a uniform prior over a task's observed values, the
  posterior of value ``v`` is the segment softmax of
  ``Σ_{claims of v} [ln h_i - ln((1 - h_i) / d_j)]`` — the constant
  "everyone pays the penalty term" part cancels inside the softmax, so
  each iteration is one ``bincount`` over claim groups;
- **M-step**: ``h_i`` becomes the mean posterior of worker ``i``'s
  claims (clamped away from {0, 1} so the logs stay finite).

Truths are the per-task posterior argmax (ties to the smallest value
code).  Deterministic from its uniform-honesty initialization; ``seed``
is recorded in the fingerprint and reserved for randomized restarts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from ..core.date import TruthDiscoveryResult, build_result, iterate_truths
from ..core.engine import _segment_softmax, dense_accuracy, posterior_table, support_table
from ..core.indexing import ClaimArrays, segment_first_argmax_code
from ..errors import ConfigurationError
from .protocol import DiscovererBase

__all__ = ["LatentCredibilityAnalysis", "LcaConfig"]


@dataclass(frozen=True)
class LcaConfig:
    """SimpleLCA hyperparameters."""

    #: Initial worker honesty ``h_0``.
    initial_honesty: float = 0.8
    #: Iteration cap of the EM loop.
    max_iterations: int = 100
    #: Honesty is clamped into this open interval so ``ln h`` and
    #: ``ln(1 - h)`` stay finite.
    honesty_clamp: tuple[float, float] = (1e-4, 1.0 - 1e-4)

    def __post_init__(self) -> None:
        if not 0.0 < self.initial_honesty < 1.0:
            raise ConfigurationError(
                f"initial_honesty must be in (0, 1), got {self.initial_honesty}"
            )
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        lo, hi = self.honesty_clamp
        if not 0.0 < lo < hi < 1.0:
            raise ConfigurationError(
                "honesty_clamp must satisfy 0 < lo < hi < 1, "
                f"got {self.honesty_clamp}"
            )

    def evolve(self, **changes: Any) -> "LcaConfig":
        """Return a copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)


class LatentCredibilityAnalysis(DiscovererBase):
    """SimpleLCA EM over CSR claim arrays."""

    method_name = "LCA"

    def __init__(self, config: LcaConfig | None = None, *, seed: int = 0):
        self.config = config or LcaConfig()
        self.seed = seed

    def __fingerprint__(self) -> Any:
        return {"config": self.config, "seed": self.seed}

    def fit(
        self,
        arrays: ClaimArrays,
        *,
        warm_start: TruthDiscoveryResult | None = None,
        lean: bool = False,
    ) -> TruthDiscoveryResult:
        cfg = self.config
        index = arrays.index
        n_workers = index.n_workers
        lo, hi = cfg.honesty_clamp

        worker_counts = np.bincount(arrays.claim_worker, minlength=n_workers)
        honesty = np.full(n_workers, cfg.initial_honesty, dtype=np.float64)
        if warm_start is not None and warm_start.worker_accuracy:
            for i, worker_id in enumerate(index.worker_ids):
                honesty[i] = warm_start.worker_accuracy.get(
                    worker_id, cfg.initial_honesty
                )
        np.clip(honesty, lo, hi, out=honesty)

        # d_j: alternative observed values per task (>= 1 so the
        # penalty log stays finite; a one-value task has no competitor
        # and its softmax is 1 regardless).
        groups_per_task = (
            arrays.task_group_ptr[1:] - arrays.task_group_ptr[:-1]
        )
        log_alternatives = np.log(np.maximum(groups_per_task - 1, 1).astype(np.float64))

        state: dict[str, np.ndarray] = {"posterior": np.zeros(arrays.n_groups)}

        def step(codes: np.ndarray) -> np.ndarray:
            # E-step: per-claim log odds of "this claim is the truth"
            # against the spread-out false mass.
            h = honesty[arrays.claim_worker]
            odds = (
                np.log(h)
                - np.log1p(-h)
                + log_alternatives[arrays.claim_task]
            )
            scores = np.bincount(
                arrays.claim_group, weights=odds, minlength=arrays.n_groups
            )
            posterior = _segment_softmax(
                scores, arrays.group_task, arrays.task_group_ptr
            )
            state["posterior"] = posterior
            # M-step: honesty = mean claim posterior per worker.
            sums = np.bincount(
                arrays.claim_worker,
                weights=posterior[arrays.claim_group],
                minlength=n_workers,
            )
            new_honesty = np.divide(
                sums,
                worker_counts,
                out=np.full(n_workers, cfg.initial_honesty),
                where=worker_counts > 0,
            )
            np.clip(new_honesty, lo, hi, out=honesty)
            return segment_first_argmax_code(
                posterior,
                arrays.group_task,
                arrays.group_code,
                arrays.task_group_ptr,
            )

        # Key the fixed point on (truths, honesty) jointly — with
        # uniform initial honesty the first E-step reproduces majority
        # vote, and codes alone would declare convergence before the
        # M-step's refined honesty ever feeds back.  Honesty is rounded
        # so the EM counts as converged at 1e-8 agreement.
        codes, iterations, converged = iterate_truths(
            arrays.majority_codes(),
            step,
            max_iterations=cfg.max_iterations,
            state_key=lambda c: c.tobytes() + np.round(honesty, 8).tobytes(),
            label=self.method_name,
        )
        posterior = state["posterior"]
        return build_result(
            index,
            arrays.truth_values(codes),
            dense_accuracy(arrays, honesty[arrays.claim_worker]),
            posterior_table(arrays, posterior),
            support_table(arrays, posterior),
            dependence={},
            iterations=iterations,
            converged=converged,
            method=self.method_name,
        )
