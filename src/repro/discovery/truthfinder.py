"""TruthFinder: iterative source trust × claim confidence (Yin et al.).

The classic web-source truth-discovery fixed point, vectorized over
:class:`~repro.core.indexing.ClaimArrays`:

1. each worker's *trust score* is ``τ_i = -ln(1 - t_i)`` so that
   independent supporters combine additively;
2. each value group's raw confidence score is the sum of its providers'
   trust scores, adjusted by the *implication* term: categorical values
   of one task are mutually exclusive, so every competing group's score
   counts against a value with weight ``ρ`` (the influence factor);
3. the adjusted score maps to a confidence in (0, 1) through a damped
   logistic (``γ``), and each worker's trust becomes the mean
   confidence of its claims.

Truths are the per-task confidence argmax (ties to the smallest value
code, like every engine in this repo), and the loop runs under the
shared :func:`~repro.core.date.iterate_truths` convergence harness.
The computation is deterministic; the ``seed`` parameter is recorded in
the fingerprint and reserved for randomized restarts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from ..core.date import TruthDiscoveryResult, build_result, iterate_truths
from ..core.engine import dense_accuracy, posterior_table, support_table
from ..core.indexing import ClaimArrays, segment_first_argmax_code
from ..errors import ConfigurationError
from .protocol import DiscovererBase

__all__ = ["TruthFinder", "TruthFinderConfig"]


@dataclass(frozen=True)
class TruthFinderConfig:
    """TruthFinder hyperparameters (defaults follow the original paper)."""

    #: Initial worker trustworthiness ``t_0``.
    initial_trust: float = 0.9
    #: Damping factor ``γ`` of the logistic squashing the adjusted score.
    dampening: float = 0.3
    #: Weight ``ρ`` of the mutual-exclusion implication between
    #: competing values of one task.
    influence: float = 0.5
    #: Iteration cap of the trust/confidence fixed point.
    max_iterations: int = 50
    #: Trust is clamped into this open interval so ``ln(1 - t)`` and the
    #: logistic stay finite.
    trust_clamp: tuple[float, float] = (1e-6, 1.0 - 1e-6)

    def __post_init__(self) -> None:
        if not 0.0 < self.initial_trust < 1.0:
            raise ConfigurationError(
                f"initial_trust must be in (0, 1), got {self.initial_trust}"
            )
        if self.dampening <= 0.0:
            raise ConfigurationError(
                f"dampening must be > 0, got {self.dampening}"
            )
        if not 0.0 <= self.influence <= 1.0:
            raise ConfigurationError(
                f"influence must be in [0, 1], got {self.influence}"
            )
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        lo, hi = self.trust_clamp
        if not 0.0 < lo < hi < 1.0:
            raise ConfigurationError(
                f"trust_clamp must satisfy 0 < lo < hi < 1, got {self.trust_clamp}"
            )

    def evolve(self, **changes: Any) -> "TruthFinderConfig":
        """Return a copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)


class TruthFinder(DiscovererBase):
    """The TruthFinder fixed point over CSR claim arrays."""

    method_name = "TruthFinder"

    def __init__(self, config: TruthFinderConfig | None = None, *, seed: int = 0):
        self.config = config or TruthFinderConfig()
        self.seed = seed

    def __fingerprint__(self) -> Any:
        return {"config": self.config, "seed": self.seed}

    def fit(
        self,
        arrays: ClaimArrays,
        *,
        warm_start: TruthDiscoveryResult | None = None,
        lean: bool = False,
    ) -> TruthDiscoveryResult:
        cfg = self.config
        index = arrays.index
        n_workers = index.n_workers
        lo, hi = cfg.trust_clamp

        worker_counts = np.bincount(arrays.claim_worker, minlength=n_workers)
        trust = np.full(n_workers, cfg.initial_trust, dtype=np.float64)
        if warm_start is not None and warm_start.worker_accuracy:
            for i, worker_id in enumerate(index.worker_ids):
                trust[i] = warm_start.worker_accuracy.get(
                    worker_id, cfg.initial_trust
                )
        np.clip(trust, lo, hi, out=trust)

        state: dict[str, np.ndarray] = {"confidence": np.zeros(arrays.n_groups)}

        def step(codes: np.ndarray) -> np.ndarray:
            # (1) additive trust scores per value group.
            tau = -np.log1p(-trust)
            score = np.bincount(
                arrays.claim_group,
                weights=tau[arrays.claim_worker],
                minlength=arrays.n_groups,
            )
            # (2) mutual-exclusion implication: competitors' scores
            # subtract with weight ρ (imp(v' -> v) = -1 for v' != v).
            task_total = np.bincount(
                arrays.group_task, weights=score, minlength=index.n_tasks
            )
            adjusted = score - cfg.influence * (
                task_total[arrays.group_task] - score
            )
            # (3) damped logistic, written via tanh so large scores
            # never overflow exp().
            confidence = 0.5 * (1.0 + np.tanh(0.5 * cfg.dampening * adjusted))
            state["confidence"] = confidence
            # Trust update: mean claim confidence per worker.
            sums = np.bincount(
                arrays.claim_worker,
                weights=confidence[arrays.claim_group],
                minlength=n_workers,
            )
            new_trust = np.divide(
                sums,
                worker_counts,
                out=np.full(n_workers, cfg.initial_trust),
                where=worker_counts > 0,
            )
            np.clip(new_trust, lo, hi, out=trust)
            return segment_first_argmax_code(
                confidence,
                arrays.group_task,
                arrays.group_code,
                arrays.task_group_ptr,
            )

        # The fixed point is over (truths, trust) jointly: with uniform
        # initial trust the first truth assignment equals majority vote,
        # so keying on codes alone would stop before the updated trust
        # is ever used.  Trust is rounded so the float iteration counts
        # as converged once successive vectors agree to 1e-8.
        codes, iterations, converged = iterate_truths(
            arrays.majority_codes(),
            step,
            max_iterations=cfg.max_iterations,
            state_key=lambda c: c.tobytes() + np.round(trust, 8).tobytes(),
            label=self.method_name,
        )
        confidence = state["confidence"]
        return build_result(
            index,
            arrays.truth_values(codes),
            dense_accuracy(arrays, trust[arrays.claim_worker]),
            posterior_table(arrays, confidence),
            support_table(arrays, confidence),
            dependence={},
            iterations=iterations,
            converged=converged,
            method=self.method_name,
        )
