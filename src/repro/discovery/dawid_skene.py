"""Fast Dawid–Skene: hard EM over per-worker confusion matrices.

The Dawid–Skene model with hard (MAP) assignments in the E-step — the
"Fast Dawid–Skene" variant (Sinha et al. 2018) — vectorized over
:class:`~repro.core.indexing.ClaimArrays`:

- a shared label vocabulary is built from every observed claim value
  (sorted, so an order-preserving relabeling is a no-op);
- **M-step**: from the current hard truth assignments, estimate class
  priors and one smoothed ``L × L`` confusion matrix per worker
  (``C_i[l, l'] = P(worker i claims l' | truth is l)``);
- **E-step**: score every *observed* value of a task by
  ``log prior + Σ log C_i[candidate, claimed]`` over the task's claims
  and assign the argmax (ties to the smallest value code).

The candidate × claim cross product is materialized once per fit as a
flat index pair (groups repeated by their task's claim count), so each
iteration is a gather plus a ``bincount`` — no Python loops.  The
computation is deterministic from its majority-vote initialization;
``seed`` is recorded in the fingerprint and reserved for randomized
restarts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from ..core.date import TruthDiscoveryResult, build_result, iterate_truths
from ..core.engine import _segment_softmax, dense_accuracy, posterior_table, support_table
from ..core.indexing import ClaimArrays, _concat_ranges, segment_first_argmax_code
from ..errors import ConfigurationError
from .protocol import DiscovererBase

__all__ = ["FastDawidSkene", "FastDawidSkeneConfig"]


@dataclass(frozen=True)
class FastDawidSkeneConfig:
    """Fast Dawid–Skene hyperparameters."""

    #: Iteration cap of the hard-EM loop.
    max_iterations: int = 50
    #: Additive (Laplace) smoothing of the confusion-matrix counts —
    #: keeps every log-likelihood finite and unseen labels plausible.
    smoothing: float = 0.1
    #: Additive smoothing of the class-prior counts.
    prior_smoothing: float = 0.1

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.smoothing <= 0.0:
            raise ConfigurationError(
                f"smoothing must be > 0, got {self.smoothing}"
            )
        if self.prior_smoothing <= 0.0:
            raise ConfigurationError(
                f"prior_smoothing must be > 0, got {self.prior_smoothing}"
            )

    def evolve(self, **changes: Any) -> "FastDawidSkeneConfig":
        """Return a copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)


class FastDawidSkene(DiscovererBase):
    """Hard-EM Dawid–Skene over CSR claim arrays."""

    method_name = "FDS"

    def __init__(
        self, config: FastDawidSkeneConfig | None = None, *, seed: int = 0
    ):
        self.config = config or FastDawidSkeneConfig()
        self.seed = seed

    def __fingerprint__(self) -> Any:
        return {"config": self.config, "seed": self.seed}

    def fit(
        self,
        arrays: ClaimArrays,
        *,
        warm_start: TruthDiscoveryResult | None = None,
        lean: bool = False,
    ) -> TruthDiscoveryResult:
        cfg = self.config
        index = arrays.index
        n_tasks, n_workers = index.n_tasks, index.n_workers
        n_groups = arrays.n_groups

        # Shared label vocabulary over every observed value (sorted).
        vocab = np.unique(np.asarray(arrays.group_values, dtype=object))
        n_labels = max(len(vocab), 1)
        group_label = np.searchsorted(vocab, arrays.group_values).astype(np.int64)
        claim_label = group_label[arrays.claim_group]

        # Candidate × claim cross product, one row per (group, claim of
        # the group's task): group g repeats m_j times, paired with its
        # task's claim positions.
        claims_per_task = arrays.task_ptr[1:] - arrays.task_ptr[:-1]
        m_of_group = claims_per_task[arrays.group_task]
        cand_group = np.repeat(np.arange(n_groups, dtype=np.int64), m_of_group)
        row_claim = _concat_ranges(arrays.task_ptr[arrays.group_task], m_of_group)

        # The group index of each answered task's assigned truth:
        # task_group_ptr[j] + code (codes enumerate a task's groups).
        def truth_groups(codes: np.ndarray) -> np.ndarray:
            answered = np.flatnonzero(codes >= 0)
            return answered, arrays.task_group_ptr[answered] + codes[answered]

        state: dict[str, np.ndarray] = {
            "scores": np.zeros(n_groups),
            "confusion": np.full(
                (n_workers, n_labels, n_labels), 1.0 / n_labels
            ),
            "task_label": np.full(n_tasks, -1, dtype=np.int64),
        }

        def step(codes: np.ndarray) -> np.ndarray:
            answered, t_groups = truth_groups(codes)
            task_label = np.full(n_tasks, -1, dtype=np.int64)
            task_label[answered] = group_label[t_groups]

            # M-step: class priors + per-worker confusion matrices.
            prior_counts = np.bincount(
                task_label[answered], minlength=n_labels
            ).astype(np.float64)
            log_prior = np.log(
                (prior_counts + cfg.prior_smoothing)
                / (prior_counts.sum() + cfg.prior_smoothing * n_labels)
            )
            flat = (
                arrays.claim_worker * (n_labels * n_labels)
                + task_label[arrays.claim_task] * n_labels
                + claim_label
            )
            confusion = np.bincount(
                flat, minlength=n_workers * n_labels * n_labels
            ).astype(np.float64)
            confusion = confusion.reshape(n_workers, n_labels, n_labels)
            confusion += cfg.smoothing
            confusion /= confusion.sum(axis=2, keepdims=True)

            # E-step: log-likelihood of every observed candidate value.
            log_confusion = np.log(confusion)
            loglik = log_confusion[
                arrays.claim_worker[row_claim],
                group_label[cand_group],
                claim_label[row_claim],
            ]
            scores = (
                np.bincount(cand_group, weights=loglik, minlength=n_groups)
                + log_prior[group_label]
            )
            state["scores"] = scores
            state["confusion"] = confusion
            state["task_label"] = task_label
            return segment_first_argmax_code(
                scores, arrays.group_task, arrays.group_code, arrays.task_group_ptr
            )

        initial = arrays.majority_codes()
        if warm_start is not None and warm_start.truths:
            warm = arrays.truth_codes(
                [warm_start.truths.get(tid) for tid in index.task_ids]
            )
            initial = np.where(warm >= 0, warm, initial)

        codes, iterations, converged = iterate_truths(
            initial,
            step,
            max_iterations=cfg.max_iterations,
            state_key=lambda c: c.tobytes(),
            label=self.method_name,
        )

        # Per-claim accuracy: the worker's estimated probability of
        # reporting the truth on that task, C_i[truth, truth].
        task_label = state["task_label"]
        confusion = state["confusion"]
        claim_truth = task_label[arrays.claim_task]
        claim_acc = confusion[arrays.claim_worker, claim_truth, claim_truth]
        posterior = _segment_softmax(
            state["scores"], arrays.group_task, arrays.task_group_ptr
        )
        return build_result(
            index,
            arrays.truth_values(codes),
            dense_accuracy(arrays, claim_acc),
            posterior_table(arrays, posterior),
            support_table(arrays, posterior),
            dependence={},
            iterations=iterations,
            converged=converged,
            method=self.method_name,
        )
