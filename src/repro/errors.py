"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers embedding the library can catch a single base class.  The
subclasses mirror the three layers of the system: configuration, data,
and mechanism execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """A configuration value is out of range or inconsistent.

    Raised eagerly at construction time (for example a copy probability
    outside ``(0, 1)``), never in the middle of an experiment.
    """


class DataFormatError(ReproError, ValueError):
    """A dataset violates the claim-matrix schema.

    Examples: a claim referencing an unknown worker or task, a value
    outside the task's declared domain, or a duplicate (worker, task)
    claim.
    """


class MetricMismatchError(ReproError, ValueError):
    """Instance rows of one run disagree on their metric names.

    Every instance of a run must report exactly the same metrics; a
    ragged table means the metric function is nondeterministic in its
    *shape*, which would silently corrupt aggregation.  The message
    names the first offending instance and the missing/unexpected
    metrics.
    """


class InfeasibleCoverageError(ReproError, RuntimeError):
    """The SOAC instance cannot be covered by the available workers.

    Raised by the auction layer when the summed accuracies of all
    bidders are below the accuracy requirement of at least one task.
    The offending task ids are carried in :attr:`task_ids`.
    """

    def __init__(self, task_ids: tuple[str, ...], message: str | None = None):
        self.task_ids = tuple(task_ids)
        if message is None:
            listed = ", ".join(self.task_ids[:5])
            suffix = ", ..." if len(self.task_ids) > 5 else ""
            message = (
                "accuracy requirements cannot be met for tasks: "
                f"{listed}{suffix}"
            )
        super().__init__(message)


class ConvergenceWarning(UserWarning):
    """DATE stopped at the iteration cap without the truth stabilizing."""


class UnknownExperimentError(ReproError, KeyError):
    """An experiment id is not present in the experiment registry."""
