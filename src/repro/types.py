"""Core data model: tasks, workers, claims, bids, and datasets.

The vocabulary follows the paper (Sec. II):

- a :class:`Task` is a question ``t_j`` with an accuracy requirement
  ``Θ_j`` (the least confidence needed to discover its truth) and a
  platform value ``V_j``;
- a :class:`WorkerProfile` describes worker ``i``: private cost ``c_i``
  and — for synthetic data only — the generative ground truth about the
  worker (reliability, whether it is a copier, and its copy sources);
- a *claim* is the single value worker ``i`` submitted for task ``t_j``;
- a :class:`Bid` is the triple ``B_i = (T_i, b_i, D_i)`` a worker
  submits to the reverse auction (its data ``D_i`` lives in the shared
  :class:`Dataset`);
- a :class:`Dataset` bundles tasks, workers and claims, validates them,
  and exposes the derived views (claims by task / by worker) that the
  algorithms consume.

Ground-truth fields (``Task.truth``, ``WorkerProfile.reliability`` …)
exist for data generation and evaluation only; no algorithm in
:mod:`repro.core` or :mod:`repro.auction` reads them.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, replace
from functools import cached_property

from .errors import ConfigurationError, DataFormatError

__all__ = ["Task", "WorkerProfile", "Bid", "Dataset"]


@dataclass(frozen=True, slots=True)
class Task:
    """A crowdsourcing task ``t_j``.

    Parameters
    ----------
    task_id:
        Unique identifier.
    domain:
        The admissible answer values.  An empty tuple means an *open*
        domain: any string claim is accepted and the number of false
        values is inferred from the data.  When ``truth`` is set and the
        domain is closed, the truth must be a member of the domain.
    requirement:
        Accuracy requirement ``Θ_j`` — the summed worker accuracy the
        auction must cover for this task (Eq. 5).
    value:
        The platform's value ``V_j`` for completing this task; only the
        platform-utility accounting reads it.
    truth:
        Ground-truth answer, if known.  Used by precision metrics and by
        synthetic generators; never by the estimation algorithms.
    """

    task_id: str
    domain: tuple[str, ...] = ()
    requirement: float = 1.0
    value: float = 0.0
    truth: str | None = None

    def __post_init__(self) -> None:
        if not self.task_id:
            raise DataFormatError("task_id must be a non-empty string")
        if len(set(self.domain)) != len(self.domain):
            raise DataFormatError(f"task {self.task_id}: duplicate domain values")
        if self.requirement < 0:
            raise ConfigurationError(
                f"task {self.task_id}: requirement must be >= 0, got {self.requirement}"
            )
        if self.domain and self.truth is not None and self.truth not in self.domain:
            raise DataFormatError(
                f"task {self.task_id}: truth {self.truth!r} not in domain"
            )

    @property
    def num_false(self) -> int:
        """``num_j`` — the number of false values in a closed domain.

        Open-domain tasks return 0 here; the dataset index substitutes
        the observed count (see ``DatasetIndex.num_false``).
        """
        return max(len(self.domain) - 1, 0)

    def with_requirement(self, requirement: float) -> "Task":
        """Return a copy of the task with a different ``Θ_j``."""
        return replace(self, requirement=requirement)


@dataclass(frozen=True, slots=True)
class WorkerProfile:
    """A worker ``i`` with its private cost and generative ground truth.

    ``reliability``, ``is_copier``, ``sources`` and ``copy_prob``
    describe how synthetic data was generated; the estimation algorithms
    must infer these quantities, never read them.
    """

    worker_id: str
    cost: float = 1.0
    reliability: float = 0.7
    is_copier: bool = False
    sources: tuple[str, ...] = ()
    copy_prob: float = 0.0

    def __post_init__(self) -> None:
        if not self.worker_id:
            raise DataFormatError("worker_id must be a non-empty string")
        if self.cost < 0:
            raise ConfigurationError(
                f"worker {self.worker_id}: cost must be >= 0, got {self.cost}"
            )
        if not 0.0 <= self.reliability <= 1.0:
            raise ConfigurationError(
                f"worker {self.worker_id}: reliability must be in [0, 1]"
            )
        if not 0.0 <= self.copy_prob <= 1.0:
            raise ConfigurationError(
                f"worker {self.worker_id}: copy_prob must be in [0, 1]"
            )
        if self.is_copier and not self.sources:
            raise ConfigurationError(
                f"worker {self.worker_id}: a copier must declare at least one source"
            )
        if self.worker_id in self.sources:
            raise ConfigurationError(
                f"worker {self.worker_id}: a worker cannot copy from itself"
            )

    def with_cost(self, cost: float) -> "WorkerProfile":
        """Return a copy of the profile with a different private cost."""
        return replace(self, cost=cost)


@dataclass(frozen=True, slots=True)
class Bid:
    """A sealed bid ``B_i = (T_i, b_i)``; the data ``D_i`` lives in the dataset."""

    worker_id: str
    task_ids: frozenset[str]
    price: float

    def __post_init__(self) -> None:
        if self.price < 0:
            raise ConfigurationError(
                f"bid of worker {self.worker_id}: price must be >= 0"
            )
        if not self.task_ids:
            raise ConfigurationError(
                f"bid of worker {self.worker_id}: task set must be non-empty"
            )


@dataclass(frozen=True)
class Dataset:
    """An immutable snapshot of a crowdsourcing campaign.

    Parameters
    ----------
    tasks:
        The published task set ``T`` (order defines task index order).
    workers:
        The worker set ``W``.
    claims:
        Mapping ``(worker_id, task_id) -> value``: the data ``D``
        submitted by all workers.  Each worker submits at most one value
        per task.

    The constructor validates referential integrity (claims must point
    at known workers/tasks, closed-domain values must be admissible) and
    the derived per-task / per-worker views are cached.
    """

    tasks: tuple[Task, ...]
    workers: tuple[WorkerProfile, ...]
    claims: Mapping[tuple[str, str], str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tasks", tuple(self.tasks))
        object.__setattr__(self, "workers", tuple(self.workers))
        object.__setattr__(self, "claims", dict(self.claims))
        task_ids = [t.task_id for t in self.tasks]
        worker_ids = [w.worker_id for w in self.workers]
        if len(set(task_ids)) != len(task_ids):
            raise DataFormatError("duplicate task ids in dataset")
        if len(set(worker_ids)) != len(worker_ids):
            raise DataFormatError("duplicate worker ids in dataset")
        task_by_id = {t.task_id: t for t in self.tasks}
        worker_set = set(worker_ids)
        for (worker_id, task_id), value in self.claims.items():
            if worker_id not in worker_set:
                raise DataFormatError(f"claim references unknown worker {worker_id!r}")
            task = task_by_id.get(task_id)
            if task is None:
                raise DataFormatError(f"claim references unknown task {task_id!r}")
            if not isinstance(value, str) or not value:
                raise DataFormatError(
                    f"claim ({worker_id}, {task_id}): value must be a non-empty string"
                )
            if task.domain and value not in task.domain:
                raise DataFormatError(
                    f"claim ({worker_id}, {task_id}): value {value!r} "
                    "not in the task's closed domain"
                )
        for worker in self.workers:
            for source in worker.sources:
                if source not in worker_set:
                    raise DataFormatError(
                        f"worker {worker.worker_id} copies from unknown "
                        f"worker {source!r}"
                    )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @cached_property
    def task_by_id(self) -> dict[str, Task]:
        """Task lookup by id."""
        return {t.task_id: t for t in self.tasks}

    @cached_property
    def worker_by_id(self) -> dict[str, WorkerProfile]:
        """Worker lookup by id."""
        return {w.worker_id: w for w in self.workers}

    @cached_property
    def claims_by_task(self) -> dict[str, dict[str, str]]:
        """``task_id -> {worker_id: value}`` for every task (empty dict if none)."""
        view: dict[str, dict[str, str]] = {t.task_id: {} for t in self.tasks}
        for (worker_id, task_id), value in self.claims.items():
            view[task_id][worker_id] = value
        return view

    @cached_property
    def claims_by_worker(self) -> dict[str, dict[str, str]]:
        """``worker_id -> {task_id: value}`` for every worker (empty dict if none)."""
        view: dict[str, dict[str, str]] = {w.worker_id: {} for w in self.workers}
        for (worker_id, task_id), value in self.claims.items():
            view[worker_id][task_id] = value
        return view

    def value_groups(self, task_id: str) -> dict[str, frozenset[str]]:
        """``value -> workers claiming it`` for one task (``W_v^j`` in the paper)."""
        groups: dict[str, set[str]] = {}
        for worker_id, value in self.claims_by_task[task_id].items():
            groups.setdefault(value, set()).add(worker_id)
        return {value: frozenset(ws) for value, ws in groups.items()}

    @property
    def n_tasks(self) -> int:
        """``m`` — number of tasks."""
        return len(self.tasks)

    @property
    def n_workers(self) -> int:
        """``n`` — number of workers."""
        return len(self.workers)

    @property
    def n_claims(self) -> int:
        """Total number of (worker, task) claims."""
        return len(self.claims)

    @cached_property
    def truths(self) -> dict[str, str]:
        """Ground truths for the tasks that declare one (evaluation only)."""
        return {t.task_id: t.truth for t in self.tasks if t.truth is not None}

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def subset(
        self,
        task_ids: Iterable[str] | None = None,
        worker_ids: Iterable[str] | None = None,
    ) -> "Dataset":
        """Restrict the dataset to the given tasks and/or workers.

        Used by the parameter sweeps (for example Fig. 4 grows the task
        count by taking prefixes of the full dataset).  Copy sources that
        fall outside the kept worker set are dropped from the profiles so
        the subset remains self-consistent.
        """
        keep_tasks = set(task_ids) if task_ids is not None else {
            t.task_id for t in self.tasks
        }
        keep_workers = set(worker_ids) if worker_ids is not None else {
            w.worker_id for w in self.workers
        }
        unknown_tasks = keep_tasks - {t.task_id for t in self.tasks}
        if unknown_tasks:
            raise DataFormatError(f"subset references unknown tasks: {unknown_tasks}")
        unknown_workers = keep_workers - {w.worker_id for w in self.workers}
        if unknown_workers:
            raise DataFormatError(
                f"subset references unknown workers: {unknown_workers}"
            )
        tasks = tuple(t for t in self.tasks if t.task_id in keep_tasks)
        workers = []
        for worker in self.workers:
            if worker.worker_id not in keep_workers:
                continue
            sources = tuple(s for s in worker.sources if s in keep_workers)
            if worker.is_copier and not sources:
                worker = replace(worker, is_copier=False, sources=(), copy_prob=0.0)
            else:
                worker = replace(worker, sources=sources)
            workers.append(worker)
        claims = {
            (w, t): v
            for (w, t), v in self.claims.items()
            if w in keep_workers and t in keep_tasks
        }
        return Dataset(tasks=tasks, workers=tuple(workers), claims=claims)

    def with_claims(self, claims: Mapping[tuple[str, str], str]) -> "Dataset":
        """Return a copy of the dataset with a replaced claim matrix."""
        return Dataset(tasks=self.tasks, workers=self.workers, claims=claims)

    def bids(self, prices: Mapping[str, float] | None = None) -> list[Bid]:
        """Build the sealed-bid profile ``B``.

        Each worker bids for exactly the tasks it submitted data for.
        ``prices`` overrides individual bid prices; by default workers
        bid their true private cost (the truthful strategy, which the
        mechanism analysis shows is dominant).  Workers with no claims
        submit no bid.
        """
        prices = dict(prices or {})
        bids = []
        for worker in self.workers:
            answered = self.claims_by_worker[worker.worker_id]
            if not answered:
                continue
            price = prices.get(worker.worker_id, worker.cost)
            bids.append(
                Bid(
                    worker_id=worker.worker_id,
                    task_ids=frozenset(answered),
                    price=price,
                )
            )
        return bids
