"""Auction-engine benchmarks: batched selection + prefix-shared payments.

The acceptance gate of the vectorized auction engine lives here: at a
500-worker / 200-task SOAC instance the payment-determination phase —
the O(W³·T) hot path of Alg. 2, one full greedy rerun per winner in the
scalar reference — must run at least 5× faster through the prefix-shared
engine, while producing *exactly* the same winners, selection order,
payments, and monopolists.

The ``speedup`` gate is hardware-sensitive (wall-clock ratio), so CI
excludes it with ``-k "not speedup"``; the exactness assertions run at
full scale everywhere.  Run the gate locally via::

    pytest benchmarks/test_auction_bench.py -k speedup -s
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import ReverseAuction, SOACInstance
from repro.auction.engine import batched_greedy_cover, run_auction, vectorized_cover
from repro.auction.reverse_auction import greedy_cover, reference_payments

#: The gate scale from the issue: 500 workers, 200 tasks.
GATE_WORKERS = 500
GATE_TASKS = 200
GATE_SEED = 2024


def sparse_instance(
    n_workers: int, n_tasks: int, *, seed: int, density: float = 0.12
) -> SOACInstance:
    """A synthetic auction-scale SOAC instance.

    Each worker bids on ~``density`` of the tasks with accuracies in
    [0.3, 0.95]; requirements follow the paper's U[2, 4] capped at 80%
    of available accuracy so the instance is always feasible.
    """
    rng = np.random.default_rng(seed)
    accuracy = np.where(
        rng.random((n_workers, n_tasks)) < density,
        rng.uniform(0.3, 0.95, (n_workers, n_tasks)),
        0.0,
    )
    bids = rng.uniform(1.0, 10.0, n_workers)
    requirements = np.minimum(
        rng.uniform(2.0, 4.0, n_tasks), 0.8 * accuracy.sum(axis=0)
    )
    return SOACInstance(
        worker_ids=tuple(f"w{i}" for i in range(n_workers)),
        task_ids=tuple(f"t{j}" for j in range(n_tasks)),
        requirements=requirements,
        accuracy=accuracy,
        bids=bids,
        costs=bids.copy(),
        task_values=np.full(n_tasks, 5.0),
    )


@pytest.fixture(scope="module")
def gate_instance() -> SOACInstance:
    return sparse_instance(GATE_WORKERS, GATE_TASKS, seed=GATE_SEED)


def test_backends_exactly_equal_at_gate_scale(gate_instance):
    """Winners, order, payments, monopolists: bit-for-bit equal."""
    reference = ReverseAuction(backend="reference").run(gate_instance)
    vectorized = ReverseAuction().run(gate_instance)
    assert vectorized.winner_ids == reference.winner_ids
    assert vectorized.winner_indexes == reference.winner_indexes
    assert vectorized.monopolists == reference.monopolists
    assert set(vectorized.payments) == set(reference.payments)
    for worker_id, payment in reference.payments.items():
        assert vectorized.payments[worker_id] == payment, worker_id
    assert vectorized.social_cost == reference.social_cost
    assert vectorized.total_payment == reference.total_payment


def test_selection_traces_equal_at_gate_scale(gate_instance):
    """The batched cover replays the scalar greedy round for round."""
    scalar = greedy_cover(gate_instance)
    batched = vectorized_cover(gate_instance)
    assert [w for w, _ in scalar] == [w for w, _ in batched]
    for (_, res_scalar), (_, res_batched) in zip(scalar, batched):
        assert np.array_equal(res_scalar, res_batched)


def test_payment_phase_speedup_gate(gate_instance):
    """The acceptance gate: vectorized payment phase >= 5x the reference.

    Times only payment determination (selection is timed separately by
    the pytest-benchmark cases below): the reference reruns the full
    greedy per winner, the engine forks each rerun from the memoized
    shared prefix.  Best-of-N to shrug off scheduler noise.
    """

    def best_of(fn, rounds: int) -> float:
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return min(timings)

    selection = greedy_cover(gate_instance)
    trace = batched_greedy_cover(gate_instance)  # warm cache + engine

    t_reference = best_of(
        lambda: reference_payments(gate_instance, selection), rounds=2
    )
    # run_auction includes selection; subtract a fresh selection timing
    # so both sides measure payments only.
    t_cover = best_of(lambda: batched_greedy_cover(gate_instance), rounds=3)
    t_vectorized = (
        best_of(lambda: run_auction(gate_instance), rounds=3) - t_cover
    )
    speedup = t_reference / t_vectorized
    print(
        f"\npayment phase at {GATE_WORKERS}w/{GATE_TASKS}t "
        f"({trace.n_rounds} winners): reference {t_reference * 1e3:.0f} ms, "
        f"vectorized {t_vectorized * 1e3:.0f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"vectorized payment phase only {speedup:.1f}x faster than reference"
    )


def test_vectorized_selection(benchmark, gate_instance):
    gate_instance.sparse_accuracy  # build the CSR index once, outside timing
    benchmark.pedantic(
        lambda: batched_greedy_cover(gate_instance), rounds=3, iterations=1
    )


def test_vectorized_full_auction(benchmark, gate_instance):
    benchmark.pedantic(
        lambda: ReverseAuction().run(gate_instance), rounds=3, iterations=1
    )


def test_reference_selection(benchmark, gate_instance):
    benchmark.pedantic(
        lambda: greedy_cover(gate_instance), rounds=3, iterations=1
    )
