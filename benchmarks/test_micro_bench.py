"""Micro-benchmarks of the individual pipeline stages.

Not a paper artifact — these isolate where DATE and the auction spend
their time (dependence detection, independence ordering, posterior
update, winner selection, payment determination), which backs the
complexity discussion in Lemma 1 and DESIGN.md §7.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import DATE, ReverseAuction, SOACInstance
from repro.core import DateConfig, DatasetIndex
from repro.core.accuracy import update_accuracy_matrix, value_posteriors
from repro.core.dependence import compute_pairwise_dependence
from repro.core.engine import (
    accuracy_flat,
    independence_flat,
    pairwise_dependence_arrays,
    plain_posterior_groups,
)
from repro.core.falsedist import UniformFalseValues
from repro.core.independence import independence_probabilities
from repro.datasets import generate_qatar_living_like
from repro.auction.reverse_auction import greedy_cover

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


@pytest.fixture(scope="module")
def bench_dataset():
    return generate_qatar_living_like(
        seed=BENCH_SEED,
        n_tasks=BENCH_SCALE.n_tasks,
        n_workers=BENCH_SCALE.n_workers,
        n_copiers=BENCH_SCALE.n_copiers,
        target_claims=BENCH_SCALE.target_claims,
    )


@pytest.fixture(scope="module")
def bench_index(bench_dataset):
    return DatasetIndex(bench_dataset)


@pytest.fixture(scope="module")
def bench_accuracy(bench_index):
    return bench_index.initial_accuracy_matrix(0.5)


@pytest.fixture(scope="module")
def bench_dependence(bench_index, bench_accuracy):
    return compute_pairwise_dependence(
        bench_index,
        bench_index.majority_vote(),
        bench_accuracy,
        copy_prob_r=0.4,
        prior_alpha=0.2,
    )


@pytest.fixture(scope="module")
def bench_arrays(bench_index):
    return bench_index.arrays


@pytest.fixture(scope="module")
def bench_dependence_arrays(bench_index, bench_arrays):
    return pairwise_dependence_arrays(
        bench_arrays,
        bench_arrays.majority_codes(),
        np.full(bench_arrays.n_claims, 0.5),
        copy_prob_r=0.4,
        prior_alpha=0.2,
        collision=UniformFalseValues().collision_array(bench_index),
    )


@pytest.fixture(scope="module")
def bench_instance(bench_dataset):
    result = DATE().run(bench_dataset)
    instance = SOACInstance.from_truth_discovery(bench_dataset, result)
    return instance.with_capped_requirements(0.8)


def test_dataset_generation(benchmark):
    benchmark(
        lambda: generate_qatar_living_like(
            seed=BENCH_SEED,
            n_tasks=BENCH_SCALE.n_tasks,
            n_workers=BENCH_SCALE.n_workers,
            n_copiers=BENCH_SCALE.n_copiers,
            target_claims=BENCH_SCALE.target_claims,
        )
    )


def test_index_construction(benchmark, bench_dataset):
    def build():
        index = DatasetIndex(bench_dataset)
        index.pairs  # force the lazy pair tables
        index.shared_tasks
        return index

    benchmark(build)


def test_step1_dependence(benchmark, bench_index, bench_accuracy):
    truths = bench_index.majority_vote()
    benchmark(
        lambda: compute_pairwise_dependence(
            bench_index,
            truths,
            bench_accuracy,
            copy_prob_r=0.4,
            prior_alpha=0.2,
        )
    )


def test_step2_independence(benchmark, bench_index, bench_dependence):
    benchmark(
        lambda: independence_probabilities(
            bench_index, bench_dependence, copy_prob_r=0.4
        )
    )


def test_step3_posteriors_and_accuracy(benchmark, bench_index, bench_accuracy):
    def step():
        posteriors = value_posteriors(bench_index, bench_accuracy)
        return update_accuracy_matrix(bench_index, posteriors)

    benchmark(step)


def test_full_date_run(benchmark, bench_dataset, bench_index):
    benchmark.pedantic(
        lambda: DATE().run(bench_dataset, index=bench_index),
        rounds=3,
        iterations=1,
    )


def test_full_date_run_reference_backend(benchmark, bench_dataset, bench_index):
    config = DateConfig(backend="reference")
    benchmark.pedantic(
        lambda: DATE(config).run(bench_dataset, index=bench_index),
        rounds=3,
        iterations=1,
    )


def test_vectorized_step1_dependence(benchmark, bench_index, bench_arrays):
    truth_codes = bench_arrays.majority_codes()
    claim_acc = np.full(bench_arrays.n_claims, 0.5)
    collision = UniformFalseValues().collision_array(bench_index)
    benchmark(
        lambda: pairwise_dependence_arrays(
            bench_arrays,
            truth_codes,
            claim_acc,
            copy_prob_r=0.4,
            prior_alpha=0.2,
            collision=collision,
        )
    )


def test_vectorized_step2_independence(
    benchmark, bench_arrays, bench_dependence_arrays
):
    benchmark(
        lambda: independence_flat(
            bench_arrays, bench_dependence_arrays, copy_prob_r=0.4
        )
    )


def test_vectorized_step3_posteriors_and_accuracy(benchmark, bench_index, bench_arrays):
    claim_acc = np.full(bench_arrays.n_claims, 0.5)
    model = UniformFalseValues()

    def step():
        posteriors = plain_posterior_groups(
            bench_arrays, claim_acc, false_values=model
        )
        return accuracy_flat(bench_arrays, posteriors)

    benchmark(step)


def test_date_backend_speedup(bench_dataset):
    """The acceptance gate: vectorized DATE >= 5x the scalar reference.

    Times the full iteration (index construction excluded — both
    backends share one) on the qatar-living-like benchmark dataset,
    best-of-3 to shrug off scheduler noise.
    """
    vectorized = DateConfig()
    reference = DateConfig(backend="reference")

    def best_of(config, rounds=3):
        index = DatasetIndex(bench_dataset)
        DATE(config).run(bench_dataset, index=index)  # warm-up
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            DATE(config).run(bench_dataset, index=index)
            timings.append(time.perf_counter() - start)
        return min(timings)

    t_vec = best_of(vectorized)
    t_ref = best_of(reference)
    speedup = t_ref / t_vec
    print(f"\nDATE iteration: reference {t_ref * 1e3:.1f} ms, "
          f"vectorized {t_vec * 1e3:.1f} ms, speedup {speedup:.1f}x")
    assert speedup >= 5.0, (
        f"vectorized backend only {speedup:.1f}x faster than reference"
    )


def test_auction_winner_selection(benchmark, bench_instance):
    benchmark(lambda: greedy_cover(bench_instance))


def test_auction_with_payments(benchmark, bench_instance):
    benchmark.pedantic(
        lambda: ReverseAuction().run(bench_instance), rounds=3, iterations=1
    )
