"""Paper-artifact benchmarks (pytest-benchmark).

A package so ``benchmarks.conftest`` is importable absolutely; default
test collection is scoped to ``tests/`` (see pyproject.toml), run these
explicitly with ``pytest benchmarks/``.
"""
