"""Benchmarks: regenerate Fig. 6 (social cost of the auctions).

Paper: social cost rises with tasks, falls with workers; the Reverse
Auction (RA) achieves the lowest social cost (avg −59.4% vs GA and
−40.2% vs GB).
"""

from __future__ import annotations

from repro.experiments import run_experiment

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, report, series_mean


def test_fig6a_social_cost_vs_tasks(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig6a",
            scale=BENCH_SCALE,
            base_seed=BENCH_SEED,
            task_grid=(20, 40, 60),
        ),
        rounds=1,
        iterations=1,
    )
    report(result)
    ra = series_mean(result, "RA")
    assert ra <= series_mean(result, "GA")
    assert ra <= series_mean(result, "GB")
    # Cost rises with tasks.
    assert result.y("RA")[-1] >= result.y("RA")[0]


def test_fig6b_social_cost_vs_workers(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig6b",
            scale=BENCH_SCALE,
            base_seed=BENCH_SEED,
            worker_grid=(20, 30, 40),
        ),
        rounds=1,
        iterations=1,
    )
    report(result)
    ra = series_mean(result, "RA")
    # Average-case claim; at this reduced scale (2 instances, small n)
    # allow a small statistical tie margin against GA.
    assert ra <= series_mean(result, "GA") * 1.05
    assert ra <= series_mean(result, "GB") * 1.05
    # Cost falls (or at worst stays flat) as the worker pool grows.
    assert result.y("RA")[-1] <= result.y("RA")[0] + 1.0
