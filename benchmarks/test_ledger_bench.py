"""Run-ledger benchmark: warm (cache-hit) re-runs vs cold computes.

Re-runs the fig3a sensitivity sweep at quick scale through a
content-addressed :class:`~repro.artifacts.RunLedger` and gates the two
acceptance criteria of the caching layer:

- **Exactness** (`test_warm_rerun_bit_identical`): the warm run's
  result equals the cold run's bit for bit — identical x-grid, series
  floats, and export payload — and is served entirely from the ledger
  (zero misses).  Always asserted, on any machine.
- **Speed** (`test_ledger_warm_speedup`): replaying the banked result
  is >= 10x faster than computing it cold.  The warm path is pure
  JSON I/O, so the gate holds on any healthy disk, but wall-clock
  ratios still jitter on oversubscribed shared runners; it is excluded
  from CI's ``-k "not speedup"`` filter like the other hard gates and
  runs locally with::

      pytest benchmarks/test_ledger_bench.py -k speedup -s

The CI warm-cache job exercises the same contract end to end through
the CLI (two ``repro run --cache`` invocations sharing a store, second
one asserted >= 90% hits and byte-identical exports).
"""

from __future__ import annotations

import time

import pytest

from repro.artifacts import RunLedger
from repro.experiments.registry import run_experiment

from benchmarks.conftest import BENCH_SEED

MIN_SPEEDUP = 10.0
#: Enough instances that the cold run does real work (seconds), while
#: the warm run stays a handful of file reads.
INSTANCES = 3

_KWARGS = dict(scale="quick", instances=INSTANCES, base_seed=BENCH_SEED)


@pytest.fixture(scope="module")
def bench_store(tmp_path_factory):
    return tmp_path_factory.mktemp("ledger-bench")


def test_warm_rerun_bit_identical(bench_store):
    ledger = RunLedger(bench_store / "exact")
    cold = run_experiment("fig3a", **_KWARGS, ledger=ledger)
    assert ledger.stats.writes > 0
    ledger.reset_stats()
    warm = run_experiment("fig3a", **_KWARGS, ledger=ledger)
    assert warm == cold
    assert warm.to_payload() == cold.to_payload()
    assert ledger.stats.misses == 0
    assert ledger.stats.hits >= 1
    uncached = run_experiment("fig3a", **_KWARGS)
    assert uncached.to_payload() == cold.to_payload()


def test_ledger_warm_speedup(bench_store):
    """The acceptance gate: warm fig3a re-run >= 10x over cold."""
    ledger = RunLedger(bench_store / "speed")

    start = time.perf_counter()
    cold = run_experiment("fig3a", **_KWARGS, ledger=ledger)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_experiment("fig3a", **_KWARGS, ledger=ledger)
    warm_s = time.perf_counter() - start

    assert warm.to_payload() == cold.to_payload()
    speedup = cold_s / max(warm_s, 1e-9)
    print(
        f"\nledger warm re-run: cold {cold_s:.3f}s, warm {warm_s:.4f}s, "
        f"speedup {speedup:.1f}x (gate >= {MIN_SPEEDUP}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm ledger replay only {speedup:.1f}x faster than cold "
        f"({cold_s:.3f}s -> {warm_s:.4f}s); expected >= {MIN_SPEEDUP}x"
    )
