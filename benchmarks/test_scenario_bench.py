"""Scenario-runner benchmark: parallel fan-out vs serial execution.

Runs the mixed-adversaries scenario (chain copiers + collusion ring +
lazy spammers) at a bench scale heavy enough that per-instance work
dominates pool overhead, and gates the two acceptance criteria of the
parallel executor:

- **Exactness** (`test_parallel_rows_identical`): the 4-worker pool
  produces instance rows bit-identical to the serial path — always
  asserted, on any machine.
- **Speed** (`test_parallel_speedup`): the 4-worker fan-out completes
  the instance sweep >= 2.5x faster than serial.  The gate needs >= 4
  real cores, so it skips on smaller machines and is excluded from
  shared-runner CI like the backend/streaming speedup gates (wall-clock
  ratios need a quiet box); run locally with::

      pytest benchmarks/test_scenario_bench.py -k speedup -s
"""

from __future__ import annotations

import time

import pytest

from repro.scenarios import get_scenario, run_scenario
from repro.simulation.executor import available_cpus, parallel_map

POOL_WORKERS = 4
MIN_SPEEDUP = 2.5
#: Instance count divides evenly over the pool so the serial/parallel
#: comparison measures throughput, not stragglers.
INSTANCES = 8


@pytest.fixture(scope="module")
def bench_scenario():
    base = get_scenario("mixed-adversaries")
    return base.evolve(
        instances=INSTANCES,
        world=base.world.evolve(
            n_tasks=150, n_workers=80, target_claims=3200
        ),
    )


@pytest.fixture(scope="module")
def warm_pool():
    """Spin the 4-worker spawn pool up once, outside any timed region."""
    parallel_map(abs, list(range(POOL_WORKERS)), parallel=POOL_WORKERS)


def test_parallel_rows_identical(bench_scenario, warm_pool):
    serial = run_scenario(bench_scenario, parallel=1)
    parallel = run_scenario(bench_scenario, parallel=POOL_WORKERS)
    assert serial.table.rows == parallel.table.rows


@pytest.mark.skipif(
    available_cpus() < POOL_WORKERS,
    reason=f"speedup gate needs >= {POOL_WORKERS} CPUs "
    f"(found {available_cpus()}); the exactness test still ran",
)
def test_parallel_speedup(bench_scenario, warm_pool):
    """The acceptance gate: 4-worker fan-out >= 2.5x over serial."""
    start = time.perf_counter()
    serial = run_scenario(bench_scenario, parallel=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_scenario(bench_scenario, parallel=POOL_WORKERS)
    parallel_s = time.perf_counter() - start

    assert serial.table.rows == parallel.table.rows
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(
        f"\nserial {serial_s:.2f}s, parallel({POOL_WORKERS}) {parallel_s:.2f}s "
        f"-> speedup {speedup:.2f}x (gate: >= {MIN_SPEEDUP}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"parallel runner only {speedup:.2f}x over serial "
        f"(required >= {MIN_SPEEDUP}x on a {POOL_WORKERS}-worker pool)"
    )
