"""Shared benchmark infrastructure.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one paper table/figure via the experiment
registry at a reduced-but-faithful scale (``BENCH_SCALE``), prints the
reproduced rows/series next to the paper's expectation, and asserts the
qualitative *shape* (who wins, directions of trends).  Timings reported
by pytest-benchmark are the cost of regenerating the artifact.
"""

from __future__ import annotations

import pytest

from repro.experiments import ScalePreset
from repro.reporting import render_result_table
from repro.simulation.sweep import ExperimentResult

#: Reduced scale for benchmark runs: same claim density (~20 claims per
#: task at full size), same copier fraction (25%), smaller dimensions.
BENCH_SCALE = ScalePreset(
    name="bench",
    n_tasks=60,
    n_workers=40,
    n_copiers=10,
    target_claims=1200,
    instances=2,
)

#: Seed shared by all benchmarks.
BENCH_SEED = 42


@pytest.fixture(scope="session")
def bench_scale() -> ScalePreset:
    return BENCH_SCALE


def report(result: ExperimentResult) -> None:
    """Print the regenerated table (shown with pytest -s)."""
    print()
    print(render_result_table(result))


def series_mean(result: ExperimentResult, name: str) -> float:
    values = result.y(name)
    return sum(values) / len(values)
