"""Shared benchmark infrastructure.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one paper table/figure via the experiment
registry at a reduced-but-faithful scale (``BENCH_SCALE``), prints the
reproduced rows/series next to the paper's expectation, and asserts the
qualitative *shape* (who wins, directions of trends).  Timings reported
by pytest-benchmark are the cost of regenerating the artifact.

**Trajectory export.**  Every benchmark session additionally records
the wall-clock of each passed test and *appends* a run to
``BENCH_<suite>.json`` per benchmark module at the repo root (suite =
module name without the ``test_`` prefix and ``_bench`` suffix), so
the perf trajectory of
the repo accumulates run over run — CI uploads the files as artifacts,
and ``scripts/export_bench.py`` drives a full sweep locally.  The
files are measurements, not fixtures, and stay git-ignored — except
``BENCH_dependence.json``, whose seeded first entry is committed as
the reference point the dependence-engine trajectory grows from.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.experiments import ScalePreset
from repro.reporting import render_result_table
from repro.simulation.sweep import ExperimentResult

#: Repo root — BENCH_*.json land here.
_EXPORT_ROOT = Path(__file__).resolve().parent.parent

#: suite name -> {test name -> seconds}, filled by the report hook.
_TIMINGS: dict[str, dict[str, float]] = {}


def pytest_runtest_logreport(report) -> None:
    """Collect the call-phase duration of every passed benchmark test."""
    if report.when != "call" or not report.passed:
        return
    module_path, _, test_name = report.nodeid.partition("::")
    stem = Path(module_path).stem
    if not stem.startswith("test_"):
        return
    suite = stem.removeprefix("test_").removesuffix("_bench")
    _TIMINGS.setdefault(suite, {})[test_name] = report.duration


#: Trajectory length cap: old runs roll off the front so a long-lived
#: BENCH_<suite>.json stays readable (and diffable) rather than growing
#: without bound.
_MAX_RUNS = 50


def _load_runs(path: Path) -> list[dict]:
    """Prior runs recorded at ``path``, tolerating the pre-append schema.

    Early exports held a single run object at the top level; they are
    absorbed as the first trajectory entry so no measurement is lost.
    """
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if isinstance(payload, dict) and isinstance(payload.get("runs"), list):
        return [run for run in payload["runs"] if isinstance(run, dict)]
    if isinstance(payload, dict) and "timings" in payload:
        return [{k: v for k, v in payload.items() if k != "suite"}]
    return []


def pytest_sessionfinish(session, exitstatus) -> None:
    """Append one run per benchmark module to its BENCH_<suite>.json.

    Each file holds the suite's *trajectory* — a bounded list of runs,
    newest last — so perf history accumulates across sessions instead
    of every run overwriting the one before it.
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    for suite, timings in _TIMINGS.items():
        run = {
            "unit": "seconds",
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "machine": platform.platform(),
            "arch": platform.machine(),
            "python": platform.python_version(),
            "python_implementation": platform.python_implementation(),
            "numpy": numpy_version,
            "total_seconds": round(sum(timings.values()), 6),
            "timings": {name: round(t, 6) for name, t in sorted(timings.items())},
        }
        path = _EXPORT_ROOT / f"BENCH_{suite}.json"
        runs = _load_runs(path) + [run]
        payload = {"suite": suite, "runs": runs[-_MAX_RUNS:]}
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

#: Reduced scale for benchmark runs: same claim density (~20 claims per
#: task at full size), same copier fraction (25%), smaller dimensions.
BENCH_SCALE = ScalePreset(
    name="bench",
    n_tasks=60,
    n_workers=40,
    n_copiers=10,
    target_claims=1200,
    instances=2,
)

#: Seed shared by all benchmarks.
BENCH_SEED = 42


@pytest.fixture(scope="session")
def bench_scale() -> ScalePreset:
    return BENCH_SCALE


def report(result: ExperimentResult) -> None:
    """Print the regenerated table (shown with pytest -s)."""
    print()
    print(render_result_table(result))


def series_mean(result: ExperimentResult, name: str) -> float:
    values = result.y(name)
    return sum(values) / len(values)
