"""Shared benchmark infrastructure.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one paper table/figure via the experiment
registry at a reduced-but-faithful scale (``BENCH_SCALE``), prints the
reproduced rows/series next to the paper's expectation, and asserts the
qualitative *shape* (who wins, directions of trends).  Timings reported
by pytest-benchmark are the cost of regenerating the artifact.

**Trajectory export.**  Every benchmark session additionally records
the wall-clock of each passed test and writes one ``BENCH_<suite>.json``
per benchmark module at the repo root (suite = module name without the
``test_`` prefix), so the perf trajectory of the repo is captured run
over run — CI uploads the files as artifacts, and
``scripts/export_bench.py`` drives a full sweep locally.  The files are
git-ignored; they are measurements, not fixtures.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.experiments import ScalePreset
from repro.reporting import render_result_table
from repro.simulation.sweep import ExperimentResult

#: Repo root — BENCH_*.json land here.
_EXPORT_ROOT = Path(__file__).resolve().parent.parent

#: suite name -> {test name -> seconds}, filled by the report hook.
_TIMINGS: dict[str, dict[str, float]] = {}


def pytest_runtest_logreport(report) -> None:
    """Collect the call-phase duration of every passed benchmark test."""
    if report.when != "call" or not report.passed:
        return
    module_path, _, test_name = report.nodeid.partition("::")
    stem = Path(module_path).stem
    if not stem.startswith("test_"):
        return
    suite = stem.removeprefix("test_")
    _TIMINGS.setdefault(suite, {})[test_name] = report.duration


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write one BENCH_<suite>.json per benchmark module that ran."""
    for suite, timings in _TIMINGS.items():
        payload = {
            "suite": suite,
            "unit": "seconds",
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "machine": platform.platform(),
            "python": platform.python_version(),
            "total_seconds": round(sum(timings.values()), 6),
            "timings": {name: round(t, 6) for name, t in sorted(timings.items())},
        }
        path = _EXPORT_ROOT / f"BENCH_{suite}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

#: Reduced scale for benchmark runs: same claim density (~20 claims per
#: task at full size), same copier fraction (25%), smaller dimensions.
BENCH_SCALE = ScalePreset(
    name="bench",
    n_tasks=60,
    n_workers=40,
    n_copiers=10,
    target_claims=1200,
    instances=2,
)

#: Seed shared by all benchmarks.
BENCH_SEED = 42


@pytest.fixture(scope="session")
def bench_scale() -> ScalePreset:
    return BENCH_SCALE


def report(result: ExperimentResult) -> None:
    """Print the regenerated table (shown with pytest -s)."""
    print()
    print(render_result_table(result))


def series_mean(result: ExperimentResult, name: str) -> float:
    values = result.y(name)
    return sum(values) / len(values)
