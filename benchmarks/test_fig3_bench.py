"""Benchmarks: regenerate Fig. 3 (sensitivity of DATE to ε, α, and r).

Paper: precision is insensitive to ε and α (flat 0.82-0.92 band across
[0.1, 0.9]²), but rises with the assumed copy probability r up to
r ≈ 0.4 and then plateaus.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_experiment

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, report


def test_fig3a_epsilon_alpha_insensitivity(benchmark):
    # The flatness claim is asserted for ε above the random-guess
    # accuracy 1/(num_j + 1) = 1/3: below it the Bayesian odds factor
    # num·A/(1-A) < 1 makes the posterior anti-majority by construction
    # and precision degrades (documented deviation, EXPERIMENTS.md).
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig3a",
            scale=BENCH_SCALE,
            base_seed=BENCH_SEED,
            epsilon_grid=(0.4, 0.5, 0.7, 0.9),
            alpha_grid=(0.1, 0.5, 0.9),
        ),
        rounds=1,
        iterations=1,
    )
    report(result)
    values = [y for name in result.series_names for y in result.y(name)]
    spread = max(values) - min(values)
    # Paper: fluctuation stays within a ~0.1 band.
    assert spread <= 0.15, f"precision spread {spread:.3f} too large"
    assert min(values) > 0.6


def test_fig3b_r_sensitivity(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig3b",
            scale=BENCH_SCALE,
            base_seed=BENCH_SEED,
            r_grid=(0.1, 0.2, 0.4, 0.6, 0.8),
        ),
        rounds=1,
        iterations=1,
    )
    report(result)
    curve = np.array(result.y("DATE"))
    # Precision at moderate-to-high assumed r must not fall below the
    # too-low-r region (the paper's rise-then-plateau shape).
    assert curve[2:].mean() >= curve[0] - 0.02
