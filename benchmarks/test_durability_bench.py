"""Durability benchmark: journaled-ingest overhead and recovery wall time.

Two acceptance gates for the write-ahead journal (DESIGN.md §15),
exported to ``BENCH_durability.json``:

- **Overhead** (`test_journaled_ingest_overhead`): replaying a
  paper-scale campaign through a journaled store costs <= 1.5x the
  journal-off store.  The journal adds one compact-JSON frame + fsync
  per batch; the estimator update dominates, so the gate has headroom
  on a healthy disk.  Excluded from shared-runner CI like the other
  wall-clock ratio gates (fsync latency on shared runners is noisy);
  run locally with::

      pytest benchmarks/test_durability_bench.py -k overhead -s

- **Recovery** (`test_recovery_snapshot_speedup` + the plain recovery
  timing): replaying the journal with a banked ledger refresh snapshot
  must beat the snapshot-less replay (the adopt path skips the full
  re-estimation), and both recoveries must land bit-identical to the
  live store.  The correctness half always runs; the ratio is a
  ``speedup``-named gate for quiet machines only.
"""

from __future__ import annotations

import time

import pytest

from repro.artifacts import RunLedger
from repro.datasets import generate_qatar_living_like
from repro.streaming import CampaignStore, replay_batches

from benchmarks.conftest import BENCH_SEED

N_BATCHES = 10
SCALE = dict(n_tasks=240, n_workers=100, n_copiers=25, target_claims=4800)

#: The acceptance gate: journaled ingest <= this multiple of journal-off.
MAX_OVERHEAD = 1.5


@pytest.fixture(scope="module")
def stream_batches():
    dataset = generate_qatar_living_like(seed=BENCH_SEED, **SCALE)
    return replay_batches(dataset, N_BATCHES)


def _replay(store, batches):
    store.create("bench")
    start = time.perf_counter()
    for seq, batch in enumerate(batches, start=1):
        store.ingest("bench", batch, seq=seq)
    elapsed = time.perf_counter() - start
    return elapsed


def _state(store):
    return (
        store.truths("bench"),
        store.worker_accuracy("bench"),
    )


def test_journaled_ingest_matches_unjournaled_exactly(
    tmp_path_factory, stream_batches
):
    """Journaling must be invisible to the estimates (pure write path)."""
    plain = CampaignStore()
    _replay(plain, stream_batches)
    journaled = CampaignStore(
        journal_dir=tmp_path_factory.mktemp("wal-exact")
    )
    _replay(journaled, stream_batches)
    assert _state(journaled) == _state(plain)
    journaled.close()


def test_journaled_ingest_overhead(tmp_path_factory, stream_batches):
    """The gate: one fsync'd append per batch costs <= 1.5x journal-off."""
    # Warm both code paths once before timing.
    warm = CampaignStore(journal_dir=tmp_path_factory.mktemp("wal-warm"))
    _replay(warm, stream_batches)
    warm.close()

    plain_s = _replay(CampaignStore(), stream_batches)
    journaled = CampaignStore(journal_dir=tmp_path_factory.mktemp("wal-bench"))
    journaled_s = _replay(journaled, stream_batches)
    journaled.close()
    overhead = journaled_s / plain_s
    print(
        f"\njournal-off {plain_s * 1e3:.1f} ms, journaled "
        f"{journaled_s * 1e3:.1f} ms -> overhead {overhead:.3f}x "
        f"(gate <= {MAX_OVERHEAD}x)"
    )
    assert overhead <= MAX_OVERHEAD


def test_recovery_snapshot_speedup(tmp_path_factory, stream_batches):
    """Ledger-snapshot recovery beats recompute recovery, both exact."""
    wal = tmp_path_factory.mktemp("wal-recover")
    ledger_root = tmp_path_factory.mktemp("ledger")
    live = CampaignStore(journal_dir=wal, ledger=RunLedger(ledger_root))
    _replay(live, stream_batches)
    live.estimate("bench", refresh=True)  # journals intent + banks snapshot
    reference = _state(live)
    live.close()

    # Cold recovery: no ledger, the refresh record recomputes.
    start = time.perf_counter()
    cold = CampaignStore(journal_dir=wal)
    cold_s = time.perf_counter() - start
    assert cold.last_recovery[0]["snapshot_hits"] == 0
    assert _state(cold) == reference
    cold.close()

    # Warm recovery: the banked snapshot's fingerprint matches and is
    # adopted instead of recomputed.
    start = time.perf_counter()
    warm = CampaignStore(journal_dir=wal, ledger=RunLedger(ledger_root))
    warm_s = time.perf_counter() - start
    assert warm.last_recovery[0]["snapshot_hits"] == 1
    assert _state(warm) == reference
    warm.close()

    print(
        f"\nrecovery: recompute {cold_s * 1e3:.1f} ms, snapshot-hit "
        f"{warm_s * 1e3:.1f} ms -> {cold_s / warm_s:.2f}x"
    )
    assert warm_s < cold_s
