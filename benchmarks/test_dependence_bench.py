"""Dependence-engine benchmark: incremental aggregates + intra-blocking.

Exercises the two perf paths of the pairwise dependence engine
(DESIGN.md §12) at ~10x the shared benchmark scale — large enough that
the (pair, shared task) row table dominates the DATE iteration cost —
and gates the acceptance criteria:

- **Exactness** (`test_incremental_matches_full_bitwise`,
  `test_intra_parallel_deterministic`): always run, everywhere.  The
  incremental refresh is *bit-identical* to a full scoring pass, and
  the blocked 4-thread reduction is run-to-run deterministic and
  within 1e-9 of serial.
- **Incremental speed** (`test_incremental_ingest_speedup`): a refresh
  touching <= 10% of tasks is >= 5x faster than the full recompute it
  replaces.  Excluded from shared-runner CI like every other
  wall-clock gate; run locally with::

      pytest benchmarks/test_dependence_bench.py -k speedup -s

- **Intra-campaign parallel speed** (`test_intra_parallel_speedup`):
  the 4-thread blocked scoring pass is >= 2x serial.  Hardware-gated
  (skipped below 4 CPUs) on top of the CI speedup exclusion.
- **Streaming re-run** (`test_streaming_ingest_new_path`): the online
  replay over the new ``stable_dependence`` sub-runs plus the
  ``track_dependence`` snapshot stays bit-identical to the cold path.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import DATE
from repro.core.config import DateConfig
from repro.core.engine import IncrementalDependence, pairwise_dependence_arrays
from repro.core.indexing import DatasetIndex
from repro.datasets import generate_qatar_living_like
from repro.simulation.executor import available_cpus
from repro.streaming import OnlineDATE, replay_batches

from benchmarks.conftest import BENCH_SEED

#: ~10x the streaming-bench claim volume (~30x the shared BENCH_SCALE):
#: the ~1M-row pair table this scale induces is what the incremental
#: and blocked paths exist to beat.
DEP_SCALE = dict(n_tasks=2000, n_workers=800, n_copiers=200, target_claims=40000)
INTRA_WORKERS = 4
#: Fraction of tasks an "ingest-like" perturbation touches (<= 10% per
#: the acceptance gate).  Affected-pair coverage grows much faster than
#: the touch fraction — at this scale a 3% task touch already re-sums
#: ~10% of the pair rows, and a 10% touch re-sums ~40% (the bit-exact
#: contract forces whole-segment re-summation for every affected pair,
#: so that is the physics, not overhead).
TOUCH_FRACTION = 0.03
PERTURB_ROUNDS = 5


@pytest.fixture(scope="module")
def dep_state():
    """Index, mid-fixed-point inputs, and kernel parameters, warmed."""
    dataset = generate_qatar_living_like(seed=BENCH_SEED, **DEP_SCALE)
    index = DatasetIndex(dataset)
    arrays = index.arrays
    cfg = DateConfig()
    cfg.false_values.prepare(index)
    collision = cfg.false_values.collision_array(index)
    rng = np.random.default_rng(BENCH_SEED)
    truth_codes = arrays.majority_codes()
    claim_acc = rng.uniform(0.2, 0.95, arrays.n_claims)
    params = dict(
        copy_prob_r=cfg.copy_prob_r,
        prior_alpha=cfg.prior_alpha,
        collision=collision,
        accuracy_clamp=cfg.accuracy_clamp,
    )
    # Warm the pair tables + scratch so timings measure the kernels.
    pairwise_dependence_arrays(arrays, truth_codes, claim_acc, **params)
    return index, arrays, truth_codes, claim_acc, params


def _perturb(arrays, truth_codes, claim_acc, rng):
    """An ingest-like edit: new codes + accuracies on <=10% of tasks."""
    n_tasks = arrays.index.n_tasks
    touched = rng.choice(
        n_tasks, size=max(1, int(TOUCH_FRACTION * n_tasks)), replace=False
    )
    codes = truth_codes.copy()
    acc = claim_acc.copy()
    for j in touched:
        n_codes = int(arrays.task_group_ptr[j + 1] - arrays.task_group_ptr[j])
        if n_codes:
            codes[j] = rng.integers(0, n_codes)
        c0, c1 = int(arrays.task_ptr[j]), int(arrays.task_ptr[j + 1])
        acc[c0:c1] = rng.uniform(0.2, 0.95, c1 - c0)
    return codes, acc, touched


def test_incremental_matches_full_bitwise(dep_state):
    """Engine refreshes == full recomputes, bit for bit, every round."""
    _, arrays, truth_codes, claim_acc, params = dep_state
    engine = IncrementalDependence(arrays, **params)
    got = engine.refresh(truth_codes, claim_acc)
    want = pairwise_dependence_arrays(arrays, truth_codes, claim_acc, **params)
    assert np.array_equal(got.p_ab, want.p_ab)
    assert np.array_equal(got.p_ba, want.p_ba)
    rng = np.random.default_rng(BENCH_SEED + 1)
    codes, acc = truth_codes, claim_acc
    for _ in range(PERTURB_ROUNDS):
        codes, acc, _touched = _perturb(arrays, codes, acc, rng)
        got = engine.refresh(codes, acc)
        want = pairwise_dependence_arrays(arrays, codes, acc, **params)
        assert np.array_equal(got.p_ab, want.p_ab)
        assert np.array_equal(got.p_ba, want.p_ba)


def test_incremental_ingest_speedup(dep_state):
    """The acceptance gate: <=10%-of-tasks refresh >= 5x full recompute."""
    _, arrays, truth_codes, claim_acc, params = dep_state
    engine = IncrementalDependence(arrays, **params)
    engine.refresh(truth_codes, claim_acc)
    rng = np.random.default_rng(BENCH_SEED + 2)
    codes, acc = truth_codes, claim_acc
    inc_total = 0.0
    full_total = 0.0
    rows = []
    for round_ in range(PERTURB_ROUNDS):
        codes, acc, touched = _perturb(arrays, codes, acc, rng)
        start = time.perf_counter()
        got = engine.refresh(codes, acc)
        inc_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        want = pairwise_dependence_arrays(arrays, codes, acc, **params)
        full_ms = (time.perf_counter() - start) * 1e3
        assert np.array_equal(got.p_ab, want.p_ab)
        assert np.array_equal(got.p_ba, want.p_ba)
        inc_total += inc_ms
        full_total += full_ms
        rows.append(
            f"round {round_}: {len(touched):3d} tasks touched | "
            f"incremental {inc_ms:7.1f} ms, full {full_ms:7.1f} ms "
            f"({full_ms / inc_ms:5.1f}x)"
        )
    speedup = full_total / inc_total
    print()
    print("\n".join(rows))
    print(
        f"totals: incremental {inc_total:.1f} ms, full {full_total:.1f} ms, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= 5.0, (
        f"incremental refresh only {speedup:.2f}x faster than full recompute"
    )


def test_intra_parallel_deterministic(dep_state):
    """Blocked 4-thread pass: deterministic run-to-run, ~serial values."""
    _, arrays, truth_codes, claim_acc, params = dep_state
    serial = pairwise_dependence_arrays(arrays, truth_codes, claim_acc, **params)
    first = pairwise_dependence_arrays(
        arrays, truth_codes, claim_acc, intra_workers=INTRA_WORKERS, **params
    )
    second = pairwise_dependence_arrays(
        arrays, truth_codes, claim_acc, intra_workers=INTRA_WORKERS, **params
    )
    # Fixed blocks reduced in fixed order: repeat runs are bit-equal.
    assert np.array_equal(first.p_ab, second.p_ab)
    assert np.array_equal(first.p_ba, second.p_ba)
    np.testing.assert_allclose(first.p_ab, serial.p_ab, atol=1e-9, rtol=0)
    np.testing.assert_allclose(first.p_ba, serial.p_ba, atol=1e-9, rtol=0)


@pytest.mark.skipif(
    available_cpus() < INTRA_WORKERS,
    reason=f"speedup gate needs >= {INTRA_WORKERS} CPUs "
    f"(found {available_cpus()}); the determinism test still ran",
)
def test_intra_parallel_speedup(dep_state):
    """The acceptance gate: 4-thread blocked scoring >= 2x serial."""
    _, arrays, truth_codes, claim_acc, params = dep_state
    # Warm both paths (thread pool spin-up, scratch slabs).
    pairwise_dependence_arrays(
        arrays, truth_codes, claim_acc, intra_workers=INTRA_WORKERS, **params
    )
    repeats = 5
    start = time.perf_counter()
    for _ in range(repeats):
        pairwise_dependence_arrays(arrays, truth_codes, claim_acc, **params)
    serial_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    for _ in range(repeats):
        pairwise_dependence_arrays(
            arrays, truth_codes, claim_acc, intra_workers=INTRA_WORKERS, **params
        )
    parallel_ms = (time.perf_counter() - start) * 1e3
    speedup = serial_ms / parallel_ms
    print(
        f"\nserial {serial_ms / repeats:.1f} ms/pass, "
        f"{INTRA_WORKERS}-thread {parallel_ms / repeats:.1f} ms/pass, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= 2.0, (
        f"{INTRA_WORKERS}-thread blocked pass only {speedup:.2f}x over serial"
    )


def test_streaming_ingest_new_path():
    """Online replay on the stable_dependence sub-runs stays cold-exact."""
    dataset = generate_qatar_living_like(
        seed=BENCH_SEED, n_tasks=200, n_workers=100, n_copiers=25,
        target_claims=4000,
    )
    batches = replay_batches(dataset, 8)
    online = OnlineDATE(track_dependence=True)
    ingest_ms = 0.0
    for batch in batches:
        start = time.perf_counter()
        online.ingest(batch)
        ingest_ms += (time.perf_counter() - start) * 1e3
    snap = online.dependence_snapshot()
    cfg = online.config
    index = online.index
    cfg.false_values.prepare(index)
    cold = pairwise_dependence_arrays(
        index.arrays,
        online._truth_codes,
        online._claim_acc,
        copy_prob_r=cfg.copy_prob_r,
        prior_alpha=cfg.prior_alpha,
        collision=cfg.false_values.collision_array(index),
        accuracy_clamp=cfg.accuracy_clamp,
    )
    assert np.array_equal(snap.p_ab, cold.p_ab)
    assert np.array_equal(snap.p_ba, cold.p_ba)
    final = online.refresh()
    batch_run = DATE().run(dataset)
    assert final.truths == batch_run.truths
    assert final.iterations == batch_run.iterations
    print(f"\nreplay ingest total {ingest_ms:.1f} ms over {len(batches)} batches")
