"""Algorithm-zoo benchmark: per-algorithm fit cost on one shared index.

Every registry member fits the same ``BENCH_SCALE`` synthetic campaign
(60 tasks, 40 workers, 25% copiers, ~1200 claims), so the per-test
durations appended to ``BENCH_discovery.json`` by the session hook are
directly comparable across algorithms and across runs.

- **Exactness** (`test_fit`): always run, everywhere.  Each fit is
  bit-identical across fresh discoverers, lands its precision in
  [0, 1], and resolves every answered task.
- **Native speed** (`test_native_fit_speedup_over_enumeration`): the
  three vectorized natives (TruthFinder, FDS, LCA) each beat the
  exhaustive-enumeration baseline ED by >= 5x on the shared index.
  Hardware-local wall-clock gate — excluded from shared-runner CI like
  every other speedup test; run locally with::

      pytest benchmarks/test_discovery_bench.py -k speedup -s
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import pytest

from repro.core.indexing import DatasetIndex
from repro.datasets import generate_qatar_living_like
from repro.discovery import ALGORITHM_NAMES, make_discoverer
from repro.simulation.metrics import precision

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED

pytestmark = pytest.mark.filterwarnings("ignore::repro.errors.ConvergenceWarning")


@pytest.fixture(scope="module")
def zoo_campaign():
    """One shared campaign at the common benchmark scale."""
    dataset = generate_qatar_living_like(
        seed=BENCH_SEED,
        n_tasks=BENCH_SCALE.n_tasks,
        n_workers=BENCH_SCALE.n_workers,
        n_copiers=BENCH_SCALE.n_copiers,
        target_claims=BENCH_SCALE.target_claims,
    )
    return dataset, DatasetIndex(dataset)


def _fit(name, index):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return make_discoverer(name, seed=BENCH_SEED).fit(index.arrays)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_fit(name, zoo_campaign):
    """Timed fit of one zoo member; exactness asserted alongside."""
    dataset, index = zoo_campaign
    result = _fit(name, index)
    again = _fit(name, index)
    assert result.truths == again.truths
    assert result.worker_accuracy == again.worker_accuracy
    assert np.array_equal(result.accuracy_matrix, again.accuracy_matrix)
    answered = {task_id for _, task_id in dataset.claims}
    assert set(result.truths) == answered
    assert 0.0 <= precision(result, dataset) <= 1.0
    print(f"\n{name}: precision {precision(result, dataset):.4f}")


def test_native_fit_speedup_over_enumeration(zoo_campaign):
    """Vectorized natives each beat exhaustive enumeration by >= 5x."""
    _, index = zoo_campaign

    def cost(name: str) -> float:
        _fit(name, index)  # warm caches out of the timed region
        start = time.perf_counter()
        _fit(name, index)
        return time.perf_counter() - start

    baseline = cost("ED")
    for name in ("TruthFinder", "FDS", "LCA"):
        elapsed = cost(name)
        speedup = baseline / elapsed
        print(f"\n{name}: {elapsed:.4f}s vs ED {baseline:.4f}s ({speedup:.1f}x)")
        assert speedup >= 5.0, f"{name} only {speedup:.1f}x faster than ED"
