"""Streaming replay benchmark: incremental OnlineDATE vs cold re-runs.

Replays a qatar-living-like campaign in 10 claim batches — the
workload the streaming subsystem exists for — and gates the two
acceptance criteria of the online path:

- **Exactness** (`test_online_refresh_matches_cold_exactly`): after
  the final full refresh, the online estimate equals the cold batch
  run bit for bit — same truths, same iteration count, accuracies and
  reputations within 1e-9.
- **Speed** (`test_streaming_replay_speedup`): ingesting a batch
  incrementally (index extension + dirty-scope re-estimation) is >= 5x
  faster than the cold alternative of re-encoding and re-running
  ``DATE().run`` on the campaign accumulated so far, summed over the
  replay.  Excluded from shared-runner CI like the backend-speedup
  gate (wall-clock ratios need a quiet machine); run locally with::

      pytest benchmarks/test_streaming_bench.py -k speedup -s
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import DATE
from repro.datasets import generate_qatar_living_like
from repro.streaming import OnlineDATE, replay_batches

from benchmarks.conftest import BENCH_SEED

#: Replay shape: the paper-scale campaign split into 10 arrival waves.
N_BATCHES = 10
STREAM_SCALE = dict(n_tasks=400, n_workers=150, n_copiers=38, target_claims=8000)


@pytest.fixture(scope="module")
def stream_dataset():
    return generate_qatar_living_like(seed=BENCH_SEED, **STREAM_SCALE)


@pytest.fixture(scope="module")
def stream_batches(stream_dataset):
    batches = replay_batches(stream_dataset, N_BATCHES)
    assert sum(b.n_claims for b in batches) == stream_dataset.n_claims
    return batches


def test_online_refresh_matches_cold_exactly(stream_dataset, stream_batches):
    online = OnlineDATE()
    for batch in stream_batches:
        online.ingest(batch)
    final = online.refresh()
    cold = DATE().run(stream_dataset)
    assert final.truths == cold.truths
    assert final.iterations == cold.iterations
    np.testing.assert_allclose(
        final.accuracy_matrix, cold.accuracy_matrix, atol=1e-9, rtol=0
    )
    for worker_id, accuracy in cold.worker_accuracy.items():
        assert abs(final.worker_accuracy[worker_id] - accuracy) <= 1e-9
    assert final.precision() == cold.precision()


def test_streaming_replay_speedup(stream_dataset, stream_batches):
    """The acceptance gate: incremental ingest >= 5x cold re-runs."""
    online = OnlineDATE()
    online_total = 0.0
    cold_total = 0.0
    rows = []
    cold = None
    for batch in stream_batches:
        start = time.perf_counter()
        update = online.ingest(batch)
        online_ms = (time.perf_counter() - start) * 1e3
        accumulated = online.dataset
        start = time.perf_counter()
        cold = DATE().run(accumulated)
        cold_ms = (time.perf_counter() - start) * 1e3
        online_total += online_ms
        cold_total += cold_ms
        rows.append(
            f"batch {update.batch:2d}: +{update.new_claims:4d} claims, "
            f"{update.dirty_tasks:3d} dirty | online {online_ms:7.1f} ms, "
            f"cold {cold_ms:7.1f} ms ({cold_ms / online_ms:5.1f}x)"
        )
    final = online.refresh()
    speedup = cold_total / online_total
    print()
    print("\n".join(rows))
    print(
        f"replay totals: online {online_total:.1f} ms, cold {cold_total:.1f} ms, "
        f"speedup {speedup:.2f}x"
    )
    # Equal final quality: the refresh restores the cold answer exactly.
    assert final.truths == cold.truths
    assert final.precision() == cold.precision()
    assert speedup >= 5.0, (
        f"incremental ingestion only {speedup:.2f}x faster than cold re-runs"
    )
