"""Benchmarks: regenerate Fig. 7 (auction running time).

Paper: running time rises with both dimensions; RA (O(n³m), payment
phase reruns the greedy per winner) is the slowest, GA (O(n³)) next,
GB (O(n²)) the fastest.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, report, series_mean


def test_fig7a_runtime_vs_tasks(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig7a",
            scale=BENCH_SCALE,
            base_seed=BENCH_SEED,
            task_grid=(20, 40, 60),
        ),
        rounds=1,
        iterations=1,
    )
    report(result)
    assert series_mean(result, "RA") > series_mean(result, "GA")
    assert series_mean(result, "RA") > series_mean(result, "GB")


def test_fig7b_runtime_vs_workers(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig7b",
            scale=BENCH_SCALE,
            base_seed=BENCH_SEED,
            worker_grid=(20, 30, 40),
        ),
        rounds=1,
        iterations=1,
    )
    report(result)
    assert series_mean(result, "RA") > series_mean(result, "GB")
    # Runtime grows with the worker pool.
    assert result.y("RA")[-1] >= result.y("RA")[0]
