"""Benchmarks: regenerate Fig. 5 (truth-discovery running time).

Paper: running time rises with both tasks and workers; ED (exponential
dependence enumeration) is the slowest by a wide margin (DATE finishes
in ≈42.6% of ED's time at full scale); MV is the fastest.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, report, series_mean


def test_fig5a_runtime_vs_tasks(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig5a",
            scale=BENCH_SCALE,
            base_seed=BENCH_SEED,
            task_grid=(20, 40, 60),
        ),
        rounds=1,
        iterations=1,
    )
    report(result)
    assert series_mean(result, "ED") > series_mean(result, "DATE")
    assert series_mean(result, "DATE") > series_mean(result, "MV")
    # Rising-with-tasks trend for the heavy algorithms.
    assert result.y("ED")[-1] >= result.y("ED")[0]


def test_fig5b_runtime_vs_workers(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig5b",
            scale=BENCH_SCALE,
            base_seed=BENCH_SEED,
            worker_grid=(14, 26, 40),
        ),
        rounds=1,
        iterations=1,
    )
    report(result)
    assert series_mean(result, "ED") > series_mean(result, "DATE")
    assert series_mean(result, "DATE") > series_mean(result, "MV")
