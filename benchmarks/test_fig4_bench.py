"""Benchmarks: regenerate Fig. 4 (precision vs tasks / workers).

Paper: DATE beats MV and NC (avg +8.4% / +7.4% precision); ED edges
DATE (+0.8%); precision declines slightly with more tasks (later tasks
receive fewer answers) and rises with more workers.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, report, series_mean


def test_fig4a_precision_vs_tasks(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig4a",
            scale=BENCH_SCALE,
            base_seed=BENCH_SEED,
            task_grid=(20, 40, 60),
        ),
        rounds=1,
        iterations=1,
    )
    report(result)
    date = series_mean(result, "DATE")
    assert date >= series_mean(result, "MV")
    assert date >= series_mean(result, "NC") - 0.01
    # Paper: ED >= DATE (+0.8% at full scale).  With tightly clustered
    # copiers ED's all-co-provider discount can beat DATE's prefix-only
    # discount by much more at reduced scale; assert the ordering only.
    assert series_mean(result, "ED") >= date - 0.02
    assert series_mean(result, "ED") >= series_mean(result, "MV") - 0.02
    # Declining-with-tasks trend (first point vs last point).
    assert result.y("DATE")[0] >= result.y("DATE")[-1] - 0.05


def test_fig4b_precision_vs_workers(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig4b",
            scale=BENCH_SCALE,
            base_seed=BENCH_SEED,
            worker_grid=(14, 26, 40),
        ),
        rounds=1,
        iterations=1,
    )
    report(result)
    # Rising-with-workers trend for every algorithm.
    for name in result.series_names:
        curve = result.y(name)
        assert curve[-1] >= curve[0] - 0.02, f"{name} did not improve"
    assert series_mean(result, "DATE") >= series_mean(result, "MV")
