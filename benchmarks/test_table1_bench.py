"""Benchmark: regenerate Table 1 (the motivating copier example).

Paper: naive majority voting elects the copied wrong affiliations for
Dewitt, Carey and Halevy (2/5 correct); copier-aware truth discovery
recovers all five researchers' affiliations.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from benchmarks.conftest import report


def test_table1(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table1"), rounds=3, iterations=1
    )
    report(result)
    assert sum(result.series["MV"]) == 2
    assert sum(result.series["NC"]) == 2
    assert sum(result.series["DATE"]) == 5
    assert sum(result.series["ED"]) == 5
