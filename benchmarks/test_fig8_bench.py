"""Benchmarks: regenerate Fig. 8 (truthfulness of IMC2).

Paper: a winner (worker 26, cost 3) maximizes its utility (5) exactly
at its truthful bid; a loser (worker 58, cost 8) never exceeds the 0
utility of truthful bidding, no matter how it misreports.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, report


def test_fig8a_winner_utility_curve(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig8a", scale=BENCH_SCALE, base_seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    report(result)
    truthful = result.meta["truthful_utility"]
    assert truthful >= 0.0
    for utility in result.y("utility"):
        assert utility <= truthful + 1e-9
    # The curve must show both regimes: winning and (after exceeding
    # the critical value) losing with utility 0.
    assert any(utility == 0.0 for utility in result.y("utility"))


def test_fig8b_loser_utility_curve(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig8b", scale=BENCH_SCALE, base_seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    report(result)
    assert result.meta["truthful_utility"] == 0.0
    for utility in result.y("utility"):
        assert utility <= 1e-9
