"""Observability spine: exactness and overhead gates (DESIGN.md §13).

Three claims are pinned here:

1. **Exactness** — a DATE run with the registry enabled and a trace
   active returns bit-identical results to an uninstrumented run
   (telemetry observes, never feeds back).
2. **Disabled overhead ≤ 2%** — with the registry off, the hot loop
   pays only dead ``telemetry is None`` branches; timed against the
   same loop with the telemetry factory stubbed out entirely.
3. **Enabled overhead ≤ 5%** — full metrics recording stays within
   budget on the benchmark-scale DATE run.

The overhead gates time hardware-sensitive ratios, so CI excludes them
(``-k "not overhead"``) the same way it excludes the backend speedup
gate; they are acceptance criteria for `scripts/export_bench.py` runs
on quiet machines.  Every test here lands in ``BENCH_obs.json`` via
the session trajectory hook.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro import DATE, DateConfig
from repro.core import DatasetIndex
from repro.core import date as date_mod
from repro.datasets import generate_qatar_living_like
from repro.obs import (
    NULL,
    MetricsRegistry,
    TraceWriter,
    render_prometheus,
    set_registry,
    trace_run,
)

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


@pytest.fixture(scope="module")
def bench_dataset():
    return generate_qatar_living_like(
        seed=BENCH_SEED,
        n_tasks=BENCH_SCALE.n_tasks,
        n_workers=BENCH_SCALE.n_workers,
        n_copiers=BENCH_SCALE.n_copiers,
        target_claims=BENCH_SCALE.target_claims,
    )


@pytest.fixture
def disabled_registry():
    registry = MetricsRegistry(enabled=False)
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


def _snapshot(result):
    return (
        dict(result.truths),
        dict(result.confidence),
        dict(result.worker_accuracy),
        result.iterations,
        result.converged,
    )


def _best_of(fn, rounds: int = 5) -> float:
    fn()  # warm-up: JIT-free, but caches and allocators settle
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return min(timings)


def _overhead(fn_test, fn_base, blocks: int = 3, rounds: int = 12) -> float:
    """Fractional overhead of ``fn_test`` relative to ``fn_base``.

    Percent-level comparisons drown in machine noise unless the design
    cancels it: the variants are interleaved round by round (adjacent
    samples share frequency-scaling and cache state), each block takes
    the *median* of the paired per-round ratios (robust to scheduler
    spikes), and the minimum over independent blocks discards blocks
    that noise inflated wholesale — real overhead persists in every
    block, one-sided noise does not.
    """
    fn_test()
    fn_base()
    medians: list[float] = []
    for _ in range(blocks):
        ratios: list[float] = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn_test()
            t_test = time.perf_counter() - start
            start = time.perf_counter()
            fn_base()
            t_base = time.perf_counter() - start
            ratios.append(t_test / t_base)
        medians.append(statistics.median(ratios))
    return min(medians) - 1.0


def test_instrumented_run_is_bit_identical(
    bench_dataset, tmp_path, disabled_registry
):
    baseline = _snapshot(DATE().run(bench_dataset))
    set_registry(MetricsRegistry(enabled=True))
    with trace_run({"bench": "exactness"}, directory=tmp_path):
        instrumented = _snapshot(DATE().run(bench_dataset))
    assert instrumented == baseline


def test_disabled_overhead_within_2_percent(bench_dataset, disabled_registry):
    """Dead telemetry branches cost <= 2% of the DATE hot loop."""
    index = DatasetIndex(bench_dataset)

    def run():
        DATE().run(bench_dataset, index=index)

    def run_stubbed():
        # Stub the factory so the loop takes the exact same None path
        # but skips even the registry/trace lookups — the closest
        # measurable stand-in for "this code was never instrumented".
        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(date_mod, "_run_telemetry", lambda backend: None)
            DATE().run(bench_dataset, index=index)

    overhead = _overhead(run, run_stubbed)
    print(f"\ndisabled telemetry overhead: {overhead * 100.0:+.2f}%")
    assert overhead <= 0.02, (
        f"disabled-mode telemetry overhead {overhead * 100.0:.2f}% > 2%"
    )


def test_enabled_overhead_within_5_percent(bench_dataset, disabled_registry):
    """Full metrics recording costs <= 5% of the DATE hot loop."""
    index = DatasetIndex(bench_dataset)

    def run():
        DATE().run(bench_dataset, index=index)

    enabled_registry = MetricsRegistry(enabled=True)

    def run_enabled():
        previous = set_registry(enabled_registry)
        try:
            DATE().run(bench_dataset, index=index)
        finally:
            set_registry(previous)

    overhead = _overhead(run_enabled, run)
    print(f"\nenabled telemetry overhead: {overhead * 100.0:+.2f}%")
    assert overhead <= 0.05, (
        f"enabled-mode telemetry overhead {overhead * 100.0:.2f}% > 5%"
    )


def test_null_instrument_hot_path(benchmark):
    """The no-op stub: what every disabled call site pays."""

    def spin():
        for _ in range(10_000):
            NULL.inc()
            NULL.observe(1.0)

    benchmark(spin)


def test_enabled_counter_and_histogram_hot_path(benchmark):
    registry = MetricsRegistry(enabled=True)
    counter = registry.counter("bench_total")
    histogram = registry.histogram("bench_values")

    def spin():
        for _ in range(10_000):
            counter.inc()
            histogram.observe(0.5)

    benchmark(spin)


def test_render_prometheus_scrape(benchmark):
    registry = MetricsRegistry(enabled=True)
    for i in range(50):
        registry.counter("c", labels={"series": str(i)}).inc(i)
        registry.timer("t", labels={"series": str(i)}).observe(i * 0.01)
    benchmark(lambda: render_prometheus(registry))


def test_trace_emit_throughput(benchmark, tmp_path):
    writer = TraceWriter(tmp_path / "bench.jsonl")
    benchmark(lambda: writer.emit("event", value=1.5, phase="bench"))
