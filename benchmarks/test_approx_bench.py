"""Benchmark: the approximation-ratio extension (Theorem 3, measured).

The paper proves social cost ≤ 2 e H_Ω × OPT but never measures it;
this benchmark regenerates our extension experiment comparing the
greedy reverse auction against the exact ILP optimum on small
instances.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from benchmarks.conftest import BENCH_SEED, report


def test_approximation_ratio(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "approx",
            instances=5,
            base_seed=BENCH_SEED,
            n_tasks=20,
            n_workers=20,
            n_copiers=5,
        ),
        rounds=1,
        iterations=1,
    )
    report(result)
    for greedy, optimal in zip(result.y("RA"), result.y("OPT")):
        assert greedy >= optimal - 1e-9
    assert result.meta["mean_ratio"] < 2.0
    for ratio, bound in zip(result.y("ratio"), result.meta["theoretical_bounds"]):
        assert ratio <= bound
