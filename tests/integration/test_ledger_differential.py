"""Differential suite: ledger-backed runs are bit-identical to cold runs.

The acceptance contract of the run ledger (ISSUE 5 / DESIGN.md §11):

- warm (cache-hit) runs reproduce cold runs bit for bit across fig3a,
  table1, and a scenario sweep;
- an *interrupted* sweep resumes at instance granularity — already
  banked rows are never recomputed;
- growing ``--instances`` reuses the banked prefix and computes only
  the delta;
- a restarted streaming campaign store warm-starts its refresh from
  the ledger, bit-identical to the cold estimate.

Everything runs at a deliberately tiny scale: the point is provenance
plumbing, not statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.artifacts import RunKey, RunLedger
from repro.core.config import DateConfig
from repro.datasets import generate_qatar_living_like
from repro.experiments.registry import run_experiment
from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.runner import scenario_run_key, sweep_scenario
from repro.simulation.runner import run_instances
from repro.streaming import CampaignStore, replay_batches

pytestmark = pytest.mark.filterwarnings("ignore::repro.errors.ConvergenceWarning")


@pytest.fixture
def ledger(tmp_path) -> RunLedger:
    return RunLedger(tmp_path / "store")


class TestExperimentsBitIdentical:
    def test_fig3a_warm_equals_cold(self, ledger):
        kwargs = dict(
            scale="quick",
            instances=2,
            epsilon_grid=(0.3, 0.7),
            alpha_grid=(0.2,),
        )
        cold = run_experiment("fig3a", **kwargs, ledger=ledger)
        ledger.reset_stats()
        warm = run_experiment("fig3a", **kwargs, ledger=ledger)
        assert warm == cold  # dataclass equality: series, x, meta
        assert ledger.stats.hits == 1 and ledger.stats.misses == 0
        plain = run_experiment("fig3a", **kwargs)
        assert plain.to_payload() == cold.to_payload()

    def test_table1_warm_equals_cold(self, ledger):
        cold = run_experiment("table1", ledger=ledger)
        ledger.reset_stats()
        warm = run_experiment("table1", ledger=ledger)
        assert warm == cold
        assert ledger.stats.hits == 1 and ledger.stats.misses == 0
        plain = run_experiment("table1")
        assert plain.to_payload() == cold.to_payload()

    def test_row_level_reuse_survives_result_eviction(self, ledger):
        kwargs = dict(
            scale="quick",
            instances=2,
            epsilon_grid=(0.3,),
            alpha_grid=(0.2,),
        )
        cold = run_experiment("fig3a", **kwargs, ledger=ledger)
        # Drop the finished results; the instance rows stay banked.
        ledger.gc(kind="results")
        ledger.reset_stats()
        rebuilt = run_experiment("fig3a", **kwargs, ledger=ledger)
        assert rebuilt.to_payload() == cold.to_payload()
        # One result miss, then every instance row served from the bank.
        assert ledger.stats.hits == 2
        assert ledger.stats.misses == 1


class TestInstanceGranularity:
    def test_growing_instances_reuses_prefix(self, ledger):
        key = RunKey("count-demo", {"seed": 7})
        calls: list[int] = []

        def metric(k: int) -> dict[str, float]:
            calls.append(k)
            return {"value": float(k * k)}

        small = run_instances(2, metric, ledger=ledger, key=key)
        assert calls == [0, 1]
        grown = run_instances(5, metric, ledger=ledger, key=key)
        # Only the three new instances computed; prefix read back.
        assert calls == [0, 1, 2, 3, 4]
        assert grown.rows[:2] == small.rows
        assert grown.rows == tuple({"value": float(k * k)} for k in range(5))

    def test_interrupted_run_resumes_where_it_stopped(self, ledger):
        key = RunKey("resume-demo", {"seed": 7})
        calls: list[int] = []

        def metric(k: int) -> dict[str, float]:
            calls.append(k)
            if len(calls) == 3:
                raise KeyboardInterrupt  # simulated ^C mid-sweep
            return {"value": float(k) + 0.5}

        with pytest.raises(KeyboardInterrupt):
            run_instances(4, metric, ledger=ledger, key=key)
        assert calls == [0, 1, 2]  # instances 0 and 1 banked before the cut
        resumed = run_instances(4, metric, ledger=ledger, key=key)
        # The resume recomputed only 2 and 3 — 0 and 1 came from the bank.
        assert calls == [0, 1, 2, 2, 3]
        cold = tuple({"value": float(k) + 0.5} for k in range(4))
        assert resumed.rows == cold

    def test_scenario_instance_rows_shared_across_runs(self, ledger):
        scenario = get_scenario("lazy-spammers").evolve(instances=2)
        cold = run_scenario(scenario)
        warm = run_scenario(scenario, ledger=ledger)
        assert warm.table.rows == cold.table.rows
        ledger.reset_stats()
        again = run_scenario(scenario, ledger=ledger)
        assert again.table.rows == cold.table.rows
        assert ledger.stats.misses == 0 and ledger.stats.hits == 2

    def test_scenario_key_excludes_instance_count(self, ledger):
        base = get_scenario("lazy-spammers")
        two = scenario_run_key(base.evolve(instances=2))
        five = scenario_run_key(base.evolve(instances=5))
        assert ledger.row_fingerprint(two, 0) == ledger.row_fingerprint(five, 0)


class TestScenarioSweep:
    def test_sweep_warm_equals_cold_and_resumes(self, ledger):
        base = get_scenario("lazy-spammers").evolve(instances=2)

        def configure(scenario, x):
            return scenario.evolve(
                strategies=(
                    scenario.strategies[0].__class__(n_workers=max(1, int(x))),
                )
            )

        kwargs = dict(
            x_values=(2.0, 4.0),
            configure=configure,
            metrics=("date_precision", "mv_precision"),
        )
        cold = sweep_scenario(base, **kwargs)
        warm = sweep_scenario(base, **kwargs, ledger=ledger)
        assert warm.to_payload() == cold.to_payload()
        ledger.reset_stats()
        again = sweep_scenario(base, **kwargs, ledger=ledger)
        assert again.to_payload() == cold.to_payload()
        assert ledger.stats.misses == 0


class TestStreamingWarmRestart:
    def _dataset(self):
        return generate_qatar_living_like(
            seed=5, n_tasks=24, n_workers=12, n_copiers=3, target_claims=300
        )

    def _replay(self, ledger):
        store = CampaignStore(config=DateConfig(copy_prob_r=0.6), ledger=ledger)
        store.create("campaign")
        for batch in replay_batches(self._dataset(), 3):
            store.ingest("campaign", batch)
        return store, store.estimate("campaign", refresh=True)

    def test_restarted_store_reads_banked_refresh(self, ledger):
        _, cold = self._replay(None)
        _, first = self._replay(ledger)
        assert ledger.stats.writes == 1
        ledger.reset_stats()
        restarted, warm = self._replay(ledger)
        assert ledger.stats.hits == 1 and ledger.stats.misses == 0
        for result in (first, warm):
            assert result.truths == cold.truths
            assert result.confidence == cold.confidence
            assert result.dependence == cold.dependence
            assert result.support == cold.support
            assert np.array_equal(result.accuracy_matrix, cold.accuracy_matrix)
            assert result.iterations == cold.iterations
            assert result.converged == cold.converged
        # The adopted state drives subsequent reads identically.
        cold_store, _ = self._replay(None)
        assert restarted.truths("campaign") == cold_store.truths("campaign")
        assert (
            restarted.worker_accuracy("campaign")
            == cold_store.worker_accuracy("campaign")
        )

    def test_different_config_misses(self, ledger):
        self._replay(ledger)
        ledger.reset_stats()
        store = CampaignStore(config=DateConfig(copy_prob_r=0.4), ledger=ledger)
        store.create("campaign")
        for batch in replay_batches(self._dataset(), 3):
            store.ingest("campaign", batch)
        store.estimate("campaign", refresh=True)
        assert ledger.stats.hits == 0 and ledger.stats.misses == 1
