"""Concurrency stress test for the streaming campaign store.

Eight threads hammer one campaign — four ingesting disjoint claim
chunks, two reading estimates/truths, one periodically forcing full
refreshes, one running the IMC2 auction once enough data has landed —
and the test asserts the service-level guarantees:

- no thread observes any exception;
- the campaign's batch counter is monotone non-decreasing under
  concurrent reads;
- the final full refresh equals a single-threaded replay of the same
  claims bit-for-bit (ingestion is append-only and order-independent,
  and the refresh path is exact, so interleaving must not matter).
"""

from __future__ import annotations

import threading

from repro.core.config import DateConfig
from repro.datasets import generate_qatar_living_like
from repro.streaming import CampaignStore, ClaimBatch, OnlineDATE

N_CHUNKS = 16
CONFIG = DateConfig(copy_prob_r=0.4)


def _chunks(dataset, n: int) -> list[dict]:
    items = list(dataset.claims.items())
    size = (len(items) + n - 1) // n
    return [dict(items[i : i + size]) for i in range(0, len(items), size)]


def test_eight_thread_hammer_matches_single_threaded_replay():
    dataset = generate_qatar_living_like(
        seed=13, n_tasks=40, n_workers=24, n_copiers=6, target_claims=480
    )
    chunks = _chunks(dataset, N_CHUNKS)

    # Single-threaded reference: same campaign shape, same chunks, one
    # thread, then an exact full refresh.
    reference = OnlineDATE(CONFIG)
    reference.ingest(ClaimBatch(tasks=dataset.tasks, workers=dataset.workers))
    for chunk in chunks:
        reference.ingest(ClaimBatch(claims=chunk))
    expected = reference.refresh()

    store = CampaignStore(config=CONFIG)
    store.create(
        "stress", tasks=dataset.tasks, workers=dataset.workers
    )

    errors: list[BaseException] = []
    batch_counts: list[int] = []
    ingested = threading.Event()
    done = threading.Event()
    chunk_lock = threading.Lock()
    chunk_iter = iter(chunks)

    def record(fn):
        def wrapped():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - the assertion *is* the test
                errors.append(exc)
                done.set()

        return wrapped

    @record
    def ingest_worker():
        while True:
            with chunk_lock:
                chunk = next(chunk_iter, None)
            if chunk is None:
                ingested.set()
                return
            store.ingest("stress", ClaimBatch(claims=chunk))

    @record
    def reader_worker():
        while not done.is_set():
            truths = store.truths("stress")["truths"]
            assert isinstance(truths, dict)
            store.estimate("stress", refresh=False)
            store.worker_accuracy("stress")

    @record
    def refresher_worker():
        while not done.is_set():
            result = store.estimate("stress", refresh=True)
            assert set(result.truths) <= {t.task_id for t in dataset.tasks}

    @record
    def auction_worker():
        # Wait for enough data that coverage is meaningful, then run the
        # full mechanism concurrently with the remaining ingests.
        ingested.wait(timeout=60)
        outcome = store.auction("stress", requirement_cap=0.8)
        assert outcome.auction.n_winners >= 1

    @record
    def monitor_worker():
        while not done.is_set():
            batch_counts.append(store.get("stress").describe()["batches"])

    threads = [
        threading.Thread(target=fn)
        for fn in (
            ingest_worker,
            ingest_worker,
            ingest_worker,
            ingest_worker,
            reader_worker,
            reader_worker,
            refresher_worker,
            auction_worker,
        )
    ]
    monitor = threading.Thread(target=monitor_worker)
    for thread in threads:
        thread.start()
    monitor.start()
    for thread in threads[:4]:
        thread.join(timeout=120)
    ingested.wait(timeout=120)
    done.set()
    for thread in threads[4:]:
        thread.join(timeout=120)
    monitor.join(timeout=120)

    assert not errors, f"worker threads raised: {errors!r}"
    assert all(not t.is_alive() for t in threads) and not monitor.is_alive()

    # Batch counts observed concurrently must be monotone non-decreasing.
    assert batch_counts == sorted(batch_counts)
    # Every chunk landed exactly once: 1 seed batch + N_CHUNKS ingests.
    assert store.get("stress").describe()["batches"] == 1 + len(chunks)

    # The final exact refresh is independent of interleaving.
    final = store.estimate("stress", refresh=True)
    assert final.truths == expected.truths
    assert final.worker_accuracy == expected.worker_accuracy
