"""Kill-and-recover differential suite (DESIGN.md §15).

The durability contract under test: a campaign killed at *any* defined
fault point and recovered from its write-ahead journal ends up
**bit-identical** — truths, confidences, worker accuracies — to the
same campaign run uninterrupted, with every acknowledged batch applied
exactly once.  A crash is simulated by the seeded fault injector
(:mod:`repro.streaming.faults`); "restart" means constructing a fresh
:class:`CampaignStore` over the same journal directory, exactly what a
rebooted ``repro serve --journal-dir`` does.
"""

from __future__ import annotations

import pytest

from repro.artifacts import RunLedger
from repro.datasets.qatar_living import generate_qatar_living_like
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.streaming import (
    CampaignRecoveringError,
    CampaignStore,
    FaultInjector,
    InjectedCrash,
    StreamingApp,
    replay_batches,
)
from repro.streaming.faults import set_injector
from repro.streaming.journal import (
    JournalWriteError,
    journal_path,
    read_journal,
)


@pytest.fixture(scope="module")
def batches():
    dataset = generate_qatar_living_like(
        seed=11, n_tasks=24, n_workers=14, n_copiers=4, target_claims=260
    )
    return replay_batches(dataset, 5)


@pytest.fixture(autouse=True)
def _inert_injector():
    """Every test starts and ends with a rule-free process injector."""
    previous = set_injector(FaultInjector())
    yield
    set_injector(previous)


def _state(store: CampaignStore, campaign_id: str) -> dict:
    estimates = store.truths(campaign_id)
    return {
        "truths": estimates["truths"],
        "confidence": estimates["confidence"],
        "worker_accuracy": store.worker_accuracy(campaign_id),
        "applied_seq": store.get(campaign_id).applied_seq,
    }


def _uninterrupted(tmp_path, batches, *, refresh_after=None, **store_kwargs):
    """The reference run: same journaled code path, no crash."""
    store = CampaignStore(
        journal_dir=tmp_path / "reference", refresh_every=2, **store_kwargs
    )
    store.create("c")
    for seq, batch in enumerate(batches, start=1):
        store.ingest("c", batch, seq=seq)
        if refresh_after == seq:
            store.estimate("c", refresh=True)
    state = _state(store, "c")
    store.close()
    return state


class TestCrashDifferential:
    """Crash at every fault point; recovered state must be bit-identical."""

    @pytest.mark.parametrize("crash_seq", [1, 3, 5])
    @pytest.mark.parametrize(
        "rule, exc, journaled",
        [
            ("journal.pre_append:crash", InjectedCrash, False),
            ("journal.mid_append:partial", InjectedCrash, False),
            ("journal.post_append:crash", InjectedCrash, True),
        ],
        ids=["pre-append", "mid-append-torn", "post-append-pre-apply"],
    )
    def test_crash_during_batch_append(
        self, tmp_path, batches, rule, exc, journaled, crash_seq
    ):
        reference = _uninterrupted(tmp_path, batches)
        wal = tmp_path / "crashed"

        store = CampaignStore(journal_dir=wal, refresh_every=2)
        store.create("c")
        for seq in range(1, crash_seq):
            store.ingest("c", batches[seq - 1], seq=seq)
        # Arm the fault for exactly the next append, then "die" there.
        set_injector(FaultInjector.from_spec(rule, seed=17))
        with pytest.raises(exc):
            store.ingest("c", batches[crash_seq - 1], seq=crash_seq)
        set_injector(FaultInjector())
        # No orderly close: a killed process never flushes or unlocks.

        recovered = CampaignStore(journal_dir=wal, refresh_every=2)
        report = recovered.last_recovery[0]
        assert report["status"] == "recovered"
        assert recovered.get("c").applied_seq == (
            crash_seq if journaled else crash_seq - 1
        )
        # The client retries the unacknowledged seq, then the rest of
        # the stream.  If the crash landed after the fsync the retry
        # must deduplicate (exactly-once), else it must apply.
        update = recovered.ingest("c", batches[crash_seq - 1], seq=crash_seq)
        assert (update is None) == journaled
        for seq in range(crash_seq + 1, len(batches) + 1):
            recovered.ingest("c", batches[seq - 1], seq=seq)
        assert _state(recovered, "c") == reference
        recovered.close()

    def test_torn_tail_is_truncated_on_recovery(self, tmp_path, batches):
        wal = tmp_path / "crashed"
        store = CampaignStore(journal_dir=wal)
        store.create("c")
        store.ingest("c", batches[0], seq=1)
        set_injector(FaultInjector.from_spec("journal.mid_append:partial", seed=3))
        with pytest.raises(InjectedCrash):
            store.ingest("c", batches[1], seq=2)
        set_injector(FaultInjector())
        path = journal_path(wal, "c")
        assert read_journal(path).torn

        recovered = CampaignStore(journal_dir=wal)
        assert recovered.last_recovery[0]["torn"]
        # The file itself was healed: scanning it again finds no tear.
        assert not read_journal(path).torn
        recovered.close()

    def test_crash_mid_refresh(self, tmp_path, batches):
        reference = _uninterrupted(tmp_path, batches, refresh_after=3)
        wal = tmp_path / "crashed"

        store = CampaignStore(journal_dir=wal, refresh_every=2)
        store.create("c")
        for seq in range(1, 4):
            store.ingest("c", batches[seq - 1], seq=seq)
        # The refresh intent hits the journal, then the process dies
        # before the estimator computes or adopts anything.
        set_injector(FaultInjector.from_spec("store.mid_refresh:crash"))
        with pytest.raises(InjectedCrash):
            store.estimate("c", refresh=True)
        set_injector(FaultInjector())

        recovered = CampaignStore(journal_dir=wal, refresh_every=2)
        assert recovered.last_recovery[0]["refreshes"] == 1
        # The retried refresh plus the rest of the stream.
        recovered.estimate("c", refresh=True)
        for seq in range(4, len(batches) + 1):
            recovered.ingest("c", batches[seq - 1], seq=seq)
        assert _state(recovered, "c") == reference
        recovered.close()

    def test_recovery_is_idempotent(self, tmp_path, batches):
        reference = _uninterrupted(tmp_path, batches)
        wal = tmp_path / "live"
        store = CampaignStore(journal_dir=wal, refresh_every=2)
        store.create("c")
        for seq, batch in enumerate(batches, start=1):
            store.ingest("c", batch, seq=seq)
        store.close()

        once = CampaignStore(journal_dir=wal)
        assert once.recover() == []  # everything already live: no-op
        twice = CampaignStore(journal_dir=wal)
        assert _state(once, "c") == _state(twice, "c") == reference
        once.close()
        twice.close()


class TestLedgerAssistedRecovery:
    def test_refresh_snapshot_is_adopted_when_fingerprint_matches(
        self, tmp_path, batches
    ):
        ledger = RunLedger(tmp_path / "ledger")
        wal = tmp_path / "wal"
        store = CampaignStore(journal_dir=wal, ledger=ledger)
        store.create("c")
        for seq, batch in enumerate(batches, start=1):
            store.ingest("c", batch, seq=seq)
        banked = store.estimate("c", refresh=True)
        state = _state(store, "c")
        store.close()

        recovered = CampaignStore(
            journal_dir=wal, ledger=RunLedger(tmp_path / "ledger")
        )
        report = recovered.last_recovery[0]
        assert report["refreshes"] == 1
        assert report["snapshot_hits"] == 1  # adopted, not recomputed
        assert _state(recovered, "c") == state
        assert recovered.estimate("c").truths == banked.truths
        recovered.close()

    def test_missing_snapshot_recomputes_identically(self, tmp_path, batches):
        wal = tmp_path / "wal"
        store = CampaignStore(journal_dir=wal, ledger=RunLedger(tmp_path / "a"))
        store.create("c")
        for seq, batch in enumerate(batches, start=1):
            store.ingest("c", batch, seq=seq)
        store.estimate("c", refresh=True)
        state = _state(store, "c")
        store.close()

        # Recover against an EMPTY ledger: every fingerprint misses.
        recovered = CampaignStore(
            journal_dir=wal, ledger=RunLedger(tmp_path / "b")
        )
        assert recovered.last_recovery[0]["snapshot_hits"] == 0
        assert _state(recovered, "c") == state
        recovered.close()


class TestExactlyOnce:
    def test_duplicate_seq_is_acknowledged_not_reapplied(self, tmp_path, batches):
        store = CampaignStore(journal_dir=tmp_path / "wal")
        store.create("c")
        assert store.ingest("c", batches[0], seq=1) is not None
        assert store.ingest("c", batches[0], seq=1) is None
        assert store.get("c").applied_seq == 1
        # The journal holds exactly one batch record.
        scan = read_journal(journal_path(tmp_path / "wal", "c"))
        assert sum(1 for r in scan.records if r["kind"] == "batch") == 1
        store.close()

    def test_out_of_order_seq_is_rejected(self, tmp_path, batches):
        from repro.errors import ConfigurationError

        store = CampaignStore(journal_dir=tmp_path / "wal")
        store.create("c")
        store.ingest("c", batches[0], seq=1)
        with pytest.raises(ConfigurationError, match="out-of-order"):
            store.ingest("c", batches[1], seq=3)
        store.close()

    def test_http_duplicate_reply(self, tmp_path, batches):
        from repro.streaming.ingest import batch_to_json

        app = StreamingApp(CampaignStore(journal_dir=tmp_path / "wal"))
        app.handle("POST", "/campaigns", {"campaign_id": "c"})
        payload = batch_to_json(batches[0], include_truth=True)
        payload["seq"] = 1
        status, body = app.handle("POST", "/campaigns/c/claims", payload)
        assert status == 200 and "duplicate" not in body
        status, body = app.handle("POST", "/campaigns/c/claims", payload)
        assert status == 200 and body == {"duplicate": True, "seq": 1}
        app.store.close()


class TestRejectedBatchHygiene:
    """A batch the estimator refuses must never persist in the journal."""

    def test_invalid_batch_is_rejected_before_the_append(
        self, tmp_path, batches
    ):
        from repro.errors import DataFormatError
        from repro.streaming.ingest import ClaimBatch

        wal = tmp_path / "wal"
        store = CampaignStore(journal_dir=wal)
        store.create("c")
        store.ingest("c", batches[0], seq=1)
        poisoned = ClaimBatch(claims={("ghost-worker", "ghost-task"): "x"})
        with pytest.raises(DataFormatError):
            store.ingest("c", poisoned, seq=2)
        # The journal holds only the valid batch; the watermark did not
        # advance, so a corrected batch retries under the SAME seq and
        # appends exactly one record.
        scan = read_journal(journal_path(wal, "c"))
        assert [r["seq"] for r in scan.records if r["kind"] == "batch"] == [1]
        assert store.get("c").applied_seq == 1
        assert store.ingest("c", batches[1], seq=2) is not None
        store.close()

        # Every acknowledged batch survives the restart — the poisoned
        # ingest left no record to trip the replay.
        recovered = CampaignStore(journal_dir=wal)
        assert recovered.last_recovery[0]["status"] == "recovered"
        assert recovered.get("c").applied_seq == 2
        recovered.close()

    def test_apply_failure_rolls_the_journal_back(self, tmp_path, batches):
        wal = tmp_path / "wal"
        store = CampaignStore(journal_dir=wal)
        store.create("c")
        store.ingest("c", batches[0], seq=1)
        campaign = store.get("c")
        pre_crash = campaign.journal.size
        # An estimator failure *after* the fsync'd append (validation
        # passed, apply blew up): the record must be rolled back so the
        # journal never holds an unapplied, unacknowledged batch.
        original_ingest = campaign.online.ingest
        campaign.online.ingest = lambda batch: (_ for _ in ()).throw(
            RuntimeError("estimator exploded")
        )
        with pytest.raises(RuntimeError, match="estimator exploded"):
            store.ingest("c", batches[1], seq=2)
        campaign.online.ingest = original_ingest
        assert campaign.journal.size == pre_crash
        assert campaign.applied_seq == 1
        # The retried seq appends exactly one record and applies.
        assert store.ingest("c", batches[1], seq=2) is not None
        scan = read_journal(journal_path(wal, "c"))
        assert [r["seq"] for r in scan.records if r["kind"] == "batch"] == [1, 2]
        store.close()

        recovered = CampaignStore(journal_dir=wal)
        assert recovered.last_recovery[0]["status"] == "recovered"
        assert recovered.get("c").applied_seq == 2
        recovered.close()

    def test_injected_crash_during_apply_keeps_the_record(
        self, tmp_path, batches
    ):
        # A *crash* (process death) between append and apply is the
        # opposite contract: the record is durable and must survive for
        # recovery to replay — only refusals roll back.
        wal = tmp_path / "wal"
        store = CampaignStore(journal_dir=wal)
        store.create("c")
        campaign = store.get("c")
        original_ingest = campaign.online.ingest
        campaign.online.ingest = lambda batch: (_ for _ in ()).throw(
            InjectedCrash("store.mid_apply")
        )
        with pytest.raises(InjectedCrash):
            store.ingest("c", batches[0], seq=1)
        campaign.online.ingest = original_ingest
        scan = read_journal(journal_path(wal, "c"))
        assert [r["seq"] for r in scan.records if r["kind"] == "batch"] == [1]
        store.close()

        recovered = CampaignStore(journal_dir=wal)
        assert recovered.get("c").applied_seq == 1
        recovered.close()

    def test_http_invalid_batch_is_400_and_journal_stays_clean(
        self, tmp_path, batches
    ):
        from repro.streaming.ingest import batch_to_json

        wal = tmp_path / "wal"
        app = StreamingApp(CampaignStore(journal_dir=wal))
        app.handle("POST", "/campaigns", {"campaign_id": "c"})
        payload = batch_to_json(batches[0], include_truth=True)
        payload["seq"] = 1
        assert app.handle("POST", "/campaigns/c/claims", payload)[0] == 200
        bad = {
            "claims": [{"worker": "ghost", "task": "ghost", "value": "x"}],
            "seq": 2,
        }
        status, body = app.handle("POST", "/campaigns/c/claims", bad)
        assert status == 400 and "unknown" in body["error"]
        scan = read_journal(journal_path(wal, "c"))
        assert sum(1 for r in scan.records if r["kind"] == "batch") == 1
        app.store.close()


class TestDegradation:
    def test_journal_write_failure_is_503_and_not_applied(
        self, tmp_path, batches
    ):
        app = StreamingApp(CampaignStore(journal_dir=tmp_path / "wal"))
        app.handle("POST", "/campaigns", {"campaign_id": "c"})
        from repro.streaming.ingest import batch_to_json

        payload = batch_to_json(batches[0], include_truth=True)
        payload["seq"] = 1
        set_injector(FaultInjector.from_spec("journal.pre_append:ioerror"))
        status, body = app.handle("POST", "/campaigns/c/claims", payload)
        assert status == 503
        assert body["retry_after"] >= 1.0
        set_injector(FaultInjector())
        # Nothing was applied; the same seq retries cleanly.
        assert app.store.get("c").applied_seq == 0
        status, body = app.handle("POST", "/campaigns/c/claims", payload)
        assert status == 200 and "duplicate" not in body
        app.store.close()

    def test_store_level_write_failure_raises_journal_write_error(
        self, tmp_path, batches
    ):
        store = CampaignStore(journal_dir=tmp_path / "wal")
        store.create("c")
        set_injector(FaultInjector.from_spec("journal.pre_append:ioerror"))
        with pytest.raises(JournalWriteError):
            store.ingest("c", batches[0], seq=1)
        set_injector(FaultInjector())
        store.close()

    def test_deferred_recovery_answers_503_until_replayed(
        self, tmp_path, batches
    ):
        wal = tmp_path / "wal"
        store = CampaignStore(journal_dir=wal)
        store.create("c")
        store.ingest("c", batches[0], seq=1)
        store.close()

        deferred = CampaignStore(journal_dir=wal, defer_recovery=True)
        assert deferred.recovering
        with pytest.raises(CampaignRecoveringError):
            deferred.truths("c")
        app = StreamingApp(deferred)
        status, body = app.handle("GET", "/campaigns/c/truths")
        assert status == 503 and body["retry_after"] > 0
        status, health = app.handle("GET", "/healthz")
        assert health["status"] == "recovering"

        deferred.recover()
        assert not deferred.recovering
        status, _ = app.handle("GET", "/campaigns/c/truths")
        assert status == 200
        status, health = app.handle("GET", "/healthz")
        assert health["status"] == "ok"
        deferred.close()

    def test_corrupt_journal_fails_only_its_campaign(self, tmp_path, batches):
        wal = tmp_path / "wal"
        store = CampaignStore(journal_dir=wal)
        store.create("good")
        store.create("bad")
        store.ingest("good", batches[0], seq=1)
        store.ingest("bad", batches[0], seq=1)
        store.close()
        # Vandalize a NON-final record of one journal: corruption, not
        # a torn tail.
        path = journal_path(wal, "bad")
        lines = path.read_bytes().splitlines(keepends=True)
        lines[0] = b'{"len":0,"sha":"xx","record":{}}\n'
        path.write_bytes(b"".join(lines))

        recovered = CampaignStore(journal_dir=wal)
        by_id = {r["campaign_id"]: r for r in recovered.last_recovery}
        assert by_id["good"]["status"] == "recovered"
        assert by_id["bad"]["status"] == "corrupt"
        assert "good" in recovered
        assert "bad" not in recovered
        recovered.close()


class TestJournalLifecycle:
    def test_explicit_evict_deletes_the_journal(self, tmp_path, batches):
        wal = tmp_path / "wal"
        store = CampaignStore(journal_dir=wal)
        store.create("c")
        store.ingest("c", batches[0], seq=1)
        store.evict("c")
        assert not journal_path(wal, "c").exists()
        # A restart must NOT resurrect a deleted campaign.
        assert len(CampaignStore(journal_dir=wal)) == 0

    def test_lru_eviction_keeps_the_journal_for_resurrection(
        self, tmp_path, batches
    ):
        wal = tmp_path / "wal"
        store = CampaignStore(journal_dir=wal, max_campaigns=1)
        store.create("old")
        store.ingest("old", batches[0], seq=1)
        state = _state(store, "old")
        store.create("new")  # LRU-evicts "old" from memory only
        assert "old" not in store
        assert journal_path(wal, "old").exists()
        store.close()

        revived = CampaignStore(journal_dir=wal)
        assert _state(revived, "old") == state
        revived.close()

    def test_recreating_an_evicted_id_rotates_the_journal(
        self, tmp_path, batches
    ):
        wal = tmp_path / "wal"
        store = CampaignStore(journal_dir=wal, max_campaigns=1)
        store.create("c")
        store.ingest("c", batches[0], seq=1)
        store.create("other")  # evicts "c", journal file survives
        store.create("c")  # recreate: the stale journal must not leak in
        assert store.get("c").applied_seq == 0
        scan = read_journal(journal_path(wal, "c"))
        assert sum(1 for r in scan.records if r["kind"] == "batch") == 0
        store.close()

    def test_unjournaled_store_has_no_journal_side_effects(
        self, tmp_path, batches
    ):
        store = CampaignStore()
        store.create("c")
        update = store.ingest("c", batches[0])
        assert update is not None
        assert store.get("c").journal is None
        assert list(tmp_path.iterdir()) == []


class TestMetricLabelHygiene:
    def test_evicted_campaign_series_are_dropped(self, tmp_path, batches):
        registry = MetricsRegistry(enabled=True)
        previous = set_registry(registry)
        try:
            store = CampaignStore(journal_dir=tmp_path / "wal", max_campaigns=2)
            store.create("a")
            store.create("b")
            store.ingest("a", batches[0], seq=1)
            store.ingest("b", batches[0], seq=1)

            def campaigns_with_series():
                found = set()
                for family in registry.collect():
                    if "campaign" not in family.label_names:
                        continue
                    idx = family.label_names.index("campaign")
                    for key in family.series:
                        found.add(key[idx])
                return found

            assert campaigns_with_series() == {"a", "b"}
            store.evict("a")
            assert campaigns_with_series() == {"b"}
            store.create("d")
            store.create("e")  # LRU-evicts "b"
            assert "b" not in campaigns_with_series()
            store.close()
        finally:
            set_registry(previous)
