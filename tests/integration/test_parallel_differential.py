"""Differential tests: the parallel executor is bit-identical to serial.

Every ``parallel=N`` knob in the stack routes through
:func:`repro.simulation.executor.parallel_map`, whose contract is that
scheduling can never leak into results — all per-instance seeds derive
from the root seed before submission.  These tests pin that contract
end to end: identical :class:`InstanceTable` rows and
:class:`ExperimentResult` series for ``parallel=1`` versus
``parallel=4`` across fig3, table1, and two scenario sweeps.

The ``parallel=4`` runs go through a real 4-worker spawn pool even on
smaller machines (workers just idle), so this also proves spawn-safety
of every shipped work function.
"""

from __future__ import annotations

from functools import partial

from repro.experiments import ScalePreset
from repro.experiments.fig3 import run_fig3a, run_fig3b
from repro.experiments.table1 import run_table1
from repro.scenarios import get_scenario, run_scenario, sweep_scenario
from repro.scenarios.runner import instance_metrics
from repro.simulation.runner import run_instances
from repro.simulation.sweep import sweep_series

#: Small-but-nontrivial scale: enough claims for DATE to have signal,
#: small enough that the whole module stays CI-friendly.
TINY = ScalePreset(
    name="tiny",
    n_tasks=30,
    n_workers=16,
    n_copiers=4,
    target_claims=240,
    instances=3,
)

PARALLEL = 4


def _assert_same_result(serial, parallel):
    assert serial.x_values == parallel.x_values
    assert serial.series == parallel.series  # exact float equality
    assert serial.series_names == parallel.series_names


class TestExperimentRunners:
    def test_fig3a_parallel_matches_serial(self):
        kwargs = dict(
            scale=TINY,
            base_seed=11,
            epsilon_grid=(0.1, 0.5),
            alpha_grid=(0.2, 0.8),
        )
        _assert_same_result(
            run_fig3a(**kwargs, parallel=1), run_fig3a(**kwargs, parallel=PARALLEL)
        )

    def test_fig3b_parallel_matches_serial(self):
        kwargs = dict(scale=TINY, base_seed=11, r_grid=(0.2, 0.6))
        _assert_same_result(
            run_fig3b(**kwargs, parallel=1), run_fig3b(**kwargs, parallel=PARALLEL)
        )

    def test_table1_parallel_matches_serial(self):
        serial = run_table1(parallel=1)
        parallel = run_table1(parallel=PARALLEL)
        _assert_same_result(serial, parallel)
        assert serial.meta["estimates"] == parallel.meta["estimates"]


def _sweep_point(x: float) -> dict[str, float]:
    """Module-level point function: picklable for the spawn pool."""
    return {"linear": 2.0 * x, "square": x * x}


class TestSweepSeries:
    def test_point_level_fan_out_matches_serial(self):
        """sweep_series(parallel=N) with a picklable point_fn."""
        kwargs = dict(
            experiment_id="sweep-exec",
            title="executor sweep",
            x_label="x",
            y_label="y",
            x_values=(0.5, 1.0, 2.0, 3.0),
            point_fn=_sweep_point,
        )
        _assert_same_result(
            sweep_series(**kwargs, parallel=1),
            sweep_series(**kwargs, parallel=PARALLEL),
        )


class TestScenarioRunner:
    def test_instance_table_rows_identical(self):
        scenario = get_scenario("mixed-adversaries").evolve(
            instances=3,
            world=get_scenario("mixed-adversaries").world.evolve(
                n_tasks=30, n_workers=20, target_claims=300
            ),
        )
        serial = run_scenario(scenario, parallel=1)
        parallel = run_scenario(scenario, parallel=PARALLEL)
        assert serial.table.rows == parallel.table.rows

    def test_run_instances_parallel_matches_serial(self):
        scenario = get_scenario("chain-copiers").evolve(
            instances=4,
            world=get_scenario("chain-copiers").world.evolve(
                n_tasks=24, n_workers=16, target_claims=200
            ),
        )
        metric_fn = partial(instance_metrics, scenario)
        serial = run_instances(scenario.instances, metric_fn, parallel=1)
        parallel = run_instances(
            scenario.instances, metric_fn, parallel=PARALLEL
        )
        assert serial.rows == parallel.rows
        assert serial.summary() == parallel.summary()


class TestScenarioSweeps:
    def test_threshold_sweep_identical(self):
        base = get_scenario("sybil-amplification").evolve(
            instances=2,
            world=get_scenario("sybil-amplification").world.evolve(
                n_tasks=24, n_workers=16, target_claims=200
            ),
        )

        def configure(scenario, threshold):
            return scenario.evolve(detection_threshold=threshold)

        kwargs = dict(
            experiment_id="sweep-threshold",
            x_label="threshold",
            metrics=("detection_precision", "detection_recall"),
        )
        _assert_same_result(
            sweep_scenario(base, (0.5, 0.9), configure, parallel=1, **kwargs),
            sweep_scenario(base, (0.5, 0.9), configure, parallel=PARALLEL, **kwargs),
        )

    def test_ring_size_sweep_identical(self):
        base = get_scenario("collusion-ring").evolve(
            instances=2,
            world=get_scenario("collusion-ring").world.evolve(
                n_tasks=24, n_workers=16, target_claims=200
            ),
        )

        def configure(scenario, size):
            from repro.scenarios import CollusionRing

            return scenario.evolve(strategies=(CollusionRing(ring_size=int(size)),))

        kwargs = dict(
            experiment_id="sweep-ring-size",
            x_label="ring size",
            metrics=("date_precision", "detection_f1"),
        )
        _assert_same_result(
            sweep_scenario(base, (2, 4), configure, parallel=1, **kwargs),
            sweep_scenario(base, (2, 4), configure, parallel=PARALLEL, **kwargs),
        )
