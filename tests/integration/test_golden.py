"""Golden regression tests: fig3/table1 series pinned to JSON fixtures.

Each test regenerates one experiment at the seeded demo configuration
and compares every series point against ``tests/golden/<id>.json``
within an absolute tolerance of 1e-9 (tight enough that any algorithmic
or generator drift fails; loose enough to survive BLAS-level float
reassociation across platforms).  Failures print a per-point diff of
exactly which series values moved and by how much.

**Updating the fixtures** (only after an intentional numeric change —
e.g. new DATE defaults or a reworked world generator): run

    PYTHONPATH=src python scripts/update_goldens.py

review the JSON diff to confirm the drift is the one you meant to
cause, and commit the refreshed fixtures with the change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from scripts.update_goldens import golden_results

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
TOLERANCE = 1e-9


def _diff(golden: dict, result) -> list[str]:
    """Human-readable list of every point that drifted."""
    lines: list[str] = []
    got_x = [float(x) for x in result.x_values]
    want_x = [float(x) for x in golden["x_values"]]
    if got_x != want_x:
        lines.append(f"x grid changed: expected {want_x}, got {got_x}")
    want_series = golden["series"]
    if sorted(result.series) != sorted(want_series):
        lines.append(
            f"series changed: expected {sorted(want_series)}, "
            f"got {sorted(result.series)}"
        )
        return lines
    for name in sorted(want_series):
        for k, (want, got) in enumerate(
            zip(want_series[name], result.series[name])
        ):
            if abs(got - want) > TOLERANCE:
                x = golden["x_values"][k]
                lines.append(
                    f"{name} @ x={x}: expected {want!r}, got {got!r} "
                    f"(drift {got - want:+.3e})"
                )
    return lines


@pytest.fixture(scope="module")
def results():
    return golden_results()


@pytest.mark.parametrize(
    "name",
    ["fig3a", "fig3b", "table1", "fig6a", "fig7a_payments", "algo_accuracy"],
)
def test_series_match_golden(name, results):
    path = GOLDEN_DIR / f"{name}.json"
    golden = json.loads(path.read_text())
    drift = _diff(golden, results[name])
    assert not drift, (
        f"{name} drifted from {path} "
        "(if intentional, regenerate via scripts/update_goldens.py):\n"
        + "\n".join(drift)
    )
