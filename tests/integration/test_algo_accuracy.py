"""Integration pins for the ``algo-accuracy`` experiment.

The zoo grid must behave like every other registered experiment:

- ``parallel=4`` through the real spawn pool equals ``parallel=1``
  bit for bit (the per-instance work function evaluates the whole
  algorithm × fraction grid, so this also proves the zoo's
  spawn-safety);
- warm ledger runs reproduce cold runs exactly, with the result
  served from cache;
- the registry dispatches ``algo-accuracy`` with pass-through kwargs;
- algorithm names are normalized, so spelling differences cannot
  fork the cache key.
"""

from __future__ import annotations

import pytest

from repro.artifacts import RunLedger
from repro.experiments import ScalePreset
from repro.experiments.algo_accuracy import run_algo_accuracy
from repro.experiments.registry import get_experiment, run_experiment

pytestmark = pytest.mark.filterwarnings("ignore::repro.errors.ConvergenceWarning")

#: Small enough for CI, big enough that DATE/TruthFinder/LCA all have
#: signal to disagree over.
TINY = ScalePreset(
    name="tiny",
    n_tasks=30,
    n_workers=16,
    n_copiers=4,
    target_claims=240,
    instances=3,
)

KWARGS = dict(
    scale=TINY,
    base_seed=11,
    algorithms=("DATE", "MV", "TruthFinder", "LCA"),
    copier_fractions=(0.0, 0.25),
)


def test_parallel_matches_serial():
    serial = run_algo_accuracy(**KWARGS, parallel=1)
    fanned = run_algo_accuracy(**KWARGS, parallel=4)
    assert serial == fanned  # dataclass equality: series, x, meta
    assert sorted(serial.series_names) == ["DATE", "LCA", "MV", "TruthFinder"]


def test_warm_ledger_equals_cold(tmp_path):
    ledger = RunLedger(tmp_path / "store")
    cold = run_algo_accuracy(**KWARGS, ledger=ledger)
    ledger.reset_stats()
    warm = run_algo_accuracy(**KWARGS, ledger=ledger)
    assert warm == cold
    assert ledger.stats.hits == 1 and ledger.stats.misses == 0
    plain = run_algo_accuracy(**KWARGS)
    assert plain.to_payload() == cold.to_payload()


def test_registry_dispatch():
    spec = get_experiment("algo-accuracy")
    assert "parallel" in spec.features and "ledger" in spec.features
    via_registry = run_experiment("algo-accuracy", **KWARGS)
    assert via_registry == run_algo_accuracy(**KWARGS)


def test_algorithm_spelling_is_normalized():
    canonical = run_algo_accuracy(**KWARGS)
    spelled = run_algo_accuracy(
        **{**KWARGS, "algorithms": ("date", "mv", "truthfinder", "lca")}
    )
    assert spelled == canonical
