"""Fast shape tests: the paper's qualitative claims at small scale.

The benchmark suite asserts these on larger workloads; this module
keeps a quick version in the regular test run so a regression in any
headline claim fails `pytest tests/` directly.
"""

from __future__ import annotations

import pytest

from repro import DATE, DateConfig, MajorityVote, ReverseAuction
from repro.baselines import GreedyAccuracy, GreedyBid
from repro.core import DatasetIndex
from repro.datasets import generate_qatar_living_like
from repro.auction.soac import SOACInstance

SEEDS = (0, 1, 2)


def small_dataset(seed: int):
    return generate_qatar_living_like(
        seed=seed, n_tasks=60, n_workers=40, n_copiers=10, target_claims=1200
    )


@pytest.fixture(scope="module")
def date_results():
    """DATE + MV on shared instances (module-scoped: computed once)."""
    results = []
    for seed in SEEDS:
        dataset = small_dataset(seed)
        index = DatasetIndex(dataset)
        date = DATE().run(dataset, index=index)
        mv = MajorityVote().run(dataset, index=index)
        results.append((dataset, date, mv))
    return results


class TestHeadlinePrecisionClaim:
    def test_date_beats_mv_on_average(self, date_results):
        """Fig. 4's core claim: copier-aware discovery beats voting."""
        date_mean = sum(r.precision() for _, r, _ in date_results) / len(SEEDS)
        mv_mean = sum(m.precision() for _, _, m in date_results) / len(SEEDS)
        assert date_mean > mv_mean

    def test_precision_well_above_chance(self, date_results):
        """DATE stays well above the 1/3 chance level of the 3-label
        domain on every instance.  (The paper's 0.82-0.92 band holds at
        full scale — see EXPERIMENTS.md; at this reduced size per-seed
        variance is large.)"""
        for _, date, _ in date_results:
            assert date.precision() > 0.55


class TestRSensitivityShape:
    def test_low_r_underperforms_tuned_r(self):
        """Fig. 3b: assuming too little copying hurts precision."""
        low_total, tuned_total = 0.0, 0.0
        for seed in SEEDS:
            dataset = small_dataset(seed)
            index = DatasetIndex(dataset)
            low_total += DATE(DateConfig(copy_prob_r=0.1)).run(
                dataset, index=index
            ).precision()
            tuned_total += DATE(DateConfig(copy_prob_r=0.4)).run(
                dataset, index=index
            ).precision()
        assert tuned_total >= low_total


class TestAuctionCostShape:
    def test_ra_cheapest_on_average(self):
        """Fig. 6: RA's social cost beats GA and GB on average."""
        ra_total, ga_total, gb_total = 0.0, 0.0, 0.0
        for seed in SEEDS:
            dataset = small_dataset(seed)
            result = DATE().run(dataset)
            instance = SOACInstance.from_truth_discovery(
                dataset, result
            ).with_capped_requirements(0.8)
            ra_total += ReverseAuction().run(instance).social_cost
            ga_total += GreedyAccuracy().run(instance).social_cost
            gb_total += GreedyBid().run(instance).social_cost
        assert ra_total <= ga_total
        assert ra_total <= gb_total
